"""Out-of-core demo: join a dataset far larger than a memory ceiling.

Stream-generates two wide relations (one join attribute plus payload
columns) directly into memory-mapped segments — they are never resident
on the heap — then runs a streamed band-join while a sampler thread
reports the process's resident set size live.  The dataset is ~8x the
demo's self-imposed memory ceiling; the join's resident-set growth stays
under it, and the pair count is verified against the ordinary in-memory
path over the same join-attribute values.

Run with:  PYTHONPATH=src python examples/out_of_core_demo.py
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import numpy as np

from repro.core.recpart import RecPartPartitioner
from repro.data.relation import Relation
from repro.data.storage import MmapColumnStore
from repro.engine.engine import ParallelJoinEngine
from repro.geometry.band import BandCondition
from repro.obs.process import current_rss_bytes, peak_rss_bytes, reset_peak_rss

ROWS = 300_000
PAYLOAD_COLS = 39          # 40 columns x 8 bytes x 2 sides ≈ 192 MB on disk
EPSILON = 1e-6
CEILING_MB = 24


class RssSampler:
    """Background thread printing the live resident set while a phase runs."""

    def __init__(self, label: str, interval: float = 0.1) -> None:
        self.label = label
        self.interval = interval
        self.samples: list[int] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            rss = current_rss_bytes()
            self.samples.append(rss)
            print(f"    [{self.label}] RSS now {rss / 1e6:7.1f} MB", flush=True)
            self._stop.wait(self.interval)

    def __enter__(self) -> "RssSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def generate_side(name: str, seed: int, directory: str) -> Relation:
    """Stream 25k-row chunks straight into mmap segments (never all in RAM)."""
    rng_join = np.random.default_rng(seed)
    rng_payload = np.random.default_rng(seed + 99)

    def chunks():
        for start in range(0, ROWS, 25_000):
            n = min(25_000, ROWS - start)
            chunk = {"A1": rng_join.random(n)}
            for j in range(PAYLOAD_COLS):
                chunk[f"P{j:02d}"] = rng_payload.random(n)
            yield chunk

    store = MmapColumnStore.write(directory, chunks(), recycle_bytes=8 << 20)
    return Relation.from_store(name, store)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="out-of-core-demo-") as work_dir:
        print(f"1. Generating 2 x {ROWS:,} rows x {PAYLOAD_COLS + 1} columns "
              f"into mmap segments under {work_dir} ...")
        s = generate_side("S", seed=1, directory=os.path.join(work_dir, "S"))
        t = generate_side("T", seed=2, directory=os.path.join(work_dir, "T"))
        dataset_mb = (s.nbytes + t.nbytes) / 1e6
        print(f"   dataset: {dataset_mb:.0f} MB on disk, storage={s.storage!r}, "
              f"ceiling: {CEILING_MB} MB ({dataset_mb / CEILING_MB:.1f}x smaller)")

        print("2. Optimizing with RecPart (samples only — planning is "
              "out-of-core friendly by construction) ...")
        condition = BandCondition.symmetric(["A1"], EPSILON)
        engine = ParallelJoinEngine(backend="serial", spill_dir=work_dir,
                                    chunk_bytes=1 << 20)
        plan = RecPartPartitioner().partition(s, t, condition, workers=4)
        print(f"   plan: {plan.n_units} units across {plan.workers} workers")

        print("3. Streamed join under the ceiling (watch the resident set):")
        baseline = current_rss_bytes()
        reset_peak_rss()
        start = time.perf_counter()
        with RssSampler("join"):
            result = engine.execute(s, t, condition, plan, materialize=True)
        seconds = time.perf_counter() - start
        peak_delta = max(0, peak_rss_bytes() - baseline)
        verdict = "UNDER" if peak_delta <= CEILING_MB * 1e6 else "OVER"
        print(f"   {result.total_output:,} pairs in {seconds:.1f}s; "
              f"peak RSS delta {peak_delta / 1e6:.1f} MB — "
              f"{verdict} the {CEILING_MB} MB ceiling")

        print("4. Verifying against the in-memory path "
              "(join attribute only — the payload never mattered):")
        s_ref = Relation("S", {"A1": np.random.default_rng(1).random(ROWS)})
        t_ref = Relation("T", {"A1": np.random.default_rng(2).random(ROWS)})
        ref_plan = RecPartPartitioner().partition(s_ref, t_ref, condition, workers=4)
        ref = engine.execute(s_ref, t_ref, condition, ref_plan, materialize=True)
        match = result.total_output == ref.total_output and np.array_equal(
            np.unique(result.pairs, axis=0), np.unique(ref.pairs, axis=0)
        )
        print(f"   in-memory: {ref.total_output:,} pairs — "
              f"pair sets {'identical' if match else 'DIVERGED'}")


if __name__ == "__main__":
    main()
