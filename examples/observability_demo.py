"""Telemetry walkthrough: trace trees, the metrics registry, Prometheus text.

Runs a small served band join with telemetry enabled and prints the three
observability surfaces the repo exposes:

1. a per-query **trace tree** (queue → execute → plan/route/local_join/merge,
   with kernel records nested under the stages that invoked them),
2. the structured **stats snapshot** the scheduler and caches feed, and
3. an excerpt of the **Prometheus text exposition** (the same text served by
   ``{"op": "metrics"}`` and ``repro-bandjoin stats --prometheus``).

Run with::

    PYTHONPATH=src python examples/observability_demo.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import ServiceConfig  # noqa: E402
from repro.data.generators import correlated_pair  # noqa: E402
from repro.obs import format_trace_tree  # noqa: E402
from repro.service import BandJoinService  # noqa: E402


def main() -> int:
    rows = 20_000
    s, t = correlated_pair(rows, rows, dimensions=2, z=1.5, seed=7)

    # ServiceConfig(telemetry=True) is the serving default: the library keeps
    # telemetry off until a service (or REPRO_TELEMETRY=1) switches it on.
    config = ServiceConfig(backend="threads", compaction="sync")
    with BandJoinService(config) as service:
        service.register("S", s)
        service.register("T", t)
        service.prepare("near", "S", "T", attributes=["A1", "A2"], epsilons=0.01)

        cold = service.query("near")            # full optimize + parallel join
        warm = service.query("near", 0.02)      # same prepared query, wider band
        print(f"cold query: {cold.n_pairs:,} pairs in {cold.seconds * 1e3:.1f} ms")
        print(f"warm query: {warm.n_pairs:,} pairs in {warm.seconds * 1e3:.1f} ms")

        print("\n=== 1. trace tree of the cold query ===")
        traces = service.traces(2)
        print(format_trace_tree(traces[-1]))

        print("=== 2. stats snapshot (scheduler + caches) ===")
        stats = service.stats()
        print(json.dumps({
            "telemetry": stats["telemetry"],
            "scheduler": stats["scheduler"],
            "plan_cache": stats["plan_cache"],
        }, indent=2, default=str))

        print("\n=== 3. Prometheus exposition (kernel + scheduler excerpt) ===")
        interesting = ("repro_kernel_invocations", "repro_kernel_expansion",
                       "repro_scheduler_events", "repro_plan_cache",
                       "repro_result_cache")
        for line in service.prometheus().splitlines():
            if line.startswith("#"):
                continue
            if any(line.startswith(prefix) for prefix in interesting):
                print(f"  {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
