"""Workload-observatory walkthrough: capture, snapshot, drift, SLOs, replay.

Runs a :class:`repro.service.BandJoinService` with workload capture
spooling to a JSONL file, drives a small mixed workload through it, then
closes the observatory loop:

1. the SLO monitor reports the service healthy (and would count breaches),
2. the captured traffic reduces to a :class:`~repro.obs.workload.Workload`
   snapshot (arrival mix, epsilon distributions, table-size trajectory),
3. a second, shifted workload shows up as drift against the first,
4. the spooled capture replays into a **fresh** service on a different
   backend, and every replayed result matches its captured fingerprint.

Run with::

    PYTHONPATH=src python examples/workload_replay_demo.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import ServiceConfig  # noqa: E402
from repro.data.generators import pareto_relation  # noqa: E402
from repro.obs.workload import replay_log  # noqa: E402
from repro.service import BandJoinService  # noqa: E402


def main() -> int:
    rows = 5_000
    with tempfile.TemporaryDirectory() as tmp:
        spool = str(Path(tmp) / "capture.jsonl")

        config = ServiceConfig(
            backend="threads",
            compaction="sync",
            capture_log=spool,        # ring + replayable JSONL spool
            slo_p99_seconds=30.0,     # generous objectives for a demo box
            slo_error_rate=0.25,
            slo_queue_depth=500,
            slo_interval=0.0,         # evaluate on demand below
        )
        with BandJoinService(config) as service:
            print(f"1. capture a served workload (spool: {Path(spool).name})")
            service.register("S", pareto_relation("S", rows, dimensions=2, z=1.5, seed=1))
            service.register("T", pareto_relation("T", rows, dimensions=2, z=1.5, seed=2))
            service.prepare("near", "S", "T", attributes=["A1", "A2"], epsilons=0.01)
            service.prepare("wide", "S", "T", attributes=["A1"], epsilons=0.05)

            for eps in (0.01, 0.01, 0.02, 0.01):  # cold, cached, cold, cached
                service.query("near", eps)
            service.query("wide")
            service.append("S", pareto_relation("S", rows // 50, dimensions=2, z=1.5, seed=3))
            service.query("near")  # delta path over the appended rows

            health = service.health()
            print(f"2. health: {'OK' if health['healthy'] else 'BREACHED'} "
                  f"({len(health['objectives'])} objectives, "
                  f"{health['breaches_total']} breaches)")

            snapshot = service.workload_snapshot()
            print("3. workload snapshot:")
            for line in snapshot.describe().splitlines():
                print(f"   {line}")

            print("4. shift the mix and measure drift:")
            for _ in range(6):
                service.query("wide")  # the cold query becomes the hot one
            drifted = service.workload_snapshot()
            diff = snapshot.diff(drifted)
            print(f"   drift score {diff['score']:.3f} "
                  f"(arrivals {diff['arrivals']:.3f}, paths {diff['paths']:.3f})")

        print("5. replay the capture into a fresh serial-backend service:")
        report = replay_log(
            spool,
            config=ServiceConfig(backend="serial", scheduler_workers=1,
                                 capture=False, compaction="sync"),
        )
        for line in report.describe().splitlines():
            print(f"   {line}")
        if not report.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
