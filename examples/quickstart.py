"""Quickstart: partition and execute one distributed band-join with RecPart.

Generates a skewed synthetic workload, runs RecPart's optimization phase,
executes the simulated map-shuffle-reduce pipeline, verifies the result
against a single-machine join and prints the paper's success measures.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # 1. A band-join problem: two skewed (Pareto) relations joined on three
    #    attributes with a band width of 0.05 per attribute.
    s, t = repro.correlated_pair(40_000, 40_000, dimensions=3, z=1.5, seed=42)
    condition = repro.BandCondition.symmetric(["A1", "A2", "A3"], 0.05)
    workers = 8
    print(f"band-join: |S| = {len(s):,}, |T| = {len(t):,}, condition = {condition}, w = {workers}")

    # 2. Optimization phase: RecPart recursively partitions the join-attribute
    #    space using only an input and an output sample.
    partitioner = repro.RecPartPartitioner()
    partitioning = partitioner.partition(s, t, condition, workers=workers)
    print(
        f"RecPart finished in {partitioning.stats.optimization_seconds:.3f}s: "
        f"{partitioning.n_leaves} leaves, {partitioning.n_units} execution units, "
        f"{partitioning.stats.iterations} iterations"
    )

    # 3. Join phase: simulate the distributed execution and verify the output.
    executor = repro.DistributedBandJoinExecutor(cost_model=repro.default_running_time_model())
    result = executor.execute(s, t, condition, partitioning, verify="count")
    print(f"join output: {result.total_output:,} pairs (verified against a single-machine join)")

    # 4. The paper's success measures: how close is the partitioning to the
    #    lower bounds on total input and max worker load?
    bounds = repro.compute_lower_bounds(
        s, t, condition, workers, output_size=result.total_output
    )
    print(f"total input (with duplicates): {result.total_input:,} "
          f"(lower bound {bounds.total_input:,.0f}, overhead "
          f"{bounds.input_overhead(result.total_input):.1%})")
    print(f"max worker load: {result.max_worker_load:,.0f} "
          f"(lower bound {bounds.max_worker_load:,.0f}, overhead "
          f"{bounds.load_overhead(result.max_worker_load):.1%})")
    print(f"most loaded worker: {result.max_worker_input:,} input tuples, "
          f"{result.max_worker_output:,} output pairs")


if __name__ == "__main__":
    main()
