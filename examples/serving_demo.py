"""Serving-layer walkthrough: catalog, prepared queries, appends, scheduler.

Builds a :class:`repro.service.BandJoinService`, registers a slowly
changing relation pair, and shows every execution path a served query can
take — cold, plan-cached, result-cached, delta (after an append) — plus a
concurrent burst through the scheduler with single-flight deduplication
and micro-batching.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import ServiceConfig  # noqa: E402
from repro.data.generators import correlated_pair, pareto_relation  # noqa: E402
from repro.service import BandJoinService  # noqa: E402


def show(label: str, result) -> None:
    print(
        f"  {label:34s} path={result.path:12s} pairs={result.n_pairs:>9,} "
        f"latency={result.seconds * 1e3:8.2f} ms"
    )


def main() -> int:
    rows = 30_000
    s, t = correlated_pair(rows, rows, dimensions=2, z=1.5, seed=7)

    config = ServiceConfig(
        backend="threads",
        staleness_threshold=0.2,  # re-partition once deltas reach 20% of the base
        compaction="sync",        # deterministic for the demo; "background" in prod
    )
    with BandJoinService(config) as service:
        print(f"1. register the relation pair ({rows:,} rows each)")
        service.register("S", s)
        service.register("T", t)

        print("2. prepare a parameterized band join on (A1, A2)")
        service.prepare("near", "S", "T", attributes=["A1", "A2"], epsilons=0.01)

        print("3. the four serving paths:")
        show("first query (optimize + join)", service.query("near"))
        show("repeat (materialized result)", service.query("near"))

        print("   ... append 1% fresh rows to S ...")
        service.append("S", pareto_relation("S", rows // 100, dimensions=2, z=1.5, seed=99))
        show("after append (delta join only)", service.query("near"))
        show("repeat (result re-cached)", service.query("near"))

        print("4. epsilon is a parameter — new widths reuse the machinery:")
        show("wider band, same prepared query", service.query("near", 0.02))
        show("asymmetric band per attribute", service.query("near", [(0.0, 0.02), (0.01, 0.01)]))

        print("5. concurrent burst through the scheduler:")
        before = service.scheduler.metrics.snapshot()
        futures = [service.submit("near", eps) for eps in (0.01, 0.02, 0.005, 0.01, 0.02) * 4]
        outputs = {f.result().n_pairs for f in futures}
        metrics = service.scheduler.metrics.snapshot()
        print(
            f"  {len(futures)} requests -> "
            f"{metrics['submitted'] - before['submitted']} executions "
            f"({metrics['deduplicated'] - before['deduplicated']} deduplicated, "
            f"{metrics['batched'] - before['batched']} micro-batched), "
            f"{len(outputs)} distinct answers"
        )

        print("6. a large append crosses the staleness threshold and re-partitions:")
        service.append("S", pareto_relation("S", rows // 4, dimensions=2, z=1.5, seed=101))
        snapshot = service.catalog.get("S")
        assert snapshot.delta is None  # sync compaction ran inside the append
        print(
            f"  S compacted: base={len(snapshot.base):,} rows, "
            f"base_version={snapshot.base_version} (plans re-optimized in the hook)"
        )
        show("query after re-partitioning", service.query("near"))

        scheduler = service.stats()["scheduler"]
        print(
            f"\nscheduler totals: {scheduler['completed']} served, "
            f"p50={scheduler['latency']['p50'] * 1e3:.2f} ms, "
            f"p99={scheduler['latency']['p99'] * 1e3:.2f} ms"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
