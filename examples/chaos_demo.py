"""Fault-tolerance walkthrough: a served workload under 10% worker crashes.

Runs the same prepared band-join workload twice — once fault-free, once
with deterministic chaos injected (``worker_crash:0.1,task_slow:0.05``:
one worker death per ten tasks, one straggler per twenty) — and shows
that the answers are bit-identical while the recovery telemetry records
the crashes, retries and latency tax.  Then demonstrates the two other
robustness surfaces: torn segment writes on mmap storage (detected by
checksum, retried, never served), and overload degradation (a saturated
scheduler answering from a version-stale cached result, explicitly
marked, instead of erroring).

Run with::

    PYTHONPATH=src python examples/chaos_demo.py
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.config import ServiceConfig  # noqa: E402
from repro.data.generators import correlated_pair  # noqa: E402
from repro.engine import backends  # noqa: E402
from repro.local_join.base import canonical_pair_order  # noqa: E402
from repro.service import BandJoinService  # noqa: E402

FAULT_SPEC = "worker_crash:0.1,task_slow:0.05"
FAULT_SEED = 29
ROWS = 20_000

# Chaos needs a real pool to crash; don't let a single-CPU host quietly
# downgrade the thread backend to its serial shortcut.
backends._default_parallelism = lambda: max(2, os.cpu_count() or 1)


def run_workload(inject: str | None):
    """Serve the same query mix, optionally under fault injection."""
    s, t = correlated_pair(ROWS, ROWS, dimensions=2, z=1.5, seed=7)
    config = ServiceConfig(
        backend="threads", workers=4, compaction="sync", capture=False,
        inject_faults=inject, fault_seed=FAULT_SEED,
    )
    with BandJoinService(config) as service:
        service.register("S", s)
        service.register("T", t)
        service.prepare("near", "S", "T", attributes=["A1", "A2"], epsilons=0.01)
        pairs = {
            eps: canonical_pair_order(service.query("near", eps).pairs)
            for eps in (0.005, 0.01, 0.02)
        }
        stats = service.stats()["scheduler"]
        health = service.health()
    return pairs, stats, health


def main() -> int:
    print(f"1. fault-free run ({ROWS:,} rows/side, 3 epsilons):")
    clean_pairs, clean_stats, _ = run_workload(None)
    for eps, pairs in clean_pairs.items():
        print(f"   eps={eps:<6} {len(pairs):>9,} pairs")

    print(f"\n2. same workload under {FAULT_SPEC!r} (seed {FAULT_SEED}):")
    chaos_pairs, chaos_stats, health = run_workload(FAULT_SPEC)
    for eps, pairs in chaos_pairs.items():
        identical = np.array_equal(pairs, clean_pairs[eps])
        print(f"   eps={eps:<6} {len(pairs):>9,} pairs  "
              f"{'IDENTICAL to fault-free' if identical else 'DIVERGED (bug!)'}")
        assert identical
    fired = health["fault_injection"]["fired"]
    print(f"   injector fired: {fired}")
    print(f"   p99 latency: {clean_stats['latency']['p99'] * 1e3:.1f} ms fault-free "
          f"-> {chaos_stats['latency']['p99'] * 1e3:.1f} ms under chaos "
          "(recovery costs time, never answers)")

    print("\n3. torn segment writes on mmap storage (every spill torn once):")
    rng = np.random.default_rng(5)
    with tempfile.TemporaryDirectory() as spill:
        config = ServiceConfig(
            backend="serial", compaction="sync", capture=False,
            storage="mmap", spill_dir=spill, spill_threshold_bytes=1,
            inject_faults="spill_torn:1", fault_seed=FAULT_SEED,
        )
        with BandJoinService(config) as service:
            service.register("S", {"A1": rng.normal(size=4000)})
            service.register("T", {"A1": rng.normal(size=4000)})
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            result = service.query("q")
            print(f"   every write checksum-failed and was retried into a fresh "
                  f"directory; query still answered {result.n_pairs:,} pairs")

    print("\n4. overload degradation: stale-but-marked beats an error:")
    config = ServiceConfig(
        backend="serial", compaction="sync", capture=False,
        scheduler_workers=1, max_pending=1, degraded_mode="stale",
    )
    with BandJoinService(config) as service:
        rng = np.random.default_rng(9)
        service.register("S", {"A1": rng.normal(size=4000)})
        service.register("T", {"A1": rng.normal(size=4000)})
        service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
        fresh = service.query("q")  # populates the result cache
        service.append("S", {"A1": rng.normal(size=400)})  # cache now stale

        # Saturate the single scheduler slot, then ask again: admission
        # control would reject, but a stale cached answer exists.
        blocker = service.submit("q", 0.02)  # occupies the only worker
        stale = service.query("q")  # degraded: served from the stale cache
        blocker.result(timeout=60)
        print(f"   fresh answer: {fresh.n_pairs:,} pairs (path={fresh.path})")
        print(f"   under overload: {stale.n_pairs:,} pairs, path={stale.path}, "
              f"stale={stale.stale}, version_lag={stale.version_lag}")
        print(f"   degraded responses counted: "
              f"{service.scheduler.metrics.degraded}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
