"""Astronomy use case: matching repeat observations of celestial objects.

The paper's appendix evaluates RecPart on the Palomar Transient Factory
catalogue: find pairs of observations within 1-3 arc seconds of each other in
(right ascension, declination) — a 2D band-join whose "hot spots" are the
survey fields the telescope revisits.  This example reproduces that scenario
with the synthetic sky-survey generator, uses the *theoretical* termination
condition (no cost model needed) and shows how the symmetric-split extension
behaves compared to RecPart-S.

Run with:  python examples/astronomy_self_match.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.config import RecPartConfig

ARCSECOND = 2.78e-4  # degrees


def main() -> None:
    # One observation catalogue split in half: both halves observe the same
    # underlying sources, so the band-join finds repeat observations.
    catalogue = repro.ptf_objects_like(60_000, seed=7)
    order = np.random.default_rng(0).permutation(len(catalogue))
    s = catalogue.take(order[: len(catalogue) // 2], name="ptf_epoch1")
    t = catalogue.take(order[len(catalogue) // 2 :], name="ptf_epoch2")
    condition = repro.BandCondition.symmetric(["ra", "dec"], 3 * ARCSECOND)
    workers = 8
    print(f"matching {len(s):,} vs {len(t):,} observations within 3 arc seconds, w = {workers}\n")

    executor = repro.DistributedBandJoinExecutor()
    bounds = None
    for label, partitioner in (
        (
            "RecPart (theoretical termination)",
            repro.RecPartPartitioner(config=RecPartConfig(termination="theoretical")),
        ),
        (
            "RecPart-S (T always duplicated)",
            repro.RecPartSPartitioner(config=RecPartConfig(termination="theoretical")),
        ),
        ("1-Bucket", repro.OneBucketPartitioner()),
        ("Grid-eps", repro.GridEpsilonPartitioner()),
    ):
        partitioning = partitioner.partition(s, t, condition, workers=workers)
        result = executor.execute(s, t, condition, partitioning, verify="count")
        if bounds is None:
            bounds = repro.compute_lower_bounds(
                s, t, condition, workers, output_size=result.total_output
            )
        print(
            f"{label:36s} opt {partitioning.stats.optimization_seconds:6.2f}s  "
            f"I {result.total_input:8,}  I_m {result.max_worker_input:7,}  "
            f"O_m {result.max_worker_output:7,}  "
            f"dup {bounds.input_overhead(result.total_input):7.1%}  "
            f"load overhead {bounds.load_overhead(result.max_worker_load):7.1%}"
        )

    print(
        "\nRecPart finds arc-second-scale partitions around the survey's dense fields "
        "without replicating the catalogue, which is exactly the behaviour Table 16 of "
        "the paper reports for the real PTF data."
    )


if __name__ == "__main__":
    main()
