"""EXPLAIN / EXPLAIN ANALYZE walkthrough: estimates, actuals, calibration.

Runs a served band join and prints the introspection surfaces in the order
an operator would reach for them:

1. **EXPLAIN** — the plan the service *would* run: chosen partitioning with
   per-worker input/output estimates, the AutoJoin selector's decision and
   the alternatives it rejected, and the cost-model pricing.  Nothing
   executes.
2. **EXPLAIN ANALYZE** — the same tree after one real execution, every
   estimate annotated with its actual and q-error.
3. **Drift** — a batch of appends grows the S side by 30%; the sampled
   estimate tracks the new size, but the *partitioning* was optimized over
   the original base rows, so its per-worker q-errors visibly drift.
4. **Calibration** — enough analyzed runs accumulate in the calibration
   store for ``calibrate()`` to refit the running-time betas, after which
   EXPLAIN prices plans in real seconds instead of abstract load units.

Run with::

    PYTHONPATH=src python examples/explain_demo.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import ServiceConfig  # noqa: E402
from repro.data.generators import correlated_pair, pareto_relation  # noqa: E402
from repro.service import BandJoinService  # noqa: E402


def worker_qerrors(report) -> list[float]:
    plan = next(c for c in report.root.children if c.name == "partitioning")
    return [
        round(node.qerrors().get("input", 1.0), 3)
        for node in plan.children
        if node.name.startswith("worker")
    ]


def main() -> int:
    rows = 20_000
    s, t = correlated_pair(rows, rows, dimensions=2, z=1.5, seed=7)

    config = ServiceConfig(
        backend="threads",
        local_algorithm="auto",        # so EXPLAIN shows a real selector decision
        staleness_threshold=10.0,      # keep appends un-compacted for the drift demo
        compaction="off",
    )
    with BandJoinService(config) as service:
        service.register("S", s)
        service.register("T", t)
        service.prepare("near", "S", "T", attributes=["A1", "A2"], epsilons=0.01)

        print("=== 1. EXPLAIN (no execution) ===")
        print(service.explain("near").render())

        print("\n=== 2. EXPLAIN ANALYZE (executes once, grafts actuals) ===")
        analyzed = service.explain("near", analyze=True)
        print(analyzed.render())
        print(f"\nper-worker input q-errors: {worker_qerrors(analyzed)}")

        print("\n=== 3. estimate drift after appends ===")
        # Grow S by 30% in three deltas.  The partitioning plan was optimized
        # over the *base* rows, so the routed per-worker estimates and the
        # optimizer's own projections drift away from the measured actuals.
        for seed in (101, 102, 103):
            service.append(
                "S", pareto_relation("S", rows // 10, dimensions=2, z=1.5, seed=seed)
            )
        drifted = service.explain("near", analyze=True)
        print(drifted.render())
        print(f"\nper-worker input q-errors after append: {worker_qerrors(drifted)}")
        print(f"max q-error before {analyzed.max_qerror():.2f} "
              f"vs after {drifted.max_qerror():.2f}")

        print("\n=== 4. calibration after 20+ analyzed runs ===")
        for i in range(22):
            service.explain("near", epsilons=0.008 + 0.0004 * i, analyze=True)
        report = service.calibrate()
        betas = report.model.coefficients
        print(f"refit over {report.n_records} analyzed runs: "
              f"relative error {report.before_error:.3g} -> {report.after_error:.3g}")
        print(f"betas: beta0={betas.beta0:.3g} beta1={betas.beta1:.3g} "
              f"beta2={betas.beta2:.3g} beta3={betas.beta3:.3g}")
        print(f"mean output q-error of the window: {report.mean_output_qerror:.3f}")

        # EXPLAIN now auto-picks the calibrated model: the cost node prices
        # the plan in seconds, comparable against the measured wall time.
        # A fresh epsilon forces a real execution (a cache-served analyze
        # would have no wall time to price against).
        calibrated = service.explain("near", epsilons=0.0175, analyze=True)
        cost = next(c for c in calibrated.root.children if c.name == "cost_model")
        print(f"\ncalibrated cost node: predicted {cost.estimates['seconds'] * 1e3:.2f} ms, "
              f"measured {cost.actuals['seconds'] * 1e3:.2f} ms "
              f"(q={cost.qerrors()['seconds']:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
