"""Compare every partitioning method on the paper's motivating workload.

The introduction of the paper motivates band-joins with spatio-temporal
matching: linking bird observations with weather reports for "nearby" time
and location (Example 1).  This example builds that workload from the
synthetic ebird-like and cloud-report-like generators, runs RecPart and every
baseline (CSIO, 1-Bucket, Grid-eps, Grid*, distributed IEJoin) and prints the
comparison table, including how far each method lands from the lower bounds.

Run with:  python examples/compare_partitioners.py
"""

from __future__ import annotations

import repro
from repro.experiments.runner import default_partitioners, run_workload
from repro.experiments.workloads import ebird_cloud_workload


def main() -> None:
    # |B.time - W.time| <= 2 days, |B.latitude - W.latitude| <= 2 degrees,
    # |B.longitude - W.longitude| <= 2 degrees  (Example 1 of the paper,
    # band widths re-scaled to the synthetic data).
    workload = ebird_cloud_workload(2.0, rows_per_input=30_000, workers=8)
    print(f"workload: {workload.description}")
    print(f"inputs: 2 x {workload.rows_per_input:,} tuples, {workload.workers} workers\n")

    partitioners = default_partitioners(
        include_recpart_symmetric=True, include_grid_star=True, include_iejoin=True
    )
    experiment = run_workload(workload, partitioners=partitioners, verify="count")
    print(experiment.format())

    best = experiment.best_method()
    print(
        f"\nfastest method (optimization + estimated join time): {best.method} "
        f"with {best.duplication_overhead:.1%} input duplication and "
        f"{best.load_overhead:.1%} max-worker-load overhead"
    )

    print("\nFigure-4-style points (duplication overhead, load overhead):")
    for point in experiment.overhead_points():
        marker = "  <= within 10% of both lower bounds" if point.within_ten_percent else ""
        print(
            f"  {point.method:12s} ({point.duplication_overhead:8.3f}, "
            f"{point.load_overhead:8.3f}){marker}"
        )


if __name__ == "__main__":
    main()
