"""Deterministic fault injection: the substrate the fault-tolerance layer
is tested against.

A :class:`FaultInjector` holds per-kind firing rates and decides — from a
seeded hash, never from wall-clock randomness — whether a given *point*
(identified by the caller's key tuple) fires.  The same seed, rates and key
always give the same decision, so a chaos run is replayable; retries pass
their attempt number in the key, so a retried task draws fresh decisions
instead of crashing forever.

Supported fault kinds:

``worker_crash``
    The process-pool backend's worker calls ``os._exit`` mid-task (a real
    process death, surfacing as ``BrokenProcessPool`` in the driver); the
    thread backend simulates it by raising :class:`InjectedWorkerCrash`.
``task_slow``
    The kernel chunk loop sleeps :attr:`FaultInjector.slow_seconds` before a
    chunk, simulating a straggling worker.
``spill_torn``
    A freshly written storage segment is truncated after the atomic rename,
    simulating a torn write that slipped past the crash window — the read
    path must detect it (``CorruptSegmentError``), never serve it.

The injector is installed process-globally (:func:`install`) so deep layers
(kernels, storage writers, pool workers) reach it without plumbing;
:func:`suppressed` masks it for the current thread, which is how bounded
retry loops guarantee their final attempt runs fault-free.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from contextlib import contextmanager

from repro.exceptions import ReproError

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "InjectedWorkerCrash",
    "active",
    "install",
    "maybe_slow",
    "parse_fault_spec",
    "suppressed",
    "uninstall",
]

#: Fault kinds accepted by :func:`parse_fault_spec` / :class:`FaultInjector`.
FAULT_KINDS: tuple[str, ...] = ("worker_crash", "task_slow", "spill_torn")

#: Default sleep injected per fired ``task_slow`` point.
DEFAULT_SLOW_SECONDS: float = 0.02


class InjectedWorkerCrash(ReproError):
    """A simulated worker death (thread backend's stand-in for a process
    crash).  Execution backends retry it like a real crash; it must never
    escape to a caller as a query failure."""


class FaultInjector:
    """Seeded, rate-configurable fault decisions with firing accounting.

    Parameters
    ----------
    rates:
        ``{kind: probability}`` with probabilities in ``[0, 1]``; kinds not
        listed never fire.
    seed:
        Decision seed.  Same seed + same key = same decision, every run.
    slow_seconds:
        Sleep duration of one fired ``task_slow`` point.
    """

    def __init__(
        self,
        rates: dict | None = None,
        seed: int = 0,
        slow_seconds: float = DEFAULT_SLOW_SECONDS,
    ) -> None:
        rates = dict(rates or {})
        for kind, rate in rates.items():
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; known: {', '.join(FAULT_KINDS)}"
                )
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(f"fault rate for {kind!r} must be in [0, 1], got {rate}")
        if slow_seconds < 0:
            raise ValueError("slow_seconds must be non-negative")
        self.rates = {kind: float(rate) for kind, rate in rates.items() if rate > 0}
        self.seed = int(seed)
        self.slow_seconds = float(slow_seconds)
        self._fired: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._checked: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._lock = threading.Lock()
        # Fallback entropy for callers with no natural key: an atomic draw
        # counter, deterministic for a fixed sequence of unkeyed calls.
        self._draws = itertools.count()

    def rate(self, kind: str) -> float:
        """Return the configured firing rate of one kind (0 when unset)."""
        return self.rates.get(kind, 0.0)

    def should_fire(self, kind: str, *key) -> bool:
        """Decide (without accounting) whether the point ``(kind, key)`` fires.

        The decision hashes ``(seed, kind, key)`` — include the attempt
        number in ``key`` so retries of the same task re-draw.
        """
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        if not key:
            key = (next(self._draws),)
        digest = hashlib.blake2b(
            repr((self.seed, kind, key)).encode(), digest_size=8
        ).digest()
        draw = int.from_bytes(digest, "big") / float(1 << 64)
        return draw < rate

    def fire(self, kind: str, *key) -> bool:
        """Decide and account one injection point; returns whether it fired."""
        with self._lock:
            self._checked[kind] += 1
        if not self.should_fire(kind, *key):
            return False
        with self._lock:
            self._fired[kind] += 1
        return True

    def stats(self) -> dict:
        """Return a JSON-friendly summary of configured rates and firings."""
        with self._lock:
            return {
                "seed": self.seed,
                "rates": dict(self.rates),
                "fired": {k: v for k, v in self._fired.items() if v},
                "checked": {k: v for k, v in self._checked.items() if v},
            }

    def __repr__(self) -> str:
        return f"FaultInjector(rates={self.rates}, seed={self.seed})"


def parse_fault_spec(spec: str) -> dict[str, float]:
    """Parse ``"worker_crash:0.1,task_slow:0.05,spill_torn:1"`` into rates.

    Raises ``ValueError`` on unknown kinds or rates outside ``[0, 1]`` (the
    CLI surfaces it as a usage error).
    """
    rates: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        kind, sep, value = part.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        try:
            rate = float(value.strip()) if sep else 1.0
        except ValueError:
            raise ValueError(f"invalid fault rate {value!r} for {kind!r}") from None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate for {kind!r} must be in [0, 1], got {rate}")
        rates[kind] = rate
    return rates


# ---------------------------------------------------------------------- #
# Process-global installation
# ---------------------------------------------------------------------- #
_installed: FaultInjector | None = None
_suppress = threading.local()


def install(injector: FaultInjector | None) -> FaultInjector | None:
    """Install ``injector`` process-wide (``None`` uninstalls); returns it."""
    global _installed
    _installed = injector
    return injector


def uninstall() -> None:
    """Remove the installed injector."""
    install(None)


def active() -> FaultInjector | None:
    """Return the installed injector, unless suppressed on this thread."""
    if getattr(_suppress, "depth", 0) > 0:
        return None
    return _installed


@contextmanager
def suppressed():
    """Mask the installed injector for the current thread.

    Bounded retry loops wrap their final attempt in this so recovery paths
    are guaranteed fault-free — availability may never depend on a lucky
    draw when the configured rate is 1.0.
    """
    _suppress.depth = getattr(_suppress, "depth", 0) + 1
    try:
        yield
    finally:
        _suppress.depth -= 1


def maybe_slow(*key) -> bool:
    """Fire one ``task_slow`` point: sleep and return ``True`` when it fires.

    Cheap no-op (one global read) when no injector is installed — this is
    the hook the kernel chunk loop calls per chunk span.
    """
    injector = active()
    if injector is None or "task_slow" not in injector.rates:
        return False
    if not injector.fire("task_slow", *key):
        return False
    time.sleep(injector.slow_seconds)
    return True
