"""Global telemetry switch.

The flag gates the *implicit* instrumentation hot paths pay for — tracing
spans and kernel profiling.  Explicit accounting (registry counters owned by
the scheduler, caches, etc.) is always on: those calls are made deliberately
by their owners and cost a dictionary update.

Disabled is the library default so embedding the kernels costs nothing; the
serving layer enables telemetry on construction (``ServiceConfig.telemetry``)
and the ``REPRO_TELEMETRY`` environment variable enables it process-wide.
"""

from __future__ import annotations

import os

#: Process-wide telemetry switch, read directly by the hot-path guards.
enabled: bool = os.environ.get("REPRO_TELEMETRY", "").lower() in ("1", "true", "on", "yes")


def is_enabled() -> bool:
    """Return whether implicit instrumentation (tracing, profiling) is on."""
    return enabled


def enable() -> None:
    """Turn implicit instrumentation on process-wide."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn implicit instrumentation off process-wide (the library default)."""
    global enabled
    enabled = False
