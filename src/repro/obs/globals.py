"""Process-wide default registry and tracer.

Deep layers (the local-join kernels, the execution backends) publish here
because they cannot know which service instance — if any — owns them; the
service layer additionally keeps a per-instance registry for its own
adapters and renders both on the exposition surface.
"""

from __future__ import annotations

import os

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import DEFAULT_TRACE_BUFFER, Tracer


def _initial_trace_ring() -> int:
    """Return the trace-ring capacity selected by ``REPRO_TRACE_RING``."""
    raw = os.environ.get("REPRO_TRACE_RING", "").strip()
    if not raw:
        return DEFAULT_TRACE_BUFFER
    try:
        size = int(raw)
    except ValueError:
        return DEFAULT_TRACE_BUFFER
    return size if size >= 1 else DEFAULT_TRACE_BUFFER


_REGISTRY = MetricsRegistry()
_TRACER = Tracer(max_traces=_initial_trace_ring())


def registry() -> MetricsRegistry:
    """Return the process-wide default metrics registry."""
    return _REGISTRY


def tracer() -> Tracer:
    """Return the process-wide default tracer."""
    return _TRACER
