"""Process-wide default registry and tracer.

Deep layers (the local-join kernels, the execution backends) publish here
because they cannot know which service instance — if any — owns them; the
service layer additionally keeps a per-instance registry for its own
adapters and renders both on the exposition surface.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer

_REGISTRY = MetricsRegistry()
_TRACER = Tracer()


def registry() -> MetricsRegistry:
    """Return the process-wide default metrics registry."""
    return _REGISTRY


def tracer() -> Tracer:
    """Return the process-wide default tracer."""
    return _TRACER
