"""Deterministic capture/replay: turn a spooled traffic log into a test.

:func:`replay_log` reads a JSONL capture (written by a
:class:`~repro.obs.workload.recorder.QueryLogRecorder` with a spool path),
reconstructs the catalog state — every ``register`` and ``append`` event
carries its column data — and re-issues the captured request stream in
arrival order against a fresh :class:`~repro.service.service.BandJoinService`
(optionally a differently configured one: another backend, another
scheduler width).  Every completed query event carries the
order-independent result fingerprint taken at capture time; the replay
recomputes it and reports mismatches, so a passing replay proves the new
configuration answers the *exact same pair sets* the capture saw — every
captured workload doubles as a deterministic integration test and a
benchmark input.

``speed`` re-creates the capture's arrival timing: ``None``/``0`` replays
as fast as the service answers, ``1.0`` paces requests at the original
wall-clock gaps, ``2.0`` twice as fast, and so on.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import faults
from repro.exceptions import ServiceError, ServiceOverloadError
from repro.obs.logconf import get_logger
from repro.obs.workload.recorder import pair_fingerprint

__all__ = ["ReplayMismatch", "ReplayReport", "load_events", "replay_events", "replay_log"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class ReplayMismatch:
    """One replayed query whose result diverged from the capture."""

    seq: int
    query: str
    expected_pairs: int
    replayed_pairs: int
    expected_fingerprint: str
    replayed_fingerprint: str


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    events: int = 0
    registered: int = 0
    appended: int = 0
    prepared: int = 0
    queries: int = 0
    verified: int = 0
    skipped: int = 0
    rejected: int = 0
    degraded: int = 0
    mismatches: list[ReplayMismatch] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Firing statistics of the installed fault injector, when the replay
    #: ran under chaos (``repro-bandjoin replay --inject-fault ...``).
    fault_stats: dict | None = None

    @property
    def ok(self) -> bool:
        """Return whether every verifiable query matched its capture."""
        return not self.mismatches

    def describe(self) -> str:
        lines = [
            f"replayed {self.events} events in {self.wall_seconds:.2f}s: "
            f"{self.registered} register, {self.appended} append, "
            f"{self.prepared} prepare, {self.queries} queries "
            f"({self.verified} fingerprint-verified, {self.skipped} skipped, "
            f"{self.rejected} rejected, {self.degraded} stale-degraded)",
        ]
        if self.fault_stats is not None:
            lines.append(f"fault injection: {self.fault_stats}")
        if self.mismatches:
            lines.append(f"FINGERPRINT MISMATCHES: {len(self.mismatches)}")
            for mismatch in self.mismatches[:10]:
                lines.append(
                    f"  seq {mismatch.seq} {mismatch.query}: expected "
                    f"{mismatch.expected_pairs} pairs ({mismatch.expected_fingerprint}), "
                    f"got {mismatch.replayed_pairs} ({mismatch.replayed_fingerprint})"
                )
        else:
            lines.append("all replayed results match the captured fingerprints")
        return "\n".join(lines)


def load_events(path) -> list[dict]:
    """Load a JSONL capture log, ordered by capture sequence number."""
    events = []
    with open(path, encoding="utf-8") as spool:
        for lineno, line in enumerate(spool, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ServiceError(f"{path}:{lineno}: invalid capture line: {exc}") from None
    events.sort(key=lambda event: event.get("seq", 0))
    return events


def _columns(event: dict) -> dict:
    columns = event.get("columns")
    if columns is None:
        raise ServiceError(
            f"capture event seq={event.get('seq')} ({event['type']} "
            f"{event.get('name')!r}) has no column data; replay needs a capture "
            "written with a spool log (ServiceConfig.capture_log / serve --capture)"
        )
    return {name: np.asarray(values) for name, values in columns.items()}


def replay_events(events, service, speed: float | None = None) -> ReplayReport:
    """Re-issue captured events against ``service`` and verify fingerprints.

    The service should be fresh (empty catalog); pass ``speed`` to pace the
    stream at (a multiple of) the captured arrival times.  Requests the
    capture saw rejected or failed are skipped — they carry no result to
    verify — and deduplicated arrivals are re-issued but only verified when
    they carry a fingerprint.
    """
    report = ReplayReport()
    start = time.perf_counter()
    first_ts: float | None = None
    for event in events:
        report.events += 1
        if speed and first_ts is None and "ts" in event:
            first_ts = event["ts"]
        if speed and first_ts is not None:
            offset = (event["ts"] - first_ts) / speed
            lag = offset - (time.perf_counter() - start)
            if lag > 0:
                time.sleep(lag)
        kind = event["type"]
        if kind == "register":
            service.register(event["name"], _columns(event), replace=True)
            report.registered += 1
        elif kind == "append":
            service.append(event["name"], _columns(event))
            report.appended += 1
        elif kind == "prepare":
            service.prepare(
                event["query"],
                event["s"],
                event["t"],
                attributes=event["attributes"],
                epsilons=event.get("epsilons"),
                workers=event.get("workers"),
                replace=True,
            )
            report.prepared += 1
        elif kind == "query":
            outcome = event.get("outcome", "ok")
            if outcome in ("rejected", "failed"):
                report.skipped += 1
                continue
            report.queries += 1
            try:
                result = service.query(event["query"], event.get("epsilons"))
            except ServiceOverloadError:
                # The replay target may be narrower than the capture source
                # (admission limits); an overload is a skipped verification,
                # not a determinism failure.
                report.rejected += 1
                continue
            if getattr(result, "stale", False):
                # A degraded (version-stale) answer is honest about being
                # stale, so it must never be held against the fingerprint
                # of the fresh captured result.
                report.degraded += 1
                continue
            expected = event.get("fingerprint")
            if expected is None:
                report.skipped += 1
                continue
            replayed = pair_fingerprint(result.pairs)
            report.verified += 1
            if replayed != expected:
                report.mismatches.append(
                    ReplayMismatch(
                        seq=event.get("seq", 0),
                        query=event["query"],
                        expected_pairs=int(event.get("pairs", -1)),
                        replayed_pairs=result.n_pairs,
                        expected_fingerprint=expected,
                        replayed_fingerprint=replayed,
                    )
                )
        # Unknown event types (slo_breach, future additions) replay as no-ops.
    report.wall_seconds = time.perf_counter() - start
    injector = faults.active()
    if injector is not None:
        report.fault_stats = injector.stats()
    if report.mismatches:
        logger.warning(
            "replay diverged: %d of %d verified queries mismatched",
            len(report.mismatches), report.verified,
        )
    return report


def replay_log(path, service=None, config=None, speed: float | None = None) -> ReplayReport:
    """Replay a spooled capture log; builds a fresh service when none given.

    The internally built service disables its own capture (a replay should
    not re-record itself) and uses synchronous compaction so replays are
    single-threaded-deterministic; pass an explicit ``service`` (or a
    ``config``) to replay onto other backends, schedulers or SLO setups.
    """
    from repro.config import ServiceConfig
    from repro.service.service import BandJoinService

    events = load_events(Path(path))
    if service is not None:
        return replay_events(events, service, speed=speed)
    if config is None:
        # degraded_mode="reject" keeps verification sound: a stale-served
        # answer could never match the captured fresh fingerprint.
        config = ServiceConfig(capture=False, compaction="sync", degraded_mode="reject")
    with BandJoinService(config=config) as fresh:
        return replay_events(events, fresh, speed=speed)
