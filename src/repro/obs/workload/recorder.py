"""Low-overhead structured capture of the traffic a service actually serves.

:class:`QueryLogRecorder` is the observatory's write path.  The serving
layer hands it one plain-dict event per request (queries with their
epsilons, latencies and result fingerprints; catalog registrations,
appends and prepares; SLO breaches).  Events land in a bounded in-memory
ring — the raw material of :class:`~repro.obs.workload.snapshot.Workload`
summaries — and, when a spool path is configured, additionally as one JSON
line per event on disk.  The spooled form includes the relation column
data, which makes a capture *replayable*: ``repro-bandjoin replay`` can
reconstruct the catalog state and re-issue the exact request stream (see
:mod:`repro.obs.workload.replay`).

Design constraints, in order:

* **hot-path cost** — recording one query is a dict build plus a lock-free
  ring append (seq numbers come from an atomic counter; the JSONL
  serialization happens under a separate file lock, so concurrent scheduler
  workers never serialize each other's dict builds);
* **bounded memory** — the ring drops the oldest events past capacity and
  counts the drops, and bulky payloads (column data) are never kept in the
  ring, only spooled;
* **deterministic identity** — :func:`pair_fingerprint` reduces a result
  pair set to an order-independent content hash, so captures made under
  different schedulers/backends (which permute pair order) are comparable.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque

import numpy as np

from repro.config import DEFAULT_CAPTURE_RING

__all__ = ["QueryLogRecorder", "pair_fingerprint"]

# splitmix64-style mixing constants: each pair hashes independently, the
# combine is modular addition — order-independent and duplicate-sensitive.
_C1 = np.uint64(0x9E3779B97F4A7C15)
_C2 = np.uint64(0xC2B2AE3D27D4EB4F)
_C3 = np.uint64(0xBF58476D1CE4E5B9)
_C4 = np.uint64(0x94D049BB133111EB)


def pair_fingerprint(pairs: np.ndarray) -> str:
    """Return an order-independent content hash of an ``(n, 2)`` pair set.

    Two results fingerprint equally iff they contain the same multiset of
    ``(s_row, t_row)`` pairs, regardless of pair order — so captures and
    replays running different backends (which emit pairs in different
    orders) still compare equal.  The format is ``"<count>:<hash16hex>"``.
    """
    pairs = np.asarray(pairs)
    n = int(pairs.shape[0]) if pairs.ndim == 2 else 0
    if n == 0:
        return "0:0000000000000000"
    with np.errstate(over="ignore"):
        x = pairs[:, 0].astype(np.uint64) * _C1 + pairs[:, 1].astype(np.uint64) * _C2
        x ^= x >> np.uint64(30)
        x *= _C3
        x ^= x >> np.uint64(27)
        x *= _C4
        x ^= x >> np.uint64(31)
        total = int(np.add.reduce(x, dtype=np.uint64))
    return f"{n}:{total:016x}"


class QueryLogRecorder:
    """Thread-safe bounded ring of traffic events with optional JSONL spooling.

    Parameters
    ----------
    capacity:
        In-memory ring size; the oldest events are dropped (and counted)
        past it.
    spool_path:
        Optional JSONL file appended to on every event.  Spooled events may
        carry extra bulky fields (relation columns) that the ring omits, so
        a spooled capture is replayable while ring memory stays bounded.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPTURE_RING,
        spool_path: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.spool_path = str(spool_path) if spool_path is not None else None
        # The ring write path is lock-free: seq numbers come from an atomic
        # counter and a bounded deque append is atomic under the GIL.  Since
        # every event passes through the ring, the drop count is derivable
        # (``recorded - len(ring)``) instead of tracked per append.
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._count = itertools.count(1)
        self._last_seq = 0
        self._spooled = 0
        self._spool_lock = threading.Lock()
        self._spool = open(spool_path, "a", encoding="utf-8") if spool_path else None

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    @property
    def spooling(self) -> bool:
        """Return whether events are also written to a JSONL spool file."""
        return self._spool is not None

    def record(self, type: str, ts: float | None = None, spool_only: dict | None = None,
               **fields) -> dict:
        """Record one event and return it (as kept in the ring).

        ``ts`` defaults to now; pass the request's arrival wall-clock when
        recording after the fact so inter-arrival statistics stay honest.
        ``spool_only`` fields (e.g. column data) go to the JSONL spool but
        never into the ring.
        """
        event = {"type": type, "ts": time.time() if ts is None else float(ts)}
        event.update(fields)
        return self.record_event(event, spool_only=spool_only)

    def record_completed(self, template: dict, ts: float, queue_seconds: float,
                         exec_seconds: float, path: str) -> None:
        """Record one completed query from a memoized static template.

        This is the scheduler's hot path.  Without a spool it is one atomic
        seq draw plus one ring append of a compact tuple that *shares* the
        template dict — the full event dict is only materialized lazily when
        the ring is read (:meth:`events`).  With a spool the dict must be
        built eagerly anyway, since the JSONL line is the replay source.
        """
        seq = self._last_seq = next(self._count)
        if self._spool is None:
            self._ring.append((template, ts, queue_seconds, exec_seconds, path, seq))
            return
        event = {
            **template,
            "ts": ts,
            "queue_seconds": queue_seconds,
            "exec_seconds": exec_seconds,
            "path": path,
            "seq": seq,
        }
        self._ring.append(event)
        self._spool_write(event)

    def record_event(self, event: dict, spool_only: dict | None = None) -> dict:
        """Record one pre-built event dict (the hot-path entry point).

        The caller owns the dict (it is mutated: ``seq`` is assigned, ``ts``
        defaulted); building the event outside lets hot call sites reuse a
        memoized template instead of re-deriving every field per request.
        """
        if "ts" not in event:
            event["ts"] = time.time()
        self._last_seq = event["seq"] = next(self._count)
        self._ring.append(event)
        if self._spool is not None:
            self._spool_write(event, spool_only)
        return event

    def _spool_write(self, event: dict, spool_only: dict | None = None) -> None:
        """Serialize one event (plus spool-only fields) to the JSONL spool."""
        payload = event if not spool_only else {**event, **spool_only}
        line = json.dumps(payload) + "\n"
        with self._spool_lock:
            if self._spool is not None:
                self._spool.write(line)
                self._spool.flush()
                self._spooled += 1

    # Typed helpers: one per event family, so call sites stay one-liners and
    # the schema lives in one place.
    def record_query(
        self,
        query: str,
        epsilons,
        outcome: str,
        s_name: str,
        t_name: str,
        ts: float | None = None,
        s_version: int | None = None,
        t_version: int | None = None,
        s_rows: int | None = None,
        t_rows: int | None = None,
        queue_seconds: float | None = None,
        exec_seconds: float | None = None,
        path: str | None = None,
        pairs: int | None = None,
        fingerprint: str | None = None,
        error: str | None = None,
        reason: str | None = None,
    ) -> dict:
        """Record one query request (completed, deduplicated, rejected or failed)."""
        fields = {
            "query": query,
            "epsilons": [list(pair) for pair in epsilons],
            "outcome": outcome,
            "s": s_name,
            "t": t_name,
        }
        optional = {
            "s_version": s_version,
            "t_version": t_version,
            "s_rows": s_rows,
            "t_rows": t_rows,
            "queue_seconds": queue_seconds,
            "exec_seconds": exec_seconds,
            "path": path,
            "pairs": pairs,
            "fingerprint": fingerprint,
            "error": error,
            "reason": reason,
        }
        fields.update({k: v for k, v in optional.items() if v is not None})
        return self.record("query", ts=ts, **fields)

    def record_register(self, name: str, rows: int, version: int,
                        columns: dict | None = None) -> dict:
        """Record one relation registration (columns spool-only)."""
        return self.record(
            "register",
            name=name,
            rows=rows,
            version=version,
            spool_only={"columns": columns} if columns is not None else None,
        )

    def record_append(self, name: str, rows: int, version: int, total_rows: int,
                      columns: dict | None = None) -> dict:
        """Record one delta append (the appended columns spool-only)."""
        return self.record(
            "append",
            name=name,
            rows=rows,
            version=version,
            total_rows=total_rows,
            spool_only={"columns": columns} if columns is not None else None,
        )

    def record_prepare(self, query: str, s_name: str, t_name: str, attributes,
                       epsilons, workers: int) -> dict:
        """Record one prepared-query creation."""
        return self.record(
            "prepare",
            query=query,
            s=s_name,
            t=t_name,
            attributes=list(attributes),
            epsilons=None if epsilons is None else [list(pair) for pair in epsilons],
            workers=int(workers),
        )

    def record_breach(self, slo: str, kind: str, value: float, threshold: float) -> dict:
        """Record one SLO breach event."""
        return self.record(
            "slo_breach", slo=slo, kind=kind, value=float(value), threshold=float(threshold)
        )

    # ------------------------------------------------------------------ #
    # Read path and lifecycle
    # ------------------------------------------------------------------ #
    @staticmethod
    def _materialize(entry) -> dict:
        """Expand a compact hot-path ring entry into a full event dict."""
        if type(entry) is not tuple:
            return entry
        template, ts, queue_seconds, exec_seconds, path, seq = entry
        return {
            **template,
            "ts": ts,
            "queue_seconds": queue_seconds,
            "exec_seconds": exec_seconds,
            "path": path,
            "seq": seq,
        }

    def events(self, type: str | None = None) -> list[dict]:
        """Return the ring's events oldest-first (optionally one type only)."""
        while True:
            try:
                entries = list(self._ring)
                break
            except RuntimeError:  # a writer appended mid-iteration; retry
                continue
        events = [self._materialize(entry) for entry in entries]
        if type is not None:
            events = [event for event in events if event["type"] == type]
        return events

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded(self) -> int:
        """Return the total number of events recorded so far."""
        return self._last_seq

    @property
    def dropped(self) -> int:
        """Return the number of events evicted from the ring so far."""
        return max(0, self._last_seq - len(self._ring))

    def describe(self) -> dict:
        """Return a JSON-friendly summary of the recorder's state."""
        return {
            "events": len(self._ring),
            "recorded": self.recorded,
            "dropped": self.dropped,
            "capacity": self.capacity,
            "spool_path": self.spool_path,
            "spooled": self._spooled,
        }

    def close(self) -> None:
        """Flush and close the spool file (ring contents stay readable)."""
        with self._spool_lock:
            if self._spool is not None:
                self._spool.close()
                self._spool = None

    def __enter__(self) -> "QueryLogRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryLogRecorder(events={len(self)}, capacity={self.capacity}, "
            f"spool={self.spool_path!r})"
        )
