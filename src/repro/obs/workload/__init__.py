"""Workload observatory: traffic capture, snapshots, SLOs and replay.

The observatory closes the loop between serving and understanding what was
served: :class:`QueryLogRecorder` captures per-request structured events at
negligible cost, :class:`Workload` condenses a captured period into a
comparable snapshot (arrival process, epsilon mix, table-size trajectory,
hot-key skew) with a drift metric, :class:`SLOMonitor` turns declarative
objectives into breach events on a background cadence, and
:func:`replay_log` replays a spooled capture deterministically — verifying
result fingerprints — so every capture doubles as an integration test.
"""

from repro.obs.workload.recorder import QueryLogRecorder, pair_fingerprint
from repro.obs.workload.replay import (
    ReplayMismatch,
    ReplayReport,
    load_events,
    replay_events,
    replay_log,
)
from repro.obs.workload.slo import SLO, SLO_KINDS, SLOMonitor, service_probes
from repro.obs.workload.snapshot import DRIFT_COMPONENTS, Workload

__all__ = [
    "DRIFT_COMPONENTS",
    "QueryLogRecorder",
    "ReplayMismatch",
    "ReplayReport",
    "SLO",
    "SLO_KINDS",
    "SLOMonitor",
    "Workload",
    "load_events",
    "pair_fingerprint",
    "replay_events",
    "replay_log",
    "service_probes",
]
