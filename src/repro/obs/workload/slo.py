"""Declarative service-level objectives evaluated against live metrics.

An :class:`SLO` names one objective over one measurable signal — currently
the p99 total latency, the failed-request fraction, the result-cache hit
rate, the scheduler queue depth and the cost model's recent estimate
q-error (sustained miscalibration is a health problem like any other).  :class:`SLOMonitor` evaluates a set of
objectives against *probes* (zero-argument callables the owning service
supplies, so the monitor never reaches into service internals), either on a
background cadence or on demand, and turns violations into structured
breach events: a bounded history, a ``repro_slo_breaches_total`` counter in
the service registry, a warning log line, and — when a workload recorder is
attached — an ``slo_breach`` capture event so breaches land in workload
snapshots next to the traffic that caused them.

:meth:`SLOMonitor.health` is the serving surface behind ``{"op": "health"}``
and ``repro-bandjoin stats --health``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs.logconf import get_logger

__all__ = ["SLO", "SLOMonitor", "service_probes"]

logger = get_logger(__name__)

#: Supported objective kinds and the direction of their threshold:
#: ``max`` kinds breach when the value exceeds the threshold, ``min`` kinds
#: when it falls below.
SLO_KINDS: dict[str, str] = {
    "p99_latency_seconds": "max",
    "error_rate": "max",
    "cache_hit_rate": "min",
    "queue_depth": "max",
    "estimate_qerror": "max",
}


@dataclass(frozen=True)
class SLO:
    """One declarative objective: a named threshold over a measurable kind."""

    name: str
    kind: str
    threshold: float

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; supported: {sorted(SLO_KINDS)}"
            )

    def ok(self, value: float) -> bool:
        """Return whether ``value`` satisfies the objective."""
        if SLO_KINDS[self.kind] == "max":
            return value <= self.threshold
        return value >= self.threshold


def service_probes(service) -> dict:
    """Return the standard probe set over a :class:`BandJoinService`.

    Each probe is evaluated at monitoring time; none of them write anything,
    so evaluation is safe on any cadence.
    """

    def error_rate() -> float:
        metrics = service.scheduler.metrics
        finished = metrics.completed + metrics.failed
        return metrics.failed / finished if finished else 0.0

    def cache_hit_rate() -> float:
        hits = misses = 0
        for prepared in service.prepared_queries().values():
            hits += prepared.result_cache_stats.hits
            misses += prepared.result_cache_stats.misses
        return hits / (hits + misses) if hits + misses else 1.0

    return {
        "p99_latency_seconds": lambda: service.scheduler.metrics.latency_percentiles()["p99"],
        "error_rate": error_rate,
        "cache_hit_rate": cache_hit_rate,
        "queue_depth": lambda: float(service.scheduler.pending),
        "estimate_qerror": lambda: service.calibration.mean_qerror(),
    }


class SLOMonitor:
    """Evaluates SLOs against live probes and emits structured breach events.

    Parameters
    ----------
    objectives:
        The :class:`SLO` set to evaluate (may be empty: ``health`` then
        reports healthy with no objectives).
    probes:
        Mapping of SLO kind to a zero-argument measurement callable; every
        objective's kind must have a probe.
    interval:
        Background evaluation cadence in seconds; ``0`` disables the
        background thread (evaluation then happens per ``health()`` call).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving the
        ``repro_slo_breaches_total`` / ``repro_slo_evaluations_total``
        counters.
    recorder:
        Optional :class:`~repro.obs.workload.recorder.QueryLogRecorder`;
        breaches are recorded as capture events when present.
    history:
        Bounded number of recent breach events kept for ``health()``.
    """

    def __init__(
        self,
        objectives=(),
        probes: dict | None = None,
        interval: float = 0.0,
        registry=None,
        recorder=None,
        history: int = 256,
    ) -> None:
        self.objectives = tuple(objectives)
        self.probes = dict(probes or {})
        for objective in self.objectives:
            if objective.kind not in self.probes:
                raise ValueError(f"no probe for SLO kind {objective.kind!r}")
        self.interval = float(interval)
        self.recorder = recorder
        self._lock = threading.Lock()
        self._breaches: list[dict] = []
        self._history = history
        self._breach_total = 0
        self._evaluations = 0
        self._breach_counter = (
            registry.counter("repro_slo_breaches_total", "SLO breaches per objective")
            if registry is not None
            else None
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self) -> list[dict]:
        """Evaluate every objective now; returns one status dict each."""
        statuses = []
        now = time.time()
        for objective in self.objectives:
            value = float(self.probes[objective.kind]())
            ok = objective.ok(value)
            status = {
                "slo": objective.name,
                "kind": objective.kind,
                "value": value,
                "threshold": objective.threshold,
                "ok": ok,
            }
            statuses.append(status)
            if not ok:
                self._breach(objective, value, now)
        with self._lock:
            self._evaluations += 1
        return statuses

    def _breach(self, objective: SLO, value: float, now: float) -> None:
        event = {
            "ts": now,
            "slo": objective.name,
            "kind": objective.kind,
            "value": value,
            "threshold": objective.threshold,
        }
        with self._lock:
            self._breach_total += 1
            self._breaches.append(event)
            if len(self._breaches) > self._history:
                del self._breaches[: len(self._breaches) - self._history]
        if self._breach_counter is not None:
            self._breach_counter.inc(slo=objective.name, kind=objective.kind)
        if self.recorder is not None:
            self.recorder.record_breach(
                objective.name, objective.kind, value, objective.threshold
            )
        logger.warning(
            "SLO breach: %s (%s) value %.6g violates threshold %.6g",
            objective.name, objective.kind, value, objective.threshold,
        )

    def health(self) -> dict:
        """Evaluate now and return the structured health report."""
        statuses = self.evaluate()
        with self._lock:
            breaches_total = self._breach_total
            recent = list(self._breaches[-10:])
            evaluations = self._evaluations
        return {
            "healthy": all(status["ok"] for status in statuses),
            "objectives": statuses,
            "breaches_total": breaches_total,
            "recent_breaches": recent,
            "evaluations": evaluations,
            "monitoring": self._thread is not None and self._thread.is_alive(),
        }

    @property
    def breaches_total(self) -> int:
        """Return the number of breaches observed since construction."""
        with self._lock:
            return self._breach_total

    # ------------------------------------------------------------------ #
    # Background cadence
    # ------------------------------------------------------------------ #
    def start(self) -> bool:
        """Start the background evaluation thread (no-op without objectives
        or with a zero interval); returns whether monitoring runs."""
        if not self.objectives or self.interval <= 0:
            return False
        if self._thread is not None and self._thread.is_alive():
            return True
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="bandjoin-slo-monitor", daemon=True
        )
        self._thread.start()
        return True

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.evaluate()
            except Exception:  # noqa: BLE001 - monitoring must never kill serving
                logger.exception("SLO evaluation failed")

    def stop(self) -> None:
        """Stop the background thread (if running) and join it."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __repr__(self) -> str:
        return (
            f"SLOMonitor(objectives={[o.name for o in self.objectives]}, "
            f"interval={self.interval}, breaches={self.breaches_total})"
        )
