"""Fixed-period workload snapshots: what traffic did the service see?

A :class:`Workload` summarizes the events of one capture period (from a
live :class:`~repro.obs.workload.recorder.QueryLogRecorder` ring or from a
spooled JSONL log) into the quantities a self-tuning planner consumes:

* per prepared query — arrival counts, outcome mix (ok / deduplicated /
  rejected / failed), inter-arrival statistics, per-dimension epsilon
  distributions (exact value histograms), latency and output-size summaries;
* per relation — row-count trajectory (registration plus every append);
* globally — execution-path mix (how much traffic the caches absorbed) and
  the hot-query share (traffic skew across prepared queries).

Snapshots serialize to JSON and round-trip losslessly; :meth:`Workload.diff`
/ :meth:`Workload.drift_score` quantify how far two snapshots' *traffic
shapes* are apart (arrival mix, epsilon mix, table sizes, path mix, volume —
deliberately not latencies, which vary across machines), so a regression
gate can assert ``drift == 0`` for a replay and a planner can detect traffic
shifts worth re-tuning for.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["Workload"]

#: Traffic-shape components combined (equally weighted) by drift_score().
DRIFT_COMPONENTS = ("arrivals", "epsilons", "table_sizes", "paths", "volume")


def _interarrival(timestamps: list[float]) -> dict:
    """Summarize the gaps between consecutive arrival times."""
    gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
    if not gaps:
        return {"samples": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "samples": len(gaps),
        "mean": sum(gaps) / len(gaps),
        "min": min(gaps),
        "max": max(gaps),
    }


def _mean_max(values: list[float]) -> dict:
    if not values:
        return {"samples": 0, "mean": 0.0, "max": 0.0}
    return {"samples": len(values), "mean": sum(values) / len(values), "max": max(values)}


def _count(counter: dict, key) -> None:
    counter[key] = counter.get(key, 0) + 1


def _tv_distance(a: dict, b: dict) -> float:
    """Total-variation distance between two count distributions (0..1)."""
    total_a, total_b = sum(a.values()), sum(b.values())
    if total_a == 0 and total_b == 0:
        return 0.0
    if total_a == 0 or total_b == 0:
        return 1.0
    keys = set(a) | set(b)
    return 0.5 * sum(abs(a.get(k, 0) / total_a - b.get(k, 0) / total_b) for k in keys)


def _epsilon_counts(query_summary: dict) -> dict:
    """Flatten a query's per-dimension epsilon histograms into one count map."""
    counts: dict = {}
    for dim, pairs in enumerate(query_summary.get("epsilons", [])):
        for (left, right), count in pairs:
            counts[(dim, left, right)] = counts.get((dim, left, right), 0) + count
    return counts


class Workload:
    """Summary of the traffic observed over one fixed capture period.

    Build with :meth:`from_recorder`, :meth:`from_log_file` or
    :meth:`from_events`; the constructor takes the already-aggregated
    summary maps (as produced by those builders or :meth:`from_dict`).
    """

    def __init__(
        self,
        period_start: float,
        period_end: float,
        queries: dict,
        relations: dict,
        paths: dict,
        events: int = 0,
        breaches: int = 0,
        dropped: int = 0,
    ) -> None:
        self.period_start = float(period_start)
        self.period_end = float(period_end)
        self.queries = queries
        self.relations = relations
        self.paths = paths
        self.events = int(events)
        self.breaches = int(breaches)
        self.dropped = int(dropped)

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "Workload":
        return cls(0.0, 0.0, {}, {}, {})

    @classmethod
    def from_events(cls, events) -> "Workload":
        """Aggregate a sequence of recorder events into one snapshot."""
        events = sorted(events, key=lambda event: event.get("seq", 0))
        arrivals: dict[str, list[float]] = {}
        outcomes: dict[str, dict] = {}
        eps_counts: dict[str, dict] = {}
        latencies: dict[str, dict[str, list[float]]] = {}
        output_sizes: dict[str, list[float]] = {}
        prepared_meta: dict[str, dict] = {}
        relations: dict[str, dict] = {}
        paths: dict[str, int] = {}
        breaches = 0
        timestamps = [event["ts"] for event in events]
        for event in events:
            kind = event["type"]
            if kind == "query":
                name = event["query"]
                arrivals.setdefault(name, []).append(event["ts"])
                _count(outcomes.setdefault(name, {}), event.get("outcome", "ok"))
                per_dim = eps_counts.setdefault(name, {})
                for dim, pair in enumerate(event.get("epsilons", [])):
                    _count(per_dim.setdefault(dim, {}), (float(pair[0]), float(pair[1])))
                if event.get("path") is not None:
                    _count(paths, event["path"])
                stages = latencies.setdefault(name, {"queue": [], "exec": []})
                if event.get("queue_seconds") is not None:
                    stages["queue"].append(float(event["queue_seconds"]))
                if event.get("exec_seconds") is not None:
                    stages["exec"].append(float(event["exec_seconds"]))
                if event.get("pairs") is not None:
                    output_sizes.setdefault(name, []).append(float(event["pairs"]))
                for side in ("s", "t"):
                    rows = event.get(f"{side}_rows")
                    if rows is not None:
                        entry = relations.setdefault(
                            event[side], {"appends": 0, "trajectory": []}
                        )
                        trajectory = entry["trajectory"]
                        if not trajectory or trajectory[-1][1] != rows:
                            trajectory.append([event["ts"], int(rows)])
            elif kind in ("register", "append"):
                entry = relations.setdefault(event["name"], {"appends": 0, "trajectory": []})
                rows = event["total_rows"] if kind == "append" else event["rows"]
                entry["trajectory"].append([event["ts"], int(rows)])
                if kind == "append":
                    entry["appends"] += 1
            elif kind == "prepare":
                prepared_meta[event["query"]] = {
                    "s": event["s"],
                    "t": event["t"],
                    "attributes": list(event.get("attributes", [])),
                }
            elif kind == "slo_breach":
                breaches += 1
        queries: dict[str, dict] = {}
        for name in sorted(arrivals):
            times = arrivals[name]
            queries[name] = {
                **prepared_meta.get(name, {}),
                "arrivals": len(times),
                "outcomes": dict(sorted(outcomes.get(name, {}).items())),
                "interarrival": _interarrival(times),
                "epsilons": [
                    sorted(
                        ([list(pair), count] for pair, count in per_dim.items()),
                        key=lambda item: item[0],
                    )
                    for _, per_dim in sorted(eps_counts.get(name, {}).items())
                ],
                "latency": {
                    stage: _mean_max(samples)
                    for stage, samples in latencies.get(name, {}).items()
                },
                "output_pairs": _mean_max(output_sizes.get(name, [])),
            }
        for entry in relations.values():
            trajectory = entry["trajectory"]
            entry["first_rows"] = trajectory[0][1] if trajectory else 0
            entry["last_rows"] = trajectory[-1][1] if trajectory else 0
        return cls(
            period_start=min(timestamps) if timestamps else 0.0,
            period_end=max(timestamps) if timestamps else 0.0,
            queries=queries,
            relations=dict(sorted(relations.items())),
            paths=dict(sorted(paths.items())),
            events=len(events),
            breaches=breaches,
        )

    @classmethod
    def from_recorder(cls, recorder) -> "Workload":
        """Snapshot the current contents of a live recorder's ring."""
        workload = cls.from_events(recorder.events())
        workload.dropped = recorder.dropped
        return workload

    @classmethod
    def from_log_file(cls, path) -> "Workload":
        """Build a snapshot from a spooled JSONL capture log."""
        events = []
        with open(path, encoding="utf-8") as spool:
            for line in spool:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return cls.from_events(events)

    # ------------------------------------------------------------------ #
    # Derived measures
    # ------------------------------------------------------------------ #
    @property
    def period_seconds(self) -> float:
        """Return the capture period length (first to last event)."""
        return max(0.0, self.period_end - self.period_start)

    @property
    def total_arrivals(self) -> int:
        """Return the total number of query arrivals across prepared queries."""
        return sum(q["arrivals"] for q in self.queries.values())

    def arrival_counts(self) -> dict:
        """Return the per-query arrival counts (the traffic mix)."""
        return {name: q["arrivals"] for name, q in self.queries.items()}

    @property
    def hot_query_share(self) -> float:
        """Return the hottest prepared query's share of all arrivals (skew)."""
        total = self.total_arrivals
        if not total:
            return 0.0
        return max(q["arrivals"] for q in self.queries.values()) / total

    # ------------------------------------------------------------------ #
    # Comparison
    # ------------------------------------------------------------------ #
    def diff(self, other: "Workload") -> dict:
        """Return per-component drift versus ``other`` (each within [0, 1]).

        Components: ``arrivals`` (traffic mix across queries), ``epsilons``
        (parameter mix, averaged over queries), ``table_sizes`` (relative
        final-row-count change), ``paths`` (execution-path mix) and
        ``volume`` (total arrival count change).  ``score`` is their mean.
        """
        components = {
            "arrivals": _tv_distance(self.arrival_counts(), other.arrival_counts()),
            "epsilons": self._epsilon_drift(other),
            "table_sizes": self._table_size_drift(other),
            "paths": _tv_distance(self.paths, other.paths),
        }
        volume_a, volume_b = self.total_arrivals, other.total_arrivals
        components["volume"] = (
            abs(volume_a - volume_b) / max(volume_a, volume_b)
            if max(volume_a, volume_b)
            else 0.0
        )
        components["score"] = sum(components[c] for c in DRIFT_COMPONENTS) / len(
            DRIFT_COMPONENTS
        )
        return components

    def drift_score(self, other: "Workload") -> float:
        """Return the scalar traffic-shape distance to ``other`` (0 = identical)."""
        return self.diff(other)["score"]

    def _epsilon_drift(self, other: "Workload") -> float:
        names = set(self.queries) | set(other.queries)
        if not names:
            return 0.0
        distances = [
            _tv_distance(
                _epsilon_counts(self.queries.get(name, {})),
                _epsilon_counts(other.queries.get(name, {})),
            )
            for name in sorted(names)
        ]
        return sum(distances) / len(distances)

    def _table_size_drift(self, other: "Workload") -> float:
        names = set(self.relations) | set(other.relations)
        if not names:
            return 0.0
        changes = []
        for name in sorted(names):
            rows_a = self.relations.get(name, {}).get("last_rows", 0)
            rows_b = other.relations.get(name, {}).get("last_rows", 0)
            top = max(rows_a, rows_b)
            changes.append(abs(rows_a - rows_b) / top if top else 0.0)
        return sum(changes) / len(changes)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Return the JSON-friendly form (lossless; see :meth:`from_dict`)."""
        return {
            "period_start": self.period_start,
            "period_end": self.period_end,
            "period_seconds": self.period_seconds,
            "events": self.events,
            "breaches": self.breaches,
            "dropped": self.dropped,
            "total_arrivals": self.total_arrivals,
            "hot_query_share": self.hot_query_share,
            "queries": self.queries,
            "relations": self.relations,
            "paths": self.paths,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Workload":
        return cls(
            period_start=data.get("period_start", 0.0),
            period_end=data.get("period_end", 0.0),
            queries=data.get("queries", {}),
            relations=data.get("relations", {}),
            paths=data.get("paths", {}),
            events=data.get("events", 0),
            breaches=data.get("breaches", 0),
            dropped=data.get("dropped", 0),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Workload":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> Path:
        """Write the snapshot as JSON and return the path."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path) -> "Workload":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def describe(self) -> str:
        """Return a short human-readable summary."""
        lines = [
            f"workload: {self.total_arrivals} arrivals over "
            f"{self.period_seconds:.1f}s, {len(self.queries)} prepared queries, "
            f"{len(self.relations)} relations, hot-query share "
            f"{self.hot_query_share:.2f}",
        ]
        for name, query in self.queries.items():
            outcomes = ", ".join(f"{k}={v}" for k, v in query["outcomes"].items())
            lines.append(f"  {name}: {query['arrivals']} arrivals ({outcomes})")
        if self.paths:
            mix = ", ".join(f"{k}={v}" for k, v in self.paths.items())
            lines.append(f"  paths: {mix}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Workload(arrivals={self.total_arrivals}, queries={len(self.queries)}, "
            f"relations={len(self.relations)}, period={self.period_seconds:.1f}s)"
        )
