"""Registry adapters over the system's pre-existing stats objects.

Instead of rewriting every bespoke counter bundle, the adapters mirror them
into a :class:`~repro.obs.registry.MetricsRegistry` through **callback
gauges** evaluated at scrape time — zero writes on any hot path, and the
original objects (``PlanCacheStats``, the prepared-query cache accounting)
keep their direct APIs for existing callers and tests.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = ["bind_plan_cache", "bind_prepared_query"]


def bind_plan_cache(registry: MetricsRegistry, cache) -> None:
    """Mirror a :class:`~repro.engine.plan_cache.PlanCache` into ``registry``."""
    registry.gauge(
        "repro_plan_cache_entries", "partitioning plans currently cached"
    ).set_function(lambda: len(cache))
    stats = cache.stats
    for field in ("hits", "misses", "evictions"):
        registry.gauge(
            f"repro_plan_cache_{field}", f"plan cache {field} since start"
        ).set_function(lambda field=field: getattr(stats, field))
    registry.gauge(
        "repro_plan_cache_hit_rate", "fraction of plan lookups answered from cache"
    ).set_function(lambda: stats.hit_rate)


def bind_prepared_query(registry: MetricsRegistry, name: str, prepared) -> None:
    """Mirror one prepared query's result-cache accounting into ``registry``.

    Gauges are labeled ``query=<name>``; re-preparing under the same name
    rebinds the callbacks to the new object.
    """
    labels = {"query": name}
    registry.gauge(
        "repro_result_cache_entries", "materialized results currently cached"
    ).set_function(prepared.cached_results, **labels)
    for field in ("hits", "misses", "evictions", "invalidations", "stores"):
        registry.gauge(
            f"repro_result_cache_{field}", f"result cache {field} since prepare"
        ).set_function(
            lambda field=field, prepared=prepared: getattr(
                prepared.result_cache_stats, field
            ),
            **labels,
        )
    registry.gauge(
        "repro_query_executions", "executions of this prepared query"
    ).set_function(lambda: prepared.stats.executions, **labels)
