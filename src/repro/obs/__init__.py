"""Unified telemetry layer: metrics registry, tracing, profiling, logging.

One import surface for the whole system:

* :func:`registry` / :func:`tracer` — the process-wide default
  :class:`MetricsRegistry` and :class:`Tracer` (deep layers publish here;
  services keep an additional per-instance registry for their adapters).
* :func:`enable` / :func:`disable` / :func:`is_enabled` — the global switch
  gating implicit instrumentation (spans, kernel profiles).  Disabled by
  default; ``REPRO_TELEMETRY=1`` or the serving layer turn it on.
* :func:`percentile` — the shared exact-quantile helper every latency
  report uses, so quantiles are computed identically everywhere.
* :func:`setup_logging` / :func:`get_logger` — structured ``logging``
  wiring (``REPRO_LOG_LEVEL`` / ``--verbose``).
* :mod:`repro.obs.workload` — the workload observatory (traffic capture,
  :class:`Workload` snapshots, SLO monitoring, capture/replay); its main
  names are re-exported here.
* :mod:`repro.obs.explain` — EXPLAIN / EXPLAIN ANALYZE plan reports with
  estimate-vs-actual q-error accounting and the persistent cost-model
  calibration store; its main names are re-exported here.
"""

from repro.obs._state import disable, enable, is_enabled
from repro.obs.adapters import bind_plan_cache, bind_prepared_query
from repro.obs.explain import (
    CalibrationStore,
    EstimateAccuracyTracker,
    QueryPlanReport,
    format_plan_tree,
    qerror,
)
from repro.obs.globals import registry, tracer
from repro.obs.logconf import get_logger, resolve_level, setup_logging
from repro.obs.process import (
    current_rss_bytes,
    peak_rss_bytes,
    reset_peak_rss,
    rss_supported,
)
from repro.obs.registry import (
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    percentile,
)
from repro.obs.tracing import (
    NOOP_SPAN,
    Span,
    SpanContext,
    Tracer,
    format_trace_tree,
    new_span_id,
    span_record,
)

# Imported last: the workload modules use the submodules above.
from repro.obs.workload import (
    SLO,
    QueryLogRecorder,
    SLOMonitor,
    Workload,
    pair_fingerprint,
    replay_log,
    service_probes,
)

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "registry",
    "tracer",
    "percentile",
    "log_buckets",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_RATIO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "Span",
    "SpanContext",
    "NOOP_SPAN",
    "new_span_id",
    "span_record",
    "format_trace_tree",
    "get_logger",
    "setup_logging",
    "resolve_level",
    "current_rss_bytes",
    "peak_rss_bytes",
    "reset_peak_rss",
    "rss_supported",
    "bind_plan_cache",
    "bind_prepared_query",
    "QueryLogRecorder",
    "Workload",
    "SLO",
    "SLOMonitor",
    "service_probes",
    "pair_fingerprint",
    "replay_log",
    "CalibrationStore",
    "EstimateAccuracyTracker",
    "QueryPlanReport",
    "format_plan_tree",
    "qerror",
]
