"""Structured EXPLAIN / EXPLAIN ANALYZE plan reports.

A :class:`QueryPlanReport` is a tree of :class:`PlanNode` objects, one per
introspectable plan element (the join itself, the chosen partitioning, each
partition worker, the kernel selector, the cost model).  Every node carries
two parallel dicts — ``estimates`` (what the planner believed) and
``actuals`` (what execution measured) — and derives a per-key **q-error**
``max(estimate/actual, actual/estimate)`` for every key present in both.
Plain EXPLAIN leaves ``actuals`` empty; EXPLAIN ANALYZE grafts the measured
figures onto the same tree, so estimate accuracy is visible node by node.

The report is JSON-first (:meth:`QueryPlanReport.to_dict` is what the
``{"op": "explain"}`` protocol ships); :func:`format_plan_tree` renders the
serialized form for humans through the shared tree renderer of
:mod:`repro.obs.render` — the same machinery behind ``stats --trace``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

__all__ = ["PlanNode", "QueryPlanReport", "qerror", "format_plan_tree"]


def qerror(estimate: float, actual: float) -> float:
    """Return the q-error ``max(estimate/actual, actual/estimate)``.

    The symmetric multiplicative error standard in cardinality-estimation
    literature: 1.0 is a perfect estimate, 2.0 is off by 2x in either
    direction.  Conventions at the boundary: two zeros agree perfectly
    (1.0); a zero on exactly one side is an infinite multiplicative miss.
    """
    estimate = float(estimate)
    actual = float(actual)
    if estimate < 0 or actual < 0:
        raise ValueError("q-error inputs must be non-negative")
    if estimate == 0.0 and actual == 0.0:
        return 1.0
    if estimate == 0.0 or actual == 0.0:
        return math.inf
    return max(estimate / actual, actual / estimate)


@dataclass
class PlanNode:
    """One element of a plan report tree.

    ``attrs`` holds descriptive facts (method names, thresholds, cache
    provenance); ``estimates`` and ``actuals`` hold the numeric accounting
    that q-errors are derived from.  Keys shared by both dicts are the
    node's estimate-vs-actual pairs.
    """

    name: str
    attrs: dict = field(default_factory=dict)
    estimates: dict = field(default_factory=dict)
    actuals: dict = field(default_factory=dict)
    children: list["PlanNode"] = field(default_factory=list)

    def child(self, name: str, **attrs) -> "PlanNode":
        """Append and return a new child node."""
        node = PlanNode(name=name, attrs=dict(attrs))
        self.children.append(node)
        return node

    def estimate(self, **values) -> "PlanNode":
        """Record estimate values (``None`` entries are skipped)."""
        self.estimates.update(
            {k: float(v) for k, v in values.items() if v is not None}
        )
        return self

    def actual(self, **values) -> "PlanNode":
        """Record actual (measured) values (``None`` entries are skipped)."""
        self.actuals.update(
            {k: float(v) for k, v in values.items() if v is not None}
        )
        return self

    def qerrors(self) -> dict:
        """Return the q-error of every key carrying both an estimate and an actual."""
        return {
            key: qerror(self.estimates[key], self.actuals[key])
            for key in self.estimates
            if key in self.actuals
        }

    def max_qerror(self) -> float | None:
        """Return the worst q-error in this subtree (``None`` when no pairs)."""
        worst = max(self.qerrors().values(), default=None)
        for child in self.children:
            child_worst = child.max_qerror()
            if child_worst is not None and (worst is None or child_worst > worst):
                worst = child_worst
        return worst

    def to_dict(self) -> dict:
        """Serialize the subtree (q-errors materialized; inf becomes ``"inf"``)."""
        info: dict = {"name": self.name}
        if self.attrs:
            info["attrs"] = dict(self.attrs)
        if self.estimates:
            info["estimates"] = dict(self.estimates)
        if self.actuals:
            info["actuals"] = dict(self.actuals)
            errors = self.qerrors()
            if errors:
                info["qerrors"] = {
                    k: ("inf" if math.isinf(v) else v) for k, v in errors.items()
                }
        if self.children:
            info["children"] = [child.to_dict() for child in self.children]
        return info


@dataclass
class QueryPlanReport:
    """The complete EXPLAIN (ANALYZE) outcome of one prepared-query binding."""

    query: str
    s_name: str
    t_name: str
    epsilons: tuple
    analyze: bool
    root: PlanNode
    #: Execution path actually taken (EXPLAIN ANALYZE only).
    path: str | None = None
    seconds: float = 0.0
    ts: float = field(default_factory=time.time)

    def max_qerror(self) -> float | None:
        """Return the worst q-error anywhere in the plan tree."""
        return self.root.max_qerror()

    def to_dict(self) -> dict:
        worst = self.max_qerror()
        return {
            "query": self.query,
            "s": self.s_name,
            "t": self.t_name,
            "epsilons": [list(pair) for pair in self.epsilons],
            "analyze": self.analyze,
            "path": self.path,
            "seconds": self.seconds,
            "ts": self.ts,
            "max_qerror": (
                None if worst is None else ("inf" if math.isinf(worst) else worst)
            ),
            "plan": self.root.to_dict(),
        }

    def render(self) -> str:
        """Pretty-print the report (delegates to :func:`format_plan_tree`)."""
        return format_plan_tree(self.to_dict())


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        return f"{value:.4g}"
    return str(value)


def _node_label(node: dict, depth: int) -> str:
    from repro.obs.render import format_attrs

    parts = [node["name"]]
    estimates = node.get("estimates") or {}
    actuals = node.get("actuals") or {}
    qerrors = node.get("qerrors") or {}
    measures = []
    for key in estimates:
        text = f"{key}={_format_value(estimates[key])}"
        if key in actuals:
            text += f" (actual {_format_value(actuals[key])}"
            if key in qerrors:
                q = qerrors[key]
                text += f", q={'inf' if q == 'inf' else format(float(q), '.3g')}"
            text += ")"
        measures.append(text)
    for key in actuals:
        if key not in estimates:
            measures.append(f"{key}={_format_value(actuals[key])} (actual)")
    if measures:
        parts.append(" ".join(measures))
    label = " ".join(parts)
    return label + format_attrs(node.get("attrs"))


def format_plan_tree(report: dict) -> str:
    """Render a serialized :class:`QueryPlanReport` dict as an indented tree."""
    from repro.obs.render import render_tree

    mode = "EXPLAIN ANALYZE" if report.get("analyze") else "EXPLAIN"
    epsilons = report.get("epsilons")
    header = (
        f"{mode} {report.get('query')} "
        f"({report.get('s')} ⋈ {report.get('t')}, epsilons={epsilons})"
    )
    if report.get("path"):
        header += f" path={report['path']}"
    worst = report.get("max_qerror")
    if worst is not None:
        header += f" max_qerror={'inf' if worst == 'inf' else format(float(worst), '.3g')}"
    lines = [header]
    plan = report.get("plan")
    if plan is not None:
        render_tree(plan, _node_label, lines=lines)
    return "\n".join(lines)
