"""Persistent estimate-vs-actual records and cost-model recalibration.

Every analyzed (executed) query yields one ``(estimate, actual, features)``
record; :class:`CalibrationStore` keeps them as one JSON line each in a
bounded on-disk spool — the same idiom as the workload capture spool — so
estimate accuracy survives process restarts and accumulates across serving
sessions.  :meth:`CalibrationStore.calibrate` is the reducer: it refits the
running-time model's betas (non-negative least squares over the recorded
``(I, I_m, O_m) -> seconds`` observations) and reports how far the estimates
have drifted from reality before vs after the refit.

:class:`EstimateAccuracyTracker` is the live half: the scheduler hands it
every *executed* completion (cache-served paths are skipped — their
"estimate" would be the cached exact answer), it derives the output q-error,
feeds the ``repro_estimate_qerror`` histogram, keeps a bounded window for
the ``estimate_qerror`` SLO probe, and appends the durable record to the
store when one is configured.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.config import DEFAULT_CALIBRATION_MAX_RECORDS
from repro.obs.explain.report import qerror
from repro.obs.registry import DEFAULT_RATIO_BUCKETS

__all__ = [
    "CalibrationStore",
    "CalibrationReport",
    "EstimateAccuracyTracker",
    "DEFAULT_CALIBRATION_MAX_RECORDS",
    "MIN_CALIBRATION_RECORDS",
]

#: Minimum analyzed runs before :meth:`CalibrationStore.calibrate` will refit.
MIN_CALIBRATION_RECORDS: int = 20


@dataclass
class CalibrationReport:
    """Outcome of one :meth:`CalibrationStore.calibrate` reduction."""

    #: Refit :class:`~repro.cost.model.RunningTimeModel`.
    model: object
    n_records: int
    #: Mean absolute relative error of the betas in force when the records
    #: were written (the drift the refit corrects).
    before_error: float
    #: Mean absolute relative error of the refit betas over the same records.
    after_error: float
    #: Mean output-cardinality q-error across the records (finite ones).
    mean_output_qerror: float

    @property
    def drift(self) -> float:
        """Return how much error the refit removed (before - after)."""
        return self.before_error - self.after_error

    def to_dict(self) -> dict:
        c = self.model.coefficients
        return {
            "betas": {
                "beta0": c.beta0,
                "beta1": c.beta1,
                "beta2": c.beta2,
                "beta3": c.beta3,
            },
            "records": self.n_records,
            "before_error": self.before_error,
            "after_error": self.after_error,
            "drift": self.drift,
            "mean_output_qerror": self.mean_output_qerror,
        }


class CalibrationStore:
    """Bounded JSONL spool of per-query estimate-vs-actual records.

    Parameters
    ----------
    path:
        Spool file (created on first append); ``None`` keeps the records in
        memory only — same API, no persistence (tests, embedded use).
    max_records:
        Retention bound.  Appends past twice the bound trigger a compacting
        rewrite that keeps the newest ``max_records`` lines, so steady-state
        disk usage stays within a factor of two of the bound.
    """

    def __init__(
        self,
        path: str | None = None,
        max_records: int = DEFAULT_CALIBRATION_MAX_RECORDS,
    ) -> None:
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        self.path = str(path) if path is not None else None
        self.max_records = max_records
        self._lock = threading.Lock()
        self._memory: deque[dict] = deque(maxlen=max_records)
        self._count = 0
        if self.path is not None and os.path.exists(self.path):
            for record in self._read_disk():
                self._memory.append(record)
            self._count = len(self._memory)

    def append(self, record: dict) -> None:
        """Append one record (adds a ``ts`` when missing)."""
        if "ts" not in record:
            record["ts"] = time.time()
        with self._lock:
            self._memory.append(record)
            self._count += 1
            if self.path is None:
                return
            with open(self.path, "a", encoding="utf-8") as spool:
                spool.write(json.dumps(record) + "\n")
            if self._count >= 2 * self.max_records:
                self._compact_locked()

    def _compact_locked(self) -> None:
        """Rewrite the spool keeping only the newest ``max_records`` lines."""
        newest = list(self._read_disk())[-self.max_records:]
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as spool:
            for record in newest:
                spool.write(json.dumps(record) + "\n")
        os.replace(tmp, self.path)
        self._count = len(newest)

    def _read_disk(self):
        with open(self.path, encoding="utf-8") as spool:
            for line in spool:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn tail line must not poison the store

    def records(self) -> list[dict]:
        """Return the retained records, oldest first."""
        with self._lock:
            if self.path is not None and os.path.exists(self.path):
                return list(self._read_disk())[-self.max_records:]
            return list(self._memory)

    def __len__(self) -> int:
        return len(self.records())

    def calibrate(
        self,
        min_records: int = MIN_CALIBRATION_RECORDS,
        fit_intercept: bool = True,
    ) -> CalibrationReport:
        """Refit the running-time betas over the recorded observations.

        Raises :class:`~repro.exceptions.CostModelError` with fewer than
        ``min_records`` usable records (an analyzed run is usable when it
        carries the ``features`` block and a positive execution time).
        """
        import numpy as np

        from repro.cost.model import ModelCoefficients, RunningTimeModel
        from repro.exceptions import CostModelError

        usable = [
            r
            for r in self.records()
            if r.get("features") and float(r.get("seconds", 0.0)) > 0.0
        ]
        if len(usable) < max(min_records, 3):
            raise CostModelError(
                f"calibration needs at least {max(min_records, 3)} analyzed runs, "
                f"have {len(usable)}"
            )
        total = np.array([r["features"]["total_input"] for r in usable], dtype=float)
        max_in = np.array([r["features"]["max_input"] for r in usable], dtype=float)
        max_out = np.array([r["features"]["max_output"] for r in usable], dtype=float)
        seconds = np.array([r["seconds"] for r in usable], dtype=float)
        model = RunningTimeModel.fit(
            total, max_in, max_out, seconds, fit_intercept=fit_intercept
        )

        def mean_abs_error(m: RunningTimeModel) -> float:
            predicted = m.predict_many(total, max_in, max_out)
            return float(np.mean(np.abs(predicted - seconds) / seconds))

        # "Before" = the betas in force when the newest record was written;
        # older records may carry other betas, but the newest are what a
        # running service would keep using without this refit.
        before = usable[-1].get("betas")
        before_model = (
            RunningTimeModel(
                ModelCoefficients(
                    float(before["beta0"]),
                    float(before["beta1"]),
                    float(before["beta2"]),
                    float(before["beta3"]),
                )
            )
            if before
            else RunningTimeModel()
        )
        finite_q = [
            float(r["qerror"])
            for r in usable
            if r.get("qerror") is not None and math.isfinite(float(r["qerror"]))
        ]
        return CalibrationReport(
            model=model,
            n_records=len(usable),
            before_error=mean_abs_error(before_model),
            after_error=mean_abs_error(model),
            mean_output_qerror=(
                sum(finite_q) / len(finite_q) if finite_q else float("nan")
            ),
        )

    def describe(self) -> dict:
        """Return a JSON-friendly summary of the store's state."""
        with self._lock:
            return {
                "path": self.path,
                "records": len(self._memory) if self.path is None else self._count,
                "max_records": self.max_records,
                "appended": self._count,
            }

    def __repr__(self) -> str:
        return f"CalibrationStore(path={self.path!r}, max_records={self.max_records})"


#: Execution paths whose completions carry genuine (non-cache) estimates.
_EXECUTED_PATHS = frozenset({"cold", "plan_cache", "delta"})


class EstimateAccuracyTracker:
    """Live estimate-vs-actual accounting fed by the scheduler.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving the
        ``repro_estimate_qerror`` histogram (ratio buckets).
    store:
        Optional :class:`CalibrationStore` receiving one durable record per
        executed completion.
    window:
        Bound on the recent-q-error window behind :meth:`mean_qerror` (the
        ``estimate_qerror`` SLO probe).
    """

    def __init__(self, registry=None, store: CalibrationStore | None = None,
                 window: int = 256) -> None:
        self.store = store
        self._lock = threading.Lock()
        self._recent: deque[float] = deque(maxlen=window)
        self._observed = 0
        self._histogram = (
            registry.histogram(
                "repro_estimate_qerror",
                "output-cardinality estimate q-error of executed queries",
                buckets=DEFAULT_RATIO_BUCKETS,
            )
            if registry is not None
            else None
        )

    def observe(self, prepared, ekey: tuple, result, exec_seconds: float) -> None:
        """Account one completed request (no-op for cache-served paths).

        Never raises: estimate accounting must not fail a query.
        """
        if result.path not in _EXECUTED_PATHS:
            return
        try:
            self._observe(prepared, ekey, result, exec_seconds)
        except Exception:  # noqa: BLE001 - accounting must never fail serving
            pass

    def _observe(self, prepared, ekey, result, exec_seconds: float) -> None:
        estimate = prepared.sampled_estimate(ekey)
        q = qerror(estimate, result.n_pairs)
        with self._lock:
            self._recent.append(min(q, 1e9))  # keep the window mean finite
            self._observed += 1
        if self._histogram is not None:
            self._histogram.observe(min(q, 1e9), query=_query_name(prepared))
        if self.store is None:
            return
        job = result.job
        record = {
            "query": _query_name(prepared),
            "epsilons": [list(pair) for pair in ekey],
            "path": result.path,
            "estimate": float(estimate),
            "actual": int(result.n_pairs),
            "qerror": None if math.isinf(q) else float(q),
            "seconds": float(exec_seconds),
            "betas": _current_betas(prepared),
        }
        if job is not None:
            weights = prepared.engine.weights
            record["features"] = {
                "total_input": int(job.total_input),
                "max_input": int(job.max_worker_input(weights)),
                "max_output": int(job.max_worker_output(weights)),
            }
            try:
                record["features"]["s_rows"] = prepared.catalog.get(result.s_name).rows
                record["features"]["t_rows"] = prepared.catalog.get(result.t_name).rows
            except Exception:  # noqa: BLE001
                pass
        self.store.append(record)

    def mean_qerror(self) -> float:
        """Return the mean q-error over the recent window (1.0 when empty).

        The empty default reads as "perfectly calibrated", so an
        ``estimate_qerror`` SLO stays green until there is evidence."""
        with self._lock:
            if not self._recent:
                return 1.0
            return sum(self._recent) / len(self._recent)

    @property
    def observed(self) -> int:
        """Return the number of executed completions accounted so far."""
        with self._lock:
            return self._observed

    def describe(self) -> dict:
        return {
            "observed": self.observed,
            "mean_qerror": self.mean_qerror(),
            "window": self._recent.maxlen,
            "store": self.store.describe() if self.store is not None else None,
        }


def _query_name(prepared) -> str:
    return getattr(prepared, "name", None) or (
        f"{getattr(prepared, 's_name', '?')}⋈{getattr(prepared, 't_name', '?')}"
    )


def _current_betas(prepared) -> dict:
    """Return the load-model betas in force for this prepared query.

    The optimizer's load weights supply beta2/beta3; beta1 (per shuffled
    tuple) and beta0 default to the running-time model's defaults since the
    serving layer does not currently calibrate them per query.
    """
    weights = prepared.engine.weights
    return {
        "beta0": 0.0,
        "beta1": 1.0,
        "beta2": float(weights.beta_input),
        "beta3": float(weights.beta_output),
    }
