"""Builds :class:`~repro.obs.explain.report.QueryPlanReport` trees.

EXPLAIN resolves the partitioning through the engine's plan cache (recording
whether it was cached or optimized on the spot), routes a deterministic row
sample of both relations through it to estimate per-worker input, splits the
sampled output estimate across workers by their candidate share, prices the
expected kernel chunking against the byte budget, and reports the AutoJoin
selector's decision with the per-dimension window fractions it priced and
the alternatives it rejected.  No engine dispatch runs.

EXPLAIN ANALYZE additionally executes the query (through whatever callable
the caller supplies — the service routes it through the scheduler so
analyzed runs share single-flight and admission control) and grafts the
measured figures onto the same nodes: true pair counts, per-worker
input/output/wall-time from the job statistics, and kernel chunk /
candidate / re-sort totals diffed from the process-wide kernel-profiling
counters.  Every node with both figures then carries a q-error.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.cost.model import ModelCoefficients, RunningTimeModel
from repro.local_join import kernels
from repro.obs.explain.report import PlanNode, QueryPlanReport
from repro.obs.explain.store import _EXECUTED_PATHS

__all__ = ["build_report", "kernel_counter_totals"]

#: Per-side row-sample size of the routing-based per-worker estimates.
#: Larger than the selectivity probe's 512 — routing skew matters here —
#: but still far below any real dispatch.
ROUTING_SAMPLE: int = 2048

#: Kernel counters diffed around an analyzed execution (process registry).
#: Help strings mirror :mod:`repro.obs.kernelprof` so whichever side
#: registers first the exposition reads the same.
_KERNEL_COUNTERS = (
    ("chunks", "repro_kernel_chunks_total", "candidate chunks emitted by the kernels"),
    ("candidates", "repro_kernel_candidates_total", "candidate pairs expanded by the kernels"),
    ("pairs", "repro_kernel_pairs_total", "pairs surviving the residual masks"),
    ("resort_probes", "repro_kernel_resort_probes_total", "adaptive expansion-dimension probes"),
    ("resort_wins", "repro_kernel_resort_wins_total",
     "chunks expanded on a re-sorted alternative dimension"),
)


def kernel_counter_totals() -> dict:
    """Sum the kernel-profiling counters across labels (0 when never used)."""
    from repro.obs import registry

    reg = registry()
    totals = {}
    for key, metric, help_text in _KERNEL_COUNTERS:
        counter = reg.counter(metric, help_text)
        totals[key] = int(sum(count for _, count in counter.items()))
    return totals


def _sampled_matrix(relation, attributes) -> tuple[np.ndarray, float]:
    """Return (sample matrix, scale) where scale maps sample counts to full."""
    from repro.sampling.selectivity import evenly_spaced_indices
    from repro.service.prepared import gather_rows

    n = len(relation)
    idx = evenly_spaced_indices(n, ROUTING_SAMPLE)
    if idx is None:
        return relation.join_matrix(attributes), 1.0
    return gather_rows(relation, attributes, idx), n / idx.shape[0]


def _relation_label(name: str, snap) -> str:
    """Render one side of the join root: identity, size and physical layout."""
    label = f"{name} v{snap.version} ({snap.rows:,} rows)"
    storage = getattr(snap, "storage", None)
    if storage is None:
        return label
    if storage == "mmap":
        segments = getattr(snap, "segment_count", 1)
        return f"{label} [mmap, {segments} segment{'s' if segments != 1 else ''}]"
    return f"{label} [{storage}]"


def _worker_counts(plan, matrix: np.ndarray, side: str, scale: float) -> np.ndarray:
    """Estimate per-worker routed input rows from a sample (full-size scale)."""
    _, workers = plan.route_to_workers(matrix, side)
    counts = np.bincount(workers, minlength=plan.workers).astype(float)
    return counts * scale


def _selector_node(prepared, s_sample, t_sample, condition, fractions) -> PlanNode:
    """Describe the kernel selection this query's tasks would run under."""
    from repro.local_join.auto import AutoJoin

    algorithm = prepared.engine.algorithm
    node = PlanNode("selector", attrs={"algorithm": algorithm.name})
    node.attrs["window_fractions"] = [round(float(f), 6) for f in fractions]
    if not isinstance(algorithm, AutoJoin):
        node.attrs["fixed"] = True
        return node
    _, info = algorithm.decision(s_sample, t_sample, condition)
    node.attrs.update(
        chosen=info["chosen"],
        regime=info["regime"],
        tiny_pairs=info["tiny_pairs"],
        dense_fraction=info["dense_fraction"],
    )
    if info.get("sweep_dimension") is not None:
        node.attrs["sweep_dimension"] = info["sweep_dimension"]
    for alternative in info["rejected"]:
        node.child(
            f"rejected {alternative['kernel']}", reason=alternative["reason"]
        )
    return node


def build_report(
    prepared,
    epsilons=None,
    analyze: bool = False,
    execute=None,
    model: RunningTimeModel | None = None,
) -> QueryPlanReport:
    """Build the EXPLAIN (ANALYZE) report of one prepared-query binding.

    Parameters
    ----------
    prepared:
        The :class:`~repro.service.prepared.PreparedQuery` to introspect.
    epsilons:
        Epsilon binding (defaults apply as in ``execute``).
    analyze:
        Execute and graft actuals when ``True``.
    execute:
        Execution callable ``(ekey) -> QueryResult`` used under ``analyze``
        (defaults to ``prepared.execute``; the service passes a
        scheduler-routed closure).
    model:
        Running-time model pricing the plan; defaults to the betas derived
        from the engine's load weights (pass a calibrated model to price in
        real seconds).
    """
    from repro.sampling.selectivity import window_fractions

    started = time.perf_counter()
    ekey = prepared.resolve_epsilons(epsilons)
    condition = prepared.condition(ekey)
    s_snap, t_snap = prepared.snapshots()

    plan, plan_cached = prepared.engine.plan_cache.get_or_build(
        prepared.partitioner, s_snap.base, t_snap.base, condition, prepared.workers
    )

    s_sample, s_scale = _sampled_matrix(s_snap.full, prepared.attributes)
    t_sample, t_scale = _sampled_matrix(t_snap.full, prepared.attributes)
    s_counts = _worker_counts(plan, s_sample, "S", s_scale)
    t_counts = _worker_counts(plan, t_sample, "T", t_scale)
    fractions = window_fractions(s_sample, t_sample, condition)
    best_fraction = float(fractions.min()) if fractions.size else 0.0

    est_pairs = float(prepared.estimate_pairs(ekey))
    est_output_total = float(prepared.sampled_estimate(ekey))
    # Split the output estimate across workers by candidate share: a worker
    # holding many rows of both sides produces proportionally more pairs.
    products = s_counts * t_counts
    product_total = float(products.sum())
    output_shares = (
        products / product_total
        if product_total > 0
        else np.full(plan.workers, 1.0 / plan.workers)
    )
    est_outputs = est_output_total * output_shares
    est_candidates = best_fraction * products
    budget = getattr(prepared.engine.backend, "memory_budget", None)
    if not budget or budget < 1:
        budget = kernels.DEFAULT_MEMORY_BUDGET
    chunk_capacity = kernels.max_candidates(budget)

    weights = prepared.engine.weights
    # A caller-supplied model is calibrated in wall seconds, so its
    # prediction is comparable to the measured execution time (q-error
    # applies).  The default, derived from the load weights, prices the plan
    # in abstract load units — recorded under a distinct key so EXPLAIN
    # ANALYZE never derives a unitless-vs-seconds q-error.
    calibrated = model is not None
    if model is None:
        model = RunningTimeModel(
            ModelCoefficients(
                beta0=0.0,
                beta1=1.0,
                beta2=float(weights.beta_input),
                beta3=float(weights.beta_output),
            )
        )
    est_total_input = float(s_counts.sum() + t_counts.sum())
    est_max_input = float((s_counts + t_counts).max()) if plan.workers else 0.0
    est_max_output = float(est_outputs.max()) if est_outputs.size else 0.0

    root = PlanNode(
        "band_join",
        attrs={
            "query": getattr(prepared, "name", None)
            or f"{prepared.s_name}⋈{prepared.t_name}",
            "s": _relation_label(prepared.s_name, s_snap),
            "t": _relation_label(prepared.t_name, t_snap),
            "backend": prepared.engine.backend.name,
            "workers": prepared.workers,
        },
    ).estimate(pairs=est_pairs)

    plan_node = root.child(
        "partitioning",
        method=plan.method,
        units=plan.n_units,
        plan_cached=plan_cached,
        optimization_seconds=round(plan.stats.optimization_seconds, 6),
    ).estimate(
        total_input=est_total_input,
        max_input=est_max_input,
        output=est_output_total,
    )
    stats = plan.stats
    if stats.estimated_total_input is not None or stats.estimated_output is not None:
        plan_node.child("optimizer", source="partitioning sample over base rows").estimate(
            total_input=stats.estimated_total_input,
            max_load=stats.estimated_max_load,
            output=stats.estimated_output,
        )
    worker_nodes = []
    for w in range(plan.workers):
        candidates = float(est_candidates[w])
        worker_nodes.append(
            plan_node.child(f"worker {w}").estimate(
                input=float(s_counts[w] + t_counts[w]),
                output=float(est_outputs[w]),
                candidates=candidates,
                kernel_chunks=float(math.ceil(candidates / chunk_capacity))
                if candidates > 0
                else 0.0,
            )
        )

    root.children.append(
        _selector_node(prepared, s_sample, t_sample, condition, fractions)
    )
    cost_node = root.child(
        "cost_model",
        calibrated=calibrated,
        betas={
            "beta0": model.coefficients.beta0,
            "beta1": model.coefficients.beta1,
            "beta2": model.coefficients.beta2,
            "beta3": model.coefficients.beta3,
        },
    )
    predicted = model.predict(est_total_input, est_max_input, est_max_output)
    if calibrated:
        cost_node.estimate(seconds=predicted)
    else:
        cost_node.estimate(cost=predicted)
        cost_node.attrs["cost_units"] = "load units (uncalibrated)"

    report = QueryPlanReport(
        query=root.attrs["query"],
        s_name=prepared.s_name,
        t_name=prepared.t_name,
        epsilons=ekey,
        analyze=analyze,
        root=root,
    )
    if not analyze:
        report.seconds = time.perf_counter() - started
        return report

    # ---------------- EXPLAIN ANALYZE: execute and graft actuals ---------- #
    counters_before = kernel_counter_totals()
    exec_started = time.perf_counter()
    result = (execute or prepared.execute)(ekey)
    exec_seconds = time.perf_counter() - exec_started
    counters_after = kernel_counter_totals()

    report.path = result.path
    root.actual(pairs=result.n_pairs, seconds=result.seconds)
    job = result.job
    if result.path in _EXECUTED_PATHS:
        # The cost model prices *executing* the plan; a cache-served request
        # never did, so its wall time is not a comparable actual.
        cost_node.actual(seconds=exec_seconds)
    if result.path not in _EXECUTED_PATHS or job is None:
        # Cache-served run: nothing dispatched *now*, so per-worker and
        # kernel actuals are structurally absent rather than zero (a cached
        # QueryResult still carries the job stats of the run that produced
        # it, which would misattribute that run's wall times to this one).
        root.attrs["served_from_cache"] = True
    else:
        plan_node.actual(
            total_input=job.total_input,
            max_input=job.max_worker_input(weights),
            output=job.total_output,
        )
        for child in plan_node.children:
            if child.name == "optimizer":
                child.actual(
                    total_input=job.total_input,
                    max_load=job.max_worker_load(weights),
                    output=job.total_output,
                )
        by_id = {w.worker_id: w for w in job.workers}
        for w, node in enumerate(worker_nodes):
            actual = by_id.get(w)
            if actual is None:
                continue
            node.actual(
                input=actual.input_total,
                output=actual.output,
                seconds=actual.local_seconds,
            )
        deltas = {
            key: counters_after[key] - counters_before[key]
            for key in counters_after
        }
        if any(deltas.values()):
            kernel_node = root.child(
                "kernels", source="repro_kernel_* counter deltas"
            ).estimate(
                chunks=float(
                    sum(node.estimates.get("kernel_chunks", 0.0) for node in worker_nodes)
                ),
                candidates=float(est_candidates.sum()),
            )
            kernel_node.actual(
                chunks=deltas["chunks"],
                candidates=deltas["candidates"],
                pairs=deltas["pairs"],
                resort_probes=deltas["resort_probes"],
                resort_wins=deltas["resort_wins"],
            )
    report.seconds = time.perf_counter() - started
    return report
