"""EXPLAIN / EXPLAIN ANALYZE: plan introspection with estimate accounting.

The package answers *why the planner chose this plan and how wrong its
estimates were*:

* :func:`build_report` builds a :class:`QueryPlanReport` for one prepared
  query — the chosen partitioning with per-worker cost-model estimates,
  plan-cache provenance and the kernel selector's decision; with
  ``analyze=True`` it executes and grafts measured actuals plus per-node
  q-errors onto the same tree.
* :class:`CalibrationStore` persists one ``(estimate, actual, features)``
  record per analyzed run and :meth:`CalibrationStore.calibrate` refits the
  running-time betas from them.
* :class:`EstimateAccuracyTracker` is the always-on live half: q-error per
  executed completion into the ``repro_estimate_qerror`` histogram and the
  ``estimate_qerror`` SLO window.
"""

from repro.obs.explain.builder import build_report, kernel_counter_totals
from repro.obs.explain.report import (
    PlanNode,
    QueryPlanReport,
    format_plan_tree,
    qerror,
)
from repro.obs.explain.store import (
    DEFAULT_CALIBRATION_MAX_RECORDS,
    MIN_CALIBRATION_RECORDS,
    CalibrationReport,
    CalibrationStore,
    EstimateAccuracyTracker,
)

__all__ = [
    "DEFAULT_CALIBRATION_MAX_RECORDS",
    "MIN_CALIBRATION_RECORDS",
    "CalibrationReport",
    "CalibrationStore",
    "EstimateAccuracyTracker",
    "PlanNode",
    "QueryPlanReport",
    "build_report",
    "format_plan_tree",
    "kernel_counter_totals",
    "qerror",
]
