"""Thread-safe metrics registry: counters, gauges and labeled histograms.

One :class:`MetricsRegistry` holds every metric of one scope (the service
creates a per-instance registry; the kernel layer publishes into the global
one from :mod:`repro.obs.globals`).  All metrics support labels — a metric
name maps to one value *per label set* — and every mutation is guarded by a
per-metric lock, so concurrent scheduler workers, backend threads and the
scrape path never race.

Histograms use **fixed log-scale buckets** (:func:`log_buckets`): observation
is one binary search plus three adds, quantiles are estimated by linear
interpolation inside the target bucket, and two histograms with the same
bucket bounds aggregate by summing counts.

:func:`percentile` is the shared exact-quantile helper over raw sample
windows; it preserves the nearest-rank semantics the scheduler historically
used so latency reports stay comparable across versions.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left

__all__ = [
    "percentile",
    "log_buckets",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_RATIO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def percentile(values, q: float) -> float:
    """Return the ``q``-th percentile of ``values`` (nearest rank).

    Matches the scheduler's historical ``_percentile``: the empty input
    answers 0.0 and the rank is ``round(q/100 * (n-1))``, clamped.
    """
    values = list(values)
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
    return float(ordered[index])


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> tuple[float, ...]:
    """Return log-spaced bucket upper bounds covering ``[lo, hi]``.

    ``per_decade`` bounds per factor of ten, snapped to powers of
    ``10**(1/per_decade)`` so histograms built from the same spec always
    align (and therefore aggregate by summing counts).
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("log_buckets needs 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be at least 1")
    start = math.floor(round(math.log10(lo) * per_decade, 9))
    end = math.ceil(round(math.log10(hi) * per_decade, 9))
    return tuple(float(f"{10 ** (k / per_decade):.6g}") for k in range(start, end + 1))


#: Default latency buckets: 10 microseconds to 100 seconds, 3 per decade.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = log_buckets(1e-5, 100.0, per_decade=3)

#: Default buckets for dimensionless ratios (expansion factors, utilization).
DEFAULT_RATIO_BUCKETS: tuple[float, ...] = log_buckets(1e-3, 1e3, per_decade=2)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _render_labels(key: tuple, extra: tuple = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    parts = []
    for name, value in items:
        text = str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{name}="{text}"')
    return "{" + ",".join(parts) + "}"


class _Metric:
    """Common state of one named metric: per-labelset values plus a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict = {}

    def labelsets(self) -> list[tuple]:
        with self._lock:
            return list(self._values)


class Counter(_Metric):
    """Monotonically increasing value (optionally per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def items(self) -> list[tuple[dict, float]]:
        with self._lock:
            return [(dict(key), value) for key, value in self._values.items()]

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "values": [{"labels": labels, "value": v} for labels, v in self.items()],
        }

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        with self._lock:
            for key, value in self._values.items():
                lines.append(f"{self.name}{_render_labels(key)} {value:g}")
        return lines


class Gauge(_Metric):
    """Point-in-time value: set directly or observed through a callback.

    ``set_function`` registers a zero-argument callable evaluated at scrape
    time — the adapter pattern that absorbs pre-existing stats objects
    (plan-cache counters, result-cache accounting) without any hot-path
    writes.
    """

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            current = self._values.get(key, 0.0)
            self._values[key] = (current if not callable(current) else 0.0) + amount

    def set_function(self, fn, **labels) -> None:
        """Evaluate ``fn()`` at scrape time for this label set."""
        with self._lock:
            self._values[_label_key(labels)] = fn

    def value(self, **labels) -> float:
        with self._lock:
            raw = self._values.get(_label_key(labels), 0.0)
        return float(raw()) if callable(raw) else float(raw)

    def items(self) -> list[tuple[dict, float]]:
        with self._lock:
            pairs = list(self._values.items())
        return [
            (dict(key), float(raw()) if callable(raw) else float(raw))
            for key, raw in pairs
        ]

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "values": [{"labels": labels, "value": v} for labels, v in self.items()],
        }

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        for labels, value in self.items():
            lines.append(f"{self.name}{_render_labels(_label_key(labels))} {value:g}")
        return lines


class Histogram(_Metric):
    """Fixed-bucket histogram with per-labelset counts, sum and count.

    Bucket bounds are upper bounds (``value <= bound``); one implicit
    overflow bucket catches everything beyond the last bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = tuple(float(b) for b in bounds)

    def _series(self, key: tuple) -> list:
        series = self._values.get(key)
        if series is None:
            # [per-bucket counts (+1 overflow), sum, count]
            series = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._values[key] = series
        return series

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        key = _label_key(labels)
        with self._lock:
            series = self._series(key)
            series[0][index] += 1
            series[1] += value
            series[2] += 1

    def count(self, **labels) -> int:
        with self._lock:
            series = self._values.get(_label_key(labels))
            return int(series[2]) if series else 0

    def sum(self, **labels) -> float:
        with self._lock:
            series = self._values.get(_label_key(labels))
            return float(series[1]) if series else 0.0

    def quantile(self, q: float, **labels) -> float:
        """Estimate the ``q``-th percentile by interpolating in the target bucket.

        Values past the last bound answer the last finite bound (the estimate
        is a lower bound there).  Empty series answer 0.0.
        """
        with self._lock:
            series = self._values.get(_label_key(labels))
            if series is None or series[2] == 0:
                return 0.0
            counts = list(series[0])
            total = series[2]
        rank = q / 100.0 * total
        cumulative = 0
        for i, n in enumerate(counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                hi = self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
                lo = self.buckets[i - 1] if 0 < i <= len(self.buckets) else 0.0
                fraction = (rank - cumulative) / n
                return lo + (hi - lo) * min(1.0, max(0.0, fraction))
            cumulative += n
        return self.buckets[-1]

    def items(self) -> list[tuple[dict, dict]]:
        with self._lock:
            pairs = [
                (dict(key), {"counts": list(s[0]), "sum": float(s[1]), "count": int(s[2])})
                for key, s in self._values.items()
            ]
        return pairs

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "values": [{"labels": labels, **series} for labels, series in self.items()],
        }

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        for labels, series in self.items():
            key = _label_key(labels)
            cumulative = 0
            for bound, n in zip(self.buckets, series["counts"]):
                cumulative += n
                lines.append(
                    f"{self.name}_bucket{_render_labels(key, (('le', f'{bound:g}'),))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{self.name}_bucket{_render_labels(key, (('le', '+Inf'),))} "
                f"{series['count']}"
            )
            lines.append(f"{self.name}_sum{_render_labels(key)} {series['sum']:g}")
            lines.append(f"{self.name}_count{_render_labels(key)} {series['count']}")
        return lines


class MetricsRegistry:
    """Named collection of metrics with get-or-create registration.

    Registering the same name twice returns the existing metric (so modules
    can idempotently declare what they publish); re-registering under a
    different kind or bucket layout is an error — silent aliasing would
    corrupt both series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                buckets = kwargs.get("buckets")
                if buckets is not None and tuple(buckets) != existing.buckets:
                    raise ValueError(f"metric {name!r} re-registered with other buckets")
                return existing
            metric = cls(name, help, **kwargs) if kwargs else cls(name, help)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Return a JSON-friendly dump of every metric (callbacks evaluated)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def render_prometheus(self) -> str:
        """Return the Prometheus text exposition of every metric."""
        with self._lock:
            metrics = list(self._metrics.items())
        lines: list[str] = []
        for _, metric in sorted(metrics):
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
