"""Span-based tracing with explicit context propagation.

One query produces one **trace**: a tree of timed spans (parse →
plan-cache lookup → route → per-partition kernel → merge).  Spans created
in one thread nest automatically through a :mod:`contextvars` variable;
crossing an execution boundary is always *explicit*:

* **thread pools** — pass :meth:`Span.context` (a picklable
  :class:`SpanContext`) to the worker, which opens child spans with
  ``tracer.span(name, parent=ctx)`` or activates the context wholesale with
  :meth:`Tracer.activate`;
* **process pools** — workers cannot reach the driver's tracer, so they
  build plain span *records* (dicts, see :func:`span_record`) against the
  shipped context and return them with their results; the driver grafts
  them into the live trace with :meth:`Tracer.attach`.  Wall-clock start
  times (``time.time``) keep records comparable across processes.

Finished traces land in a bounded ring buffer (:meth:`Tracer.recent`) —
the live stats surface serves them as JSON trees, and
:func:`format_trace_tree` pretty-prints one for humans.

When telemetry is disabled (:mod:`repro.obs._state`) every entry point
returns a shared no-op span, so instrumented hot paths cost one boolean
check.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import NamedTuple

__all__ = [
    "SpanContext",
    "Span",
    "Tracer",
    "new_span_id",
    "span_record",
    "format_trace_tree",
    "NOOP_SPAN",
]

from repro.obs import _state

#: Default capacity of the finished-trace ring buffer.
DEFAULT_TRACE_BUFFER: int = 64

_IDS = itertools.count(1)


def new_span_id() -> str:
    """Return a span id unique within and across processes (pid-prefixed)."""
    return f"{os.getpid():x}-{next(_IDS):x}"


class SpanContext(NamedTuple):
    """Picklable handle to a live span, shipped across threads/processes."""

    trace_id: str
    span_id: str


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return item()
        except Exception:  # pragma: no cover - defensive
            pass
    return str(value)


def span_record(
    name: str,
    parent: SpanContext | None,
    start: float,
    duration: float,
    span_id: str | None = None,
    **attrs,
) -> dict:
    """Build one plain span record (the cross-process exchange format)."""
    return {
        "name": name,
        "span_id": span_id if span_id is not None else new_span_id(),
        "parent_id": parent.span_id if parent is not None else None,
        "start": float(start),
        "duration": float(duration),
        "attrs": {k: _jsonable(v) for k, v in attrs.items()},
    }


class Trace:
    """Append-only span collection of one query (thread-safe)."""

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._spans: list[dict] = []

    def add(self, record: dict) -> None:
        with self._lock:
            self._spans.append(record)

    def to_dict(self) -> dict:
        """Return the trace as a JSON-friendly span tree.

        The root is the first span without a parent; spans whose parent is
        missing (e.g. grafted after their parent was pruned) attach to the
        root so nothing is silently dropped.
        """
        with self._lock:
            spans = [dict(span) for span in self._spans]
        nodes = {span["span_id"]: {**span, "children": []} for span in spans}
        root = None
        orphans = []
        for span in spans:
            node = nodes[span["span_id"]]
            parent = nodes.get(span["parent_id"]) if span["parent_id"] else None
            if parent is not None and parent is not node:
                parent["children"].append(node)
            elif span["parent_id"] is None and root is None:
                root = node
            else:
                orphans.append(node)
        if root is None and orphans:
            root = orphans.pop(0)
        if root is not None:
            root["children"].extend(orphans)
        for node in nodes.values():
            node["children"].sort(key=lambda child: child["start"])
        return {"trace_id": self.trace_id, "spans": len(spans), "root": root}


class _NoopSpan:
    """Shared do-nothing span returned when telemetry is disabled."""

    __slots__ = ()
    context = None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def end(self) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NOOP_SPAN = _NoopSpan()

#: Current (trace, span_id) of this execution context; propagated
#: automatically within a thread, explicitly across threads/processes.
_CURRENT: ContextVar = ContextVar("repro_obs_current_span", default=None)


class Span:
    """One live, timed span.  Use as a context manager (nests children
    created in the same thread) or keep the object and call :meth:`end`."""

    __slots__ = ("_tracer", "trace", "name", "span_id", "parent_id", "attrs",
                 "start", "_t0", "_token", "_ended")

    def __init__(self, tracer: "Tracer", trace: Trace, name: str,
                 parent_id: str | None, attrs: dict) -> None:
        self._tracer = tracer
        self.trace = trace
        self.name = name
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.attrs = {k: _jsonable(v) for k, v in attrs.items()}
        self.start = time.time()
        self._t0 = time.perf_counter()
        self._token = None
        self._ended = False

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace.trace_id, self.span_id)

    def set(self, **attrs) -> "Span":
        self.attrs.update((k, _jsonable(v)) for k, v in attrs.items())
        return self

    def end(self) -> None:
        if self._ended:
            return
        self._ended = True
        self.trace.add(
            {
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start": self.start,
                "duration": time.perf_counter() - self._t0,
                "attrs": dict(self.attrs),
            }
        )
        if self.parent_id is None:
            self._tracer._finish(self.trace)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set((self.trace, self.span_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc is not None:
            self.set(error=str(exc))
        self.end()
        return False


class _Activation:
    """Context manager making an explicit SpanContext the current parent."""

    __slots__ = ("_target", "_token")

    def __init__(self, target) -> None:
        self._target = target
        self._token = None

    def __enter__(self):
        if self._target is not None:
            self._token = _CURRENT.set(self._target)
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
        return False


class Tracer:
    """Creates spans, tracks live traces, and keeps the recent-trace ring."""

    def __init__(self, max_traces: int = DEFAULT_TRACE_BUFFER) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be at least 1")
        self._lock = threading.Lock()
        self._live: dict[str, Trace] = {}
        self._finished: deque[Trace] = deque(maxlen=max_traces)

    @property
    def max_traces(self) -> int:
        """Return the current capacity of the finished-trace ring."""
        return self._finished.maxlen

    def resize(self, max_traces: int) -> None:
        """Change the finished-trace ring capacity, keeping the newest traces.

        Services apply ``ServiceConfig.trace_ring_size`` here; the initial
        capacity comes from ``REPRO_TRACE_RING`` (see
        :mod:`repro.obs.globals`) or :data:`DEFAULT_TRACE_BUFFER`.
        """
        if max_traces < 1:
            raise ValueError("max_traces must be at least 1")
        with self._lock:
            if max_traces != self._finished.maxlen:
                self._finished = deque(self._finished, maxlen=max_traces)

    # ------------------------------------------------------------------ #
    # Span creation
    # ------------------------------------------------------------------ #
    def span(self, name: str, parent: SpanContext | None = None, **attrs):
        """Open a span (no-op when telemetry is disabled).

        ``parent=None`` nests under the current context's span, or starts a
        new trace when there is none; an explicit :class:`SpanContext`
        parents across threads/processes.
        """
        if not _state.enabled:
            return NOOP_SPAN
        if parent is not None:
            trace = self._resolve(parent.trace_id)
            parent_id = parent.span_id
        else:
            current = _CURRENT.get()
            if current is not None:
                trace, parent_id = current
            else:
                trace = Trace(new_span_id())
                parent_id = None
                with self._lock:
                    self._live[trace.trace_id] = trace
        return Span(self, trace, name, parent_id, attrs)

    def record(
        self,
        name: str,
        parent: SpanContext | None,
        start: float,
        duration: float,
        **attrs,
    ) -> None:
        """Add one already-timed span (explicit start wall-clock + duration)."""
        if not _state.enabled or parent is None:
            return
        trace = self._resolve(parent.trace_id)
        trace.add(span_record(name, parent, start, duration, **attrs))

    def attach(self, parent: SpanContext | None, records) -> None:
        """Graft plain span records (e.g. from process workers) into a trace.

        Records without a parent default to ``parent``; records keep their
        own ids so nested remote structures survive the graft.
        """
        if not _state.enabled or parent is None:
            return
        trace = self._resolve(parent.trace_id)
        for record in records:
            grafted = dict(record)
            if grafted.get("parent_id") is None:
                grafted["parent_id"] = parent.span_id
            trace.add(grafted)

    def activate(self, ctx: SpanContext | None) -> _Activation:
        """Make ``ctx`` the current parent for this thread (worker entry)."""
        if not _state.enabled or ctx is None:
            return _Activation(None)
        return _Activation((self._resolve(ctx.trace_id), ctx.span_id))

    def current_context(self) -> SpanContext | None:
        """Return the current span's context, or ``None``."""
        current = _CURRENT.get()
        if current is None:
            return None
        trace, span_id = current
        return SpanContext(trace.trace_id, span_id)

    # ------------------------------------------------------------------ #
    # Trace bookkeeping
    # ------------------------------------------------------------------ #
    def _resolve(self, trace_id: str) -> Trace:
        with self._lock:
            trace = self._live.get(trace_id)
            if trace is not None:
                return trace
            for finished in self._finished:
                if finished.trace_id == trace_id:
                    return finished
            # Foreign or pruned trace id: adopt it so late spans still land.
            trace = Trace(trace_id)
            self._live[trace_id] = trace
            return trace

    def _finish(self, trace: Trace) -> None:
        with self._lock:
            self._live.pop(trace.trace_id, None)
            self._finished.append(trace)

    def recent(self, n: int | None = None) -> list[dict]:
        """Return the most recent finished traces as span trees, newest first."""
        with self._lock:
            traces = list(self._finished)
        traces.reverse()
        if n is not None:
            traces = traces[: max(0, int(n))]
        return [trace.to_dict() for trace in traces]

    def clear(self) -> None:
        """Drop every finished and live trace (tests)."""
        with self._lock:
            self._live.clear()
            self._finished.clear()


def format_trace_tree(trace: dict) -> str:
    """Pretty-print one trace dict (as returned by :meth:`Tracer.recent`)."""
    from repro.obs.render import format_attrs, render_tree

    root = trace.get("root")
    if root is None:
        return f"trace {trace.get('trace_id')}: <empty>"
    root_duration = float(root.get("duration") or 0.0)

    def span_label(node: dict, depth: int) -> str:
        share = (
            f" ({node['duration'] / root_duration * 100.0:.1f}%)"
            if root_duration > 0 and depth > 0
            else ""
        )
        return (
            f"{node['name']} {node['duration'] * 1e3:.3f} ms{share}"
            + format_attrs(node.get("attrs"))
        )

    lines = [f"trace {trace.get('trace_id')} ({trace.get('spans')} spans)"]
    render_tree(root, span_label, lines=lines)
    return "\n".join(lines)
