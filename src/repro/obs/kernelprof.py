"""Kernel profiling hooks for the vectorized local-join kernels.

The kernels accumulate plain-int counters into a profile dict while they
run — chunk counts, expanded candidate totals, adaptive re-sort decisions,
the largest single chunk — and publish once per invocation.  When telemetry
is disabled :func:`kernel_profile_start` returns ``None`` and the kernels
skip every accumulation behind one ``is not None`` check, so the disabled
overhead is a single branch per chunk.

Published metrics (process-wide registry, ``kind`` ∈ {``join``, ``count``}):

``repro_kernel_invocations_total{kind}``
    Kernel invocations.
``repro_kernel_chunks_total{kind}`` / ``repro_kernel_candidates_total{kind}``
    Candidate chunks emitted and candidate pairs expanded.
``repro_kernel_pairs_total{kind}``
    Pairs surviving the residual masks (the actual output).
``repro_kernel_resort_probes_total`` / ``repro_kernel_resort_wins_total``
    Adaptive expansion-dimension probes, and how often an alternative
    dimension beat the sweep dimension.
``repro_kernel_expansion_factor{kind}``
    Histogram of candidates per output pair (1.0 = perfectly selective
    windows; large values mean the residual mask discarded most candidates).
``repro_kernel_budget_utilization{kind}``
    Histogram of the largest chunk relative to the candidate-pair budget.
``repro_kernel_seconds{kind}``
    Histogram of kernel invocation wall time.
"""

from __future__ import annotations

import time

from repro.obs import _state
from repro.obs.globals import registry, tracer
from repro.obs.registry import DEFAULT_RATIO_BUCKETS, log_buckets

__all__ = ["kernel_profile_start", "publish_kernel_profile"]

#: Utilization lives in (0, ~1]; finer log buckets near 1.
_UTILIZATION_BUCKETS = log_buckets(1e-3, 1.0, per_decade=4)


def kernel_profile_start() -> dict | None:
    """Return a fresh profile accumulator, or ``None`` when telemetry is off."""
    if not _state.enabled:
        return None
    return {
        "chunks": 0,
        "candidates": 0,
        "pairs": 0,
        "resort_probes": 0,
        "resort_wins": 0,
        "max_chunk": 0,
    }


def publish_kernel_profile(
    profile: dict,
    kind: str,
    dims: int,
    budget: int,
    seconds: float,
    start: float | None = None,
) -> None:
    """Publish one finished kernel profile to the process-wide registry."""
    reg = registry()
    reg.counter(
        "repro_kernel_invocations_total", "local-join kernel invocations"
    ).inc(kind=kind)
    reg.counter(
        "repro_kernel_chunks_total", "candidate chunks emitted by the kernels"
    ).inc(profile["chunks"], kind=kind)
    reg.counter(
        "repro_kernel_candidates_total", "candidate pairs expanded by the kernels"
    ).inc(profile["candidates"], kind=kind)
    reg.counter(
        "repro_kernel_pairs_total", "pairs surviving the residual masks"
    ).inc(profile["pairs"], kind=kind)
    if profile["resort_probes"]:
        reg.counter(
            "repro_kernel_resort_probes_total",
            "adaptive expansion-dimension probes",
        ).inc(profile["resort_probes"])
    if profile["resort_wins"]:
        reg.counter(
            "repro_kernel_resort_wins_total",
            "chunks expanded on a re-sorted alternative dimension",
        ).inc(profile["resort_wins"])
    if profile["pairs"] or profile["candidates"]:
        reg.histogram(
            "repro_kernel_expansion_factor",
            "expanded candidates per output pair",
            buckets=DEFAULT_RATIO_BUCKETS,
        ).observe(profile["candidates"] / max(1, profile["pairs"]), kind=kind)
    if budget > 0 and profile["max_chunk"]:
        reg.histogram(
            "repro_kernel_budget_utilization",
            "largest chunk relative to the candidate budget",
            buckets=_UTILIZATION_BUCKETS,
        ).observe(min(1.0, profile["max_chunk"] / budget), kind=kind)
    reg.histogram(
        "repro_kernel_seconds", "kernel invocation wall time"
    ).observe(seconds, kind=kind)
    # Fold the profile into the enclosing span when one is active (serial
    # backend and in-process callers; pool workers ship task spans instead).
    ctx = tracer().current_context()
    if ctx is not None:
        tracer().record(
            "kernel",
            ctx,
            start=start if start is not None else time.time() - seconds,
            duration=seconds,
            kind=kind,
            dims=dims,
            **{k: v for k, v in profile.items()},
        )
