"""Structured :mod:`logging` wiring for the ``repro`` namespace.

Every module logs through ``get_logger(__name__)``; nothing is emitted until
:func:`setup_logging` installs a handler (so the library stays silent when
embedded).  The level resolves, in order, from an explicit argument, the
``REPRO_LOG_LEVEL`` environment variable, and the ``WARNING`` default; the
CLI maps ``-v`` → INFO and ``-vv`` → DEBUG.
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["get_logger", "setup_logging", "resolve_level"]

#: Environment variable consulted for the default log level.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def resolve_level(level: int | str | None = None, verbosity: int = 0) -> int:
    """Resolve the effective level from an argument, ``-v`` count, or env."""
    if level is not None:
        if isinstance(level, str):
            resolved = logging.getLevelName(level.strip().upper())
            if not isinstance(resolved, int):
                raise ValueError(f"unknown log level {level!r}")
            return resolved
        return int(level)
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    env = os.environ.get(LOG_LEVEL_ENV, "").strip()
    if env:
        resolved = logging.getLevelName(env.upper())
        if isinstance(resolved, int):
            return resolved
    return logging.WARNING


def setup_logging(
    level: int | str | None = None,
    verbosity: int = 0,
    stream=None,
) -> logging.Logger:
    """Install (or update) one stderr handler on the ``repro`` root logger.

    Idempotent: repeated calls adjust the level instead of stacking
    handlers.  Returns the configured logger.
    """
    logger = logging.getLogger("repro")
    resolved = resolve_level(level, verbosity)
    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_obs", False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler._repro_obs = True
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    logger.setLevel(resolved)
    logger.propagate = False
    return logger
