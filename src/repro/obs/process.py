"""Process memory accounting: resident set size, current and peak.

Out-of-core execution lives or dies by resident memory, so the storage
benchmarks and the scheduler's ``repro_process_peak_rss_bytes`` gauge read
the numbers straight from the kernel.  On Linux, ``/proc/self/status``
supplies ``VmRSS`` (current) and ``VmHWM`` (the peak *high-water mark*),
and writing ``5`` to ``/proc/self/clear_refs`` resets the high-water mark —
which is what lets a benchmark measure the peak of one phase (a streamed
join) instead of the peak since process start.  Elsewhere the functions
fall back to ``resource.getrusage`` (peak only, non-resettable) and report
what they can.
"""

from __future__ import annotations

import os
import sys

__all__ = [
    "current_rss_bytes",
    "peak_rss_bytes",
    "reset_peak_rss",
    "rss_supported",
]

_PROC_STATUS = "/proc/self/status"
_PROC_CLEAR_REFS = "/proc/self/clear_refs"


def _read_status_kb(field: str) -> int | None:
    """Return a ``/proc/self/status`` memory field in bytes, or ``None``."""
    try:
        with open(_PROC_STATUS, "rb") as fh:
            for line in fh:
                if line.startswith(field.encode()):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def _getrusage_peak_bytes() -> int:
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return peak if sys.platform == "darwin" else peak * 1024


def current_rss_bytes() -> int:
    """Return the process's current resident set size in bytes."""
    value = _read_status_kb("VmRSS:")
    if value is not None:
        return value
    return _getrusage_peak_bytes()


def peak_rss_bytes() -> int:
    """Return the peak resident set size in bytes (since start or reset)."""
    value = _read_status_kb("VmHWM:")
    if value is not None:
        return value
    return _getrusage_peak_bytes()


def reset_peak_rss() -> bool:
    """Reset the peak-RSS high-water mark to the current RSS.

    Returns ``True`` when the kernel honored the reset (Linux with a
    writable ``/proc/self/clear_refs``); callers that need phase-local
    peaks should measure deltas from :func:`current_rss_bytes` when this
    returns ``False``.
    """
    try:
        with open(_PROC_CLEAR_REFS, "wb") as fh:
            fh.write(b"5")
        return True
    except OSError:
        return False


def rss_supported() -> bool:
    """Return whether exact (procfs) RSS readings are available."""
    return os.path.exists(_PROC_STATUS)
