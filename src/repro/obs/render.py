"""Shared tree rendering for human-facing observability surfaces.

Both the trace pretty-printer (``repro-bandjoin stats --trace``) and the
EXPLAIN plan renderer show the same shape: a header line followed by an
indented tree where each node contributes one line.  :func:`render_tree`
owns the indentation/bullet convention so the two surfaces stay visually
consistent; each caller supplies only a label function.

The convention (kept bit-compatible with the original trace formatter):
depth 0 prints flush-left with no bullet, deeper nodes print
``"  " * depth`` indentation plus a ``"- "`` bullet.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

__all__ = ["render_tree", "format_attrs"]


def format_attrs(attrs: dict | None) -> str:
    """Render an attribute dict as the standard ``[k=v k=v]`` suffix (or '')."""
    if not attrs:
        return ""
    return "  [" + " ".join(f"{k}={v}" for k, v in attrs.items()) + "]"


def render_tree(
    root: dict,
    label: Callable[[dict, int], str],
    children: Callable[[dict], Sequence] = lambda node: node.get("children", ()),
    lines: list[str] | None = None,
    depth: int = 0,
) -> list[str]:
    """Render one node tree into indented lines, one line per node.

    Parameters
    ----------
    root:
        The tree root (any mapping; structure is entirely up to ``children``).
    label:
        ``(node, depth) -> str`` producing the node's line text (without
        indentation — the renderer owns that).
    children:
        Accessor returning a node's ordered child sequence.
    lines / depth:
        Recursion state; callers normally leave both at their defaults and
        receive the fresh line list back.
    """
    if lines is None:
        lines = []
    indent = "  " * depth + ("- " if depth else "")
    lines.append(indent + label(root, depth))
    for child in children(root):
        render_tree(child, label, children, lines, depth + 1)
    return lines
