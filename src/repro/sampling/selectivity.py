"""Cheap sampled band-selectivity estimates.

The optimization phase already samples inputs and join output to balance
load; the *kernel* layer needs a much cheaper signal: roughly what fraction
of the other relation falls inside one tuple's band window, per dimension.
That single number drives two decisions:

* :class:`~repro.local_join.auto.AutoJoin` picks the local kernel (and its
  index dimension) from the per-dimension window fractions, and
* the serving layer's admission control prices a query by the estimated
  output cardinality before enqueueing it.

The estimator subsamples both sides deterministically (evenly spaced rows —
no RNG to thread through hot call sites), sorts the sampled keys once per
dimension and answers every window with one ``searchsorted`` pair, so its
cost is ``O(k log k)`` for sample size ``k`` regardless of the input or
output size.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.band import BandCondition

__all__ = [
    "DEFAULT_SELECTIVITY_SAMPLE",
    "evenly_spaced_indices",
    "window_fractions",
    "estimate_join_selectivity",
    "estimate_join_output",
]

#: Default per-side sample size of the selectivity probe.  Small enough to
#: be negligible next to any real kernel invocation, large enough that the
#: per-dimension fraction estimate is stable (relative error ~ 1/sqrt(k)).
DEFAULT_SELECTIVITY_SAMPLE: int = 512


def evenly_spaced_indices(n: int, k: int) -> np.ndarray | None:
    """Return ``k`` evenly spaced row indices of an ``n``-row input, or
    ``None`` when no subsampling is needed (``n <= k``).

    The single deterministic sampling rule of every selectivity consumer
    (this module's probes, the serving layer's admission estimate) — change
    the strategy here and they stay consistent.
    """
    if n <= k:
        return None
    return np.linspace(0, n - 1, num=k).astype(np.int64)


def _evenly_spaced(arr: np.ndarray, k: int) -> np.ndarray:
    """Return up to ``k`` evenly spaced rows of ``arr`` (deterministic)."""
    idx = evenly_spaced_indices(arr.shape[0], k)
    return arr if idx is None else arr[idx]


def window_fractions(
    s_arr: np.ndarray,
    t_arr: np.ndarray,
    condition: BandCondition,
    sample_size: int = DEFAULT_SELECTIVITY_SAMPLE,
) -> np.ndarray:
    """Estimate, per dimension, the mean fraction of T inside an S-row's band.

    Returns a ``(d,)`` float array; entry ``i`` estimates
    ``E_s[ |{t : -eps_left_i <= t.A_i - s.A_i <= eps_right_i}| / |T| ]``.
    Smaller is more selective.  Empty inputs estimate zero.
    """
    d = condition.dimensionality
    if s_arr.shape[0] == 0 or t_arr.shape[0] == 0:
        return np.zeros(d, dtype=float)
    if sample_size < 1:
        raise ValueError("sample_size must be positive")
    s_sample = _evenly_spaced(s_arr, sample_size)
    t_sample = _evenly_spaced(t_arr, sample_size)
    eps_left, eps_right = condition.eps_arrays()
    fractions = np.empty(d, dtype=float)
    n_t = t_sample.shape[0]
    for i in range(d):
        keys = np.sort(t_sample[:, i])
        lows = np.searchsorted(keys, s_sample[:, i] - eps_left[i], side="left")
        highs = np.searchsorted(keys, s_sample[:, i] + eps_right[i], side="right")
        fractions[i] = float((highs - lows).mean()) / n_t
    return fractions


def estimate_join_selectivity(
    s_arr: np.ndarray,
    t_arr: np.ndarray,
    condition: BandCondition,
    sample_size: int = DEFAULT_SELECTIVITY_SAMPLE,
) -> float:
    """Estimate ``P[(s, t) joins]`` assuming per-dimension independence.

    The independence assumption overestimates for anti-correlated dimensions
    and underestimates for correlated ones, which is the standard trade-off
    for a selectivity probe this cheap; the kernel selector and admission
    control only need the right order of magnitude.
    """
    return float(np.prod(window_fractions(s_arr, t_arr, condition, sample_size)))


def estimate_join_output(
    s_arr: np.ndarray,
    t_arr: np.ndarray,
    condition: BandCondition,
    sample_size: int = DEFAULT_SELECTIVITY_SAMPLE,
) -> float:
    """Estimate the output cardinality ``|S join T|``."""
    selectivity = estimate_join_selectivity(s_arr, t_arr, condition, sample_size)
    return selectivity * s_arr.shape[0] * t_arr.shape[0]
