"""Input and join-output sampling used by the optimization phase."""

from repro.sampling.input_sampler import InputSample, draw_input_sample
from repro.sampling.output_sampler import OutputSample, draw_output_sample

__all__ = ["InputSample", "draw_input_sample", "OutputSample", "draw_output_sample"]
