"""Input, join-output and band-selectivity sampling.

Input and output samples feed the optimization phase; the selectivity
estimates feed the local-join kernel selector and the serving layer's
admission control.
"""

from repro.sampling.input_sampler import InputSample, draw_input_sample
from repro.sampling.output_sampler import OutputSample, draw_output_sample
from repro.sampling.selectivity import (
    estimate_join_output,
    estimate_join_selectivity,
    window_fractions,
)

__all__ = [
    "InputSample",
    "draw_input_sample",
    "OutputSample",
    "draw_output_sample",
    "window_fractions",
    "estimate_join_selectivity",
    "estimate_join_output",
]
