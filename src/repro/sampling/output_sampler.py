"""Join-output sampling.

RecPart (like CSIO) uses a sample of the *join output* to estimate how much
output each candidate partition would produce.  The paper adopts the output
sampler of Vitorovic et al. [38]; the key property it needs is a set of
output pairs whose distribution over the join-attribute space approximates
the true output distribution, together with an estimate of the total output
cardinality.

This module implements that contract with a progressive cross-sample join:

1. draw random samples ``S_c ⊆ S`` and ``T_c ⊆ T``,
2. join the samples exactly (index-nested-loop),
3. estimate the full output as ``|pairs| * (|S| / |S_c|) * (|T| / |T_c|)``
   (every pair of the cross product is included in the sample join with
   probability ``(|S_c|/|S|) * (|T_c|/|T|)``, so this estimator is unbiased),
4. if too few pairs were found, grow the samples and repeat; finally
   subsample the pairs down to the requested output-sample size.

The sampled pairs keep both their S-side and T-side join-attribute
coordinates because split ownership follows the *non-duplicated* side, which
differs between S-splits and T-splits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.relation import Relation
from repro.exceptions import SamplingError
from repro.geometry.band import BandCondition
from repro.local_join.index_nested_loop import IndexNestedLoopJoin


@dataclass(frozen=True)
class OutputSample:
    """A sample of band-join output pairs plus an output-cardinality estimate.

    Attributes
    ----------
    s_coords / t_coords:
        ``(m, d)`` join-attribute coordinates of the S-side / T-side tuple of
        each sampled output pair.
    estimated_output:
        Estimate of ``|S join T|``.
    pair_scale:
        Multiplier converting a count of sampled pairs into an output
        estimate (``estimated_output / m``; 0 when the sample is empty).
    """

    s_coords: np.ndarray
    t_coords: np.ndarray
    estimated_output: float
    pair_scale: float

    def __len__(self) -> int:
        return int(self.s_coords.shape[0])

    @property
    def is_empty(self) -> bool:
        """Return ``True`` when no output pair was sampled."""
        return len(self) == 0


def draw_output_sample(
    s: Relation,
    t: Relation,
    condition: BandCondition,
    sample_size: int,
    rng: np.random.Generator,
    initial_fraction: float = 0.02,
    max_fraction: float = 0.35,
    growth: float = 2.0,
) -> OutputSample:
    """Draw an output sample of (up to) ``sample_size`` pairs.

    Parameters
    ----------
    initial_fraction / max_fraction / growth:
        Control the progressive enlargement of the cross-sample: start with
        ``initial_fraction`` of each relation, multiply by ``growth`` until
        either enough pairs are found or ``max_fraction`` is reached.  The cap
        bounds sampling cost (the paper bounds statistics time at 5% of join
        time); if the join output is tiny the final sample may simply hold
        fewer pairs, which is fine because a small output has negligible
        impact on load anyway (paper Section 4.2).
    """
    if sample_size < 1:
        raise SamplingError("output sample_size must be at least 1")
    if not 0 < initial_fraction <= max_fraction <= 1.0:
        raise SamplingError("need 0 < initial_fraction <= max_fraction <= 1")
    if growth <= 1.0:
        raise SamplingError("growth must be greater than 1")
    condition.validate_against(s.column_names)
    condition.validate_against(t.column_names)
    attrs = condition.attributes
    if len(s) == 0 or len(t) == 0:
        empty = np.empty((0, condition.dimensionality))
        return OutputSample(empty, empty, 0.0, 0.0)

    joiner = IndexNestedLoopJoin()
    fraction = initial_fraction
    best: tuple[np.ndarray, np.ndarray, np.ndarray, float] | None = None
    while True:
        n_s = max(1, min(len(s), int(round(fraction * len(s)))))
        n_t = max(1, min(len(t), int(round(fraction * len(t)))))
        s_sub = s.sample(n_s, rng)
        t_sub = t.sample(n_t, rng)
        s_matrix = s_sub.join_matrix(attrs)
        t_matrix = t_sub.join_matrix(attrs)
        pairs = joiner.join(s_matrix, t_matrix, condition)
        scale = (len(s) / len(s_sub)) * (len(t) / len(t_sub))
        estimated_output = float(pairs.shape[0]) * scale
        best = (pairs, s_matrix, t_matrix, estimated_output)
        if pairs.shape[0] >= sample_size or fraction >= max_fraction:
            break
        fraction = min(max_fraction, fraction * growth)

    pairs, s_matrix, t_matrix, estimated_output = best
    if pairs.shape[0] == 0:
        empty = np.empty((0, condition.dimensionality))
        return OutputSample(empty, empty, estimated_output, 0.0)

    if pairs.shape[0] > sample_size:
        keep = rng.choice(pairs.shape[0], size=sample_size, replace=False)
        pairs = pairs[keep]
    s_coords = s_matrix[pairs[:, 0]]
    t_coords = t_matrix[pairs[:, 1]]
    pair_scale = estimated_output / pairs.shape[0] if pairs.shape[0] else 0.0
    return OutputSample(
        s_coords=s_coords,
        t_coords=t_coords,
        estimated_output=estimated_output,
        pair_scale=float(pair_scale),
    )
