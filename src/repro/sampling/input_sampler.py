"""Uniform input sampling.

RecPart's optimization phase (Algorithm 1, line 1) draws a random input
sample of size ``k/2`` split over S and T.  The sample is used to estimate
per-partition input cardinalities, so each sampled tuple carries a *scale
factor* ``|R| / sample_size`` that converts sample counts into estimated
full-relation counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.relation import Relation
from repro.exceptions import SamplingError
from repro.geometry.band import BandCondition


@dataclass(frozen=True)
class InputSample:
    """A joint sample of the two join inputs, projected on the join attributes.

    Attributes
    ----------
    s_values / t_values:
        ``(k_s, d)`` / ``(k_t, d)`` float matrices of sampled join-attribute
        values (band-condition attribute order).
    s_scale / t_scale:
        Multipliers converting a count of sampled tuples into an estimate of
        the corresponding full-relation count (``|S| / k_s``, ``|T| / k_t``).
    s_total / t_total:
        Full relation cardinalities.
    """

    s_values: np.ndarray
    t_values: np.ndarray
    s_scale: float
    t_scale: float
    s_total: int
    t_total: int

    @property
    def dimensionality(self) -> int:
        """Return the number of join attributes in the sample."""
        return int(self.s_values.shape[1]) if self.s_values.ndim == 2 else 1

    @property
    def total_input(self) -> int:
        """Return ``|S| + |T|``."""
        return self.s_total + self.t_total

    def combined_values(self) -> np.ndarray:
        """Return the concatenated S and T sample matrices (used for split candidates)."""
        return np.vstack([self.s_values, self.t_values])

    def data_bounds(self, padding: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Return (lower, upper) bounds of the sampled data, optionally padded.

        The bounds are used to clip the (conceptually unbounded) root region
        of the split tree to the populated part of the join-attribute space.
        """
        combined = self.combined_values()
        if combined.shape[0] == 0:
            raise SamplingError("cannot derive data bounds from an empty sample")
        lower = combined.min(axis=0)
        upper = combined.max(axis=0)
        if padding is not None:
            pad = np.asarray(padding, dtype=float)
            lower = lower - pad
            upper = upper + pad
        # Guarantee non-degenerate intervals in every dimension.
        span = upper - lower
        bump = np.where(span <= 0, 1.0, span * 1e-9 + 1e-12)
        return lower - bump, upper + bump


def draw_input_sample(
    s: Relation,
    t: Relation,
    condition: BandCondition,
    sample_size: int,
    rng: np.random.Generator,
) -> InputSample:
    """Draw a uniform input sample of ``sample_size`` tuples (split evenly over S and T).

    When a relation is smaller than its share of the sample, the whole
    relation is used (scale factor 1).
    """
    if sample_size < 2:
        raise SamplingError("sample_size must be at least 2")
    condition.validate_against(s.column_names)
    condition.validate_against(t.column_names)
    per_side = max(1, sample_size // 2)

    s_sampled = s.sample(per_side, rng)
    t_sampled = t.sample(per_side, rng)
    attrs = condition.attributes
    s_matrix = s_sampled.join_matrix(attrs) if len(s_sampled) else np.empty((0, len(attrs)))
    t_matrix = t_sampled.join_matrix(attrs) if len(t_sampled) else np.empty((0, len(attrs)))

    s_scale = (len(s) / len(s_sampled)) if len(s_sampled) else 1.0
    t_scale = (len(t) / len(t_sampled)) if len(t_sampled) else 1.0
    return InputSample(
        s_values=s_matrix,
        t_values=t_matrix,
        s_scale=float(s_scale),
        t_scale=float(t_scale),
        s_total=len(s),
        t_total=len(t),
    )
