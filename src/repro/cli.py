"""Command-line front end.

Installed as ``repro-bandjoin`` (see ``pyproject.toml``); also runnable as
``python -m repro``.  Sub-commands:

* ``demo``       — run one band-join with every partitioner and print the comparison.
* ``engine``     — run one band-join on every execution backend and compare wall-clock.
* ``table``      — reproduce one of the paper's tables (e.g. ``table 2b``).
* ``figure4``    — reproduce the overhead scatter of Figures 4 / 10.
* ``calibrate``  — calibrate the running-time model on this machine and print it.
* ``serve``      — run the band-join serving layer (JSON lines on stdio or TCP).
* ``stats``      — query a running TCP server's live stats / metrics / traces / health.
* ``explain``    — EXPLAIN (ANALYZE) a prepared query on a running TCP server.
* ``replay``     — replay a captured workload log and verify result fingerprints.
* ``list``       — list the available tables and workload families.

``-v`` / ``-vv`` (global) raise the log level to INFO / DEBUG
(``REPRO_LOG_LEVEL`` sets the default).
"""

from __future__ import annotations

import argparse
import sys

from repro.config import (
    DEFAULT_LOCAL_ALGORITHM,
    ENGINE_BACKENDS,
    LOCAL_ALGORITHM_NAMES,
    STORAGE_BACKENDS,
)
from repro.experiments import workloads as wl
from repro.metrics.report import format_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bandjoin",
        description=(
            "Reproduction of 'Near-Optimal Distributed Band-Joins through Recursive "
            "Partitioning' (SIGMOD 2020)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise log verbosity (-v: INFO, -vv: DEBUG)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run one workload with every partitioner")
    demo.add_argument("--rows", type=int, default=20_000, help="tuples per input relation")
    demo.add_argument("--workers", type=int, default=8, help="number of simulated workers")
    demo.add_argument("--dimensions", type=int, default=3, help="join dimensionality")
    demo.add_argument("--band-width", type=float, default=0.05, help="band width per dimension")
    demo.add_argument("--skew", type=float, default=1.5, help="Pareto skew parameter z")
    demo.add_argument("--verify", action="store_true", help="verify against a single-machine join")
    demo.add_argument(
        "--engine",
        choices=ENGINE_BACKENDS,
        default="simulated",
        help="execution mode of the reduce phase (default: simulated)",
    )
    demo.add_argument(
        "--local-algorithm",
        choices=LOCAL_ALGORITHM_NAMES,
        default=DEFAULT_LOCAL_ALGORITHM,
        help="local-join kernel run on every worker (default: %(default)s)",
    )

    engine = subparsers.add_parser(
        "engine", help="compare the execution backends on one workload"
    )
    engine.add_argument("--rows", type=int, default=100_000, help="tuples per input relation")
    engine.add_argument("--workers", type=int, default=8, help="number of partition workers")
    engine.add_argument("--dimensions", type=int, default=2, help="join dimensionality")
    engine.add_argument("--band-width", type=float, default=0.01, help="band width per dimension")
    engine.add_argument("--skew", type=float, default=1.5, help="Pareto skew parameter z")
    engine.add_argument(
        "--backends",
        type=str,
        default="serial,threads,processes",
        help="comma-separated backend list to compare",
    )
    engine.add_argument(
        "--repeat", type=int, default=1, help="executions per backend (best time is reported)"
    )
    engine.add_argument(
        "--local-algorithm",
        choices=LOCAL_ALGORITHM_NAMES,
        default=DEFAULT_LOCAL_ALGORITHM,
        help="local-join kernel run inside every task (default: %(default)s)",
    )

    table = subparsers.add_parser("table", help="reproduce one paper table")
    table.add_argument("table_id", help="table identifier, e.g. 2a, 2b, 3, 4c, 5, 7, 9, 12, 15, 16")
    table.add_argument("--scale", type=float, default=1.0, help="input-size scale factor")
    table.add_argument("--verify", action="store_true", help="verify against a single-machine join")
    table.add_argument("--seed", type=int, default=0)

    figure = subparsers.add_parser("figure4", help="reproduce the Figure 4 / 10 overhead scatter")
    figure.add_argument("--scale", type=float, default=0.5, help="input-size scale factor")
    figure.add_argument("--csv", type=str, default=None, help="write the points to this CSV file")
    figure.add_argument("--seed", type=int, default=0)

    calibrate = subparsers.add_parser("calibrate", help="calibrate the running-time model")
    calibrate.add_argument("--queries", type=int, default=24, help="number of training queries")
    calibrate.add_argument("--base-input", type=int, default=4000, help="baseline training input size")

    serve = subparsers.add_parser(
        "serve",
        help="run the band-join service (JSON-lines protocol on stdio or TCP)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="listen on this TCP port instead of serving stdin/stdout",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1", help="TCP bind address")
    serve.add_argument(
        "--backend",
        choices=ENGINE_BACKENDS,
        default="threads",
        help="execution backend of the underlying engine (default: threads)",
    )
    serve.add_argument("--workers", type=int, default=None, help="partition workers per query")
    serve.add_argument(
        "--storage",
        choices=STORAGE_BACKENDS,
        default=None,
        help="relation storage backend: 'memory' keeps everything on the "
        "heap, 'mmap' spills large relations to memory-mapped segments "
        "and streams queries over them (default: memory)",
    )
    serve.add_argument(
        "--spill-dir",
        type=str,
        default=None,
        metavar="PATH",
        help="segment directory for --storage mmap (default: private tempdir)",
    )
    serve.add_argument(
        "--spill-threshold-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="minimum relation size before it is spilled to mmap segments",
    )
    serve.add_argument(
        "--scheduler-workers", type=int, default=None, help="scheduler thread count"
    )
    serve.add_argument(
        "--staleness-threshold",
        type=float,
        default=None,
        help="delta fraction that triggers background re-partitioning",
    )
    serve.add_argument(
        "--local-algorithm",
        choices=LOCAL_ALGORITHM_NAMES,
        default=None,
        help="local-join kernel of the underlying engine",
    )
    serve.add_argument(
        "--max-estimated-pairs",
        type=int,
        default=None,
        help="reject queries whose estimated output exceeds this many pairs",
    )
    serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable tracing spans and kernel profiling (metrics counters stay on)",
    )
    serve.add_argument(
        "--no-capture",
        action="store_true",
        help="disable workload capture (the in-memory traffic event ring)",
    )
    serve.add_argument(
        "--capture-log",
        type=str,
        default=None,
        metavar="PATH",
        help="spool captured traffic to this JSONL file (makes it replayable)",
    )
    serve.add_argument(
        "--capture-ring",
        type=int,
        default=None,
        metavar="N",
        help="capacity of the in-memory capture ring (REPRO_TRACE_RING-style)",
    )
    serve.add_argument(
        "--trace-ring",
        type=int,
        default=None,
        metavar="N",
        help="capacity of the finished-trace ring (default from REPRO_TRACE_RING)",
    )
    serve.add_argument(
        "--slo-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="SLO: p99 total latency ceiling in seconds",
    )
    serve.add_argument(
        "--slo-error-rate",
        type=float,
        default=None,
        metavar="FRACTION",
        help="SLO: failed-request fraction ceiling (0..1)",
    )
    serve.add_argument(
        "--slo-cache-hit",
        type=float,
        default=None,
        metavar="FRACTION",
        help="SLO: result-cache hit-rate floor (0..1)",
    )
    serve.add_argument(
        "--slo-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="SLO: scheduler queue-depth ceiling",
    )
    serve.add_argument(
        "--slo-max-estimate-qerror",
        type=float,
        default=None,
        metavar="Q",
        help="SLO: ceiling on the mean output-estimate q-error of recent queries",
    )
    serve.add_argument(
        "--slo-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="background SLO evaluation cadence (0 evaluates only on demand)",
    )
    serve.add_argument(
        "--calibration-log",
        type=str,
        default=None,
        metavar="PATH",
        help="spool (estimate, actual, features) records of executed queries "
        "to this JSONL file for cost-model recalibration",
    )
    serve.add_argument(
        "--inject-fault",
        type=str,
        default=None,
        metavar="SPEC",
        help="deterministic chaos spec like 'worker_crash:0.1,task_slow:0.05,"
        "spill_torn:1' (kinds: worker_crash, task_slow, spill_torn; a "
        "missing rate means 1.0)",
    )
    serve.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="N",
        help="seed of the fault injector's firing decisions (replayable chaos)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default end-to-end deadline applied to every query",
    )
    serve.add_argument(
        "--degraded-mode",
        choices=("stale", "reject"),
        default=None,
        help="overload behavior: serve a marked version-stale cached result "
        "('stale', default) or always reject ('reject')",
    )

    stats = subparsers.add_parser(
        "stats", help="query a running TCP server's live stats surface"
    )
    stats.add_argument("--host", type=str, default="127.0.0.1", help="server address")
    stats.add_argument("--port", type=int, required=True, help="server TCP port")
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="print the Prometheus text exposition instead of the JSON stats",
    )
    stats.add_argument(
        "--trace",
        type=int,
        default=0,
        metavar="N",
        help="also pretty-print the N most recent query traces",
    )
    stats.add_argument(
        "--health",
        action="store_true",
        help="print the SLO health report instead of the JSON stats",
    )

    explain = subparsers.add_parser(
        "explain",
        help="EXPLAIN (ANALYZE) a prepared query on a running TCP server",
    )
    explain.add_argument("query", help="prepared-query name on the server")
    explain.add_argument("--host", type=str, default="127.0.0.1", help="server address")
    explain.add_argument("--port", type=int, required=True, help="server TCP port")
    explain.add_argument(
        "--epsilons",
        type=str,
        default=None,
        metavar="E1,E2,...",
        help="comma-separated band widths (default: the query's defaults)",
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the query and graft measured actuals plus q-errors "
        "onto every estimate node",
    )
    explain_format = explain.add_mutually_exclusive_group()
    explain_format.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON report instead of the rendered plan tree",
    )
    explain_format.add_argument(
        "--text",
        action="store_true",
        help="print the rendered plan tree (the default)",
    )

    replay = subparsers.add_parser(
        "replay",
        help="replay a captured workload log (JSONL spool) and verify fingerprints",
    )
    replay.add_argument("log", help="JSONL capture written via --capture-log / capture_log")
    replay.add_argument(
        "--speed",
        type=float,
        default=None,
        metavar="X",
        help="pace requests at X times the captured arrival rate "
        "(default: as fast as possible)",
    )
    replay.add_argument(
        "--backend",
        choices=ENGINE_BACKENDS,
        default=None,
        help="execution backend of the replay service (default: config default)",
    )
    replay.add_argument(
        "--scheduler-workers", type=int, default=None, help="scheduler thread count"
    )
    replay.add_argument(
        "--snapshot",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the replayed log's Workload snapshot JSON here",
    )
    replay.add_argument(
        "--inject-fault",
        type=str,
        default=None,
        metavar="SPEC",
        help="replay under deterministic chaos, e.g. 'worker_crash:0.1'; "
        "fingerprint verification still applies, so the replay proves "
        "recovery never changes answers",
    )
    replay.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="N",
        help="seed of the fault injector's firing decisions",
    )

    subparsers.add_parser("list", help="list available tables and workloads")
    return parser


def _command_demo(args: argparse.Namespace) -> int:
    from repro.experiments.runner import default_partitioners, run_workload
    from repro.experiments.workloads import pareto_workload

    workload = pareto_workload(
        args.band_width,
        dimensions=args.dimensions,
        skew=args.skew,
        rows_per_input=args.rows,
        workers=args.workers,
    )
    partitioners = default_partitioners(
        include_recpart_symmetric=True, include_grid_star=True, include_iejoin=True
    )
    experiment = run_workload(
        workload,
        partitioners=partitioners,
        verify="count" if args.verify else "none",
        engine=args.engine,
        local_algorithm=args.local_algorithm,
    )
    print(experiment.format())
    best = experiment.best_method()
    print(f"\nfastest method (optimization + estimated join time): {best.method}")
    return 0


def _command_engine(args: argparse.Namespace) -> int:
    from repro.engine import ParallelJoinEngine, PlanCache, available_backends
    from repro.experiments.workloads import pareto_workload

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    unknown = [b for b in backends if b not in available_backends()]
    if unknown:
        print(f"unknown backends {unknown}; available: {', '.join(available_backends())}")
        return 2
    workload = pareto_workload(
        args.band_width,
        dimensions=args.dimensions,
        skew=args.skew,
        rows_per_input=args.rows,
        workers=args.workers,
    )
    s, t, condition = workload.build()
    # One shared plan cache: RecPart runs once, every backend executes the
    # same partitioning, so the comparison isolates the execution substrate.
    cache = PlanCache()
    rows = []
    reference_output: int | None = None
    serial_seconds: float | None = None
    for backend in backends:
        engine = ParallelJoinEngine(
            backend=backend, algorithm=args.local_algorithm, plan_cache=cache
        )
        best = None
        paid_optimization = False
        for _ in range(max(1, args.repeat)):
            result = engine.join(s, t, condition, workers=args.workers)
            paid_optimization = paid_optimization or not result.plan_from_cache
            if best is None or result.execution_seconds < best.execution_seconds:
                best = result
        if reference_output is None:
            reference_output = best.total_output
        elif best.total_output != reference_output:
            print(
                f"backend {backend!r} produced {best.total_output} pairs, "
                f"expected {reference_output}"
            )
            return 1
        if serial_seconds is None:
            serial_seconds = best.execution_seconds
        rows.append(
            [
                backend,
                best.total_output,
                best.optimization_seconds if paid_optimization else 0.0,
                best.execution_seconds,
                serial_seconds / best.execution_seconds if best.execution_seconds else 1.0,
                best.speedup,
                "no" if paid_optimization else "yes",
            ]
        )
    print(
        format_table(
            ["backend", "output", "opt [s]", "exec [s]", f"vs {backends[0]}", "overlap", "plan cached"],
            rows,
            title=(
                f"{workload.name}: engine backend comparison "
                f"(|S|=|T|={args.rows:,}, w={args.workers})"
            ),
        )
    )
    print(f"\nall backends produced identical output counts ({reference_output:,} pairs)")
    return 0


def _command_table(args: argparse.Namespace) -> int:
    from repro.experiments.tables import ALL_TABLES

    key = args.table_id.lower().removeprefix("table").strip()
    if key not in ALL_TABLES:
        print(f"unknown table {args.table_id!r}; available: {', '.join(sorted(ALL_TABLES))}")
        return 2
    reproduction = ALL_TABLES[key](
        scale=args.scale, verify="count" if args.verify else "none", seed=args.seed
    )
    print(reproduction.format())
    return 0


def _command_figure4(args: argparse.Namespace) -> int:
    from repro.experiments.figures import figure4

    data = figure4(scale=args.scale, seed=args.seed)
    print(data.render_ascii())
    print()
    print(
        format_table(
            ["method", "points", "within 10% of both bounds", "median dup", "median load", "worst"],
            data.summary_rows(),
            title="Figure 4 / Figure 10 summary",
        )
    )
    if args.csv:
        path = data.to_csv(args.csv)
        print(f"\npoints written to {path}")
    return 0


def _command_calibrate(args: argparse.Namespace) -> int:
    from repro.cost.calibration import calibrate_running_time_model

    result = calibrate_running_time_model(n_queries=args.queries, base_input=args.base_input)
    coefficients = result.model.coefficients
    print("calibrated running-time model:")
    print(f"  beta0 (fixed)            = {coefficients.beta0:.6g}")
    print(f"  beta1 (per shuffled tuple) = {coefficients.beta1:.6g}")
    print(f"  beta2 (per local input)  = {coefficients.beta2:.6g}")
    print(f"  beta3 (per output tuple) = {coefficients.beta3:.6g}")
    print(f"  beta2 / beta3            = {coefficients.local_cost_ratio:.3g}")
    print(f"  training observations    = {result.n_observations}")
    print(f"  mean relative error      = {result.mean_relative_error():.3f}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.config import ServiceConfig
    from repro.service import BandJoinService, LineProtocolServer, serve_lines

    overrides = {"backend": args.backend}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.scheduler_workers is not None:
        overrides["scheduler_workers"] = args.scheduler_workers
    if args.staleness_threshold is not None:
        overrides["staleness_threshold"] = args.staleness_threshold
    if args.local_algorithm is not None:
        overrides["local_algorithm"] = args.local_algorithm
    if args.max_estimated_pairs is not None:
        overrides["max_estimated_pairs"] = args.max_estimated_pairs
    if args.storage is not None:
        overrides["storage"] = args.storage
    if args.spill_dir is not None:
        overrides["spill_dir"] = args.spill_dir
    if args.spill_threshold_bytes is not None:
        overrides["spill_threshold_bytes"] = args.spill_threshold_bytes
    if args.no_telemetry:
        overrides["telemetry"] = False
    if args.no_capture:
        overrides["capture"] = False
    if args.capture_log is not None:
        overrides["capture_log"] = args.capture_log
    if args.capture_ring is not None:
        overrides["capture_ring_size"] = args.capture_ring
    if args.trace_ring is not None:
        overrides["trace_ring_size"] = args.trace_ring
    if args.slo_p99 is not None:
        overrides["slo_p99_seconds"] = args.slo_p99
    if args.slo_error_rate is not None:
        overrides["slo_error_rate"] = args.slo_error_rate
    if args.slo_cache_hit is not None:
        overrides["slo_cache_hit_floor"] = args.slo_cache_hit
    if args.slo_queue_depth is not None:
        overrides["slo_queue_depth"] = args.slo_queue_depth
    if args.slo_max_estimate_qerror is not None:
        overrides["slo_max_estimate_qerror"] = args.slo_max_estimate_qerror
    if args.slo_interval is not None:
        overrides["slo_interval"] = args.slo_interval
    if args.calibration_log is not None:
        overrides["calibration_log"] = args.calibration_log
    if args.inject_fault is not None:
        overrides["inject_faults"] = args.inject_fault
    if args.fault_seed is not None:
        overrides["fault_seed"] = args.fault_seed
    if args.deadline is not None:
        overrides["default_deadline_seconds"] = args.deadline
    if args.degraded_mode is not None:
        overrides["degraded_mode"] = args.degraded_mode
    service = BandJoinService(config=ServiceConfig(**overrides))
    with service:
        if args.port is None:
            print(
                '{"ok": true, "op": "ready", "transport": "stdio"}',
                flush=True,
            )
            serve_lines(service, sys.stdin, sys.stdout)
            return 0
        server = LineProtocolServer((args.host, args.port), service)
        port = server.server_address[1]
        print(f'{{"ok": true, "op": "ready", "transport": "tcp", "port": {port}}}', flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            server.shutdown()
            server.server_close()
    return 0


def _request_line(sock_file_r, sock_file_w, payload: dict) -> dict:
    """One JSON-line round trip over a connected socket file pair."""
    import json

    sock_file_w.write((json.dumps(payload) + "\n").encode())
    sock_file_w.flush()
    raw = sock_file_r.readline()
    if not raw:
        raise ConnectionError("server closed the connection")
    return json.loads(raw.decode("utf-8", "replace"))


def _command_stats(args: argparse.Namespace) -> int:
    import json
    import socket

    from repro.obs import format_trace_tree

    with socket.create_connection((args.host, args.port), timeout=30) as sock:
        reader = sock.makefile("rb")
        writer = sock.makefile("wb")
        if args.prometheus:
            response = _request_line(reader, writer, {"op": "metrics"})
            if not response.get("ok"):
                print(f"error: {response.get('error')}")
                return 1
            print(response["metrics"], end="")
        elif args.health:
            response = _request_line(reader, writer, {"op": "health"})
            if not response.get("ok"):
                print(f"error: {response.get('error')}")
                return 1
            health = response["health"]
            print(json.dumps(health, indent=2, sort_keys=True))
            return 0 if health.get("healthy") else 1
        else:
            response = _request_line(reader, writer, {"op": "stats"})
            if not response.get("ok"):
                print(f"error: {response.get('error')}")
                return 1
            print(json.dumps(response["stats"], indent=2, sort_keys=True))
        if args.trace > 0:
            response = _request_line(reader, writer, {"op": "trace", "n": args.trace})
            if not response.get("ok"):
                print(f"error: {response.get('error')}")
                return 1
            traces = response.get("traces", [])
            if not traces:
                print("\nno finished traces yet")
            for trace in traces:
                print()
                print(format_trace_tree(trace))
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    import json
    import socket

    from repro.obs.explain import format_plan_tree

    payload = {"op": "explain", "query": args.query, "analyze": args.analyze}
    if args.epsilons is not None:
        try:
            payload["epsilons"] = [
                float(e) for e in args.epsilons.split(",") if e.strip()
            ]
        except ValueError:
            print(f"invalid --epsilons {args.epsilons!r}; expected comma-separated numbers")
            return 2
    with socket.create_connection((args.host, args.port), timeout=300) as sock:
        reader = sock.makefile("rb")
        writer = sock.makefile("wb")
        response = _request_line(reader, writer, payload)
    if not response.get("ok"):
        print(f"error: {response.get('error')}")
        return 1
    report = response["explain"]
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_plan_tree(report))
    return 0


def _command_replay(args: argparse.Namespace) -> int:
    from repro.config import ServiceConfig
    from repro.obs.workload import Workload, replay_log

    overrides = {"capture": False, "compaction": "sync", "degraded_mode": "reject"}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.scheduler_workers is not None:
        overrides["scheduler_workers"] = args.scheduler_workers
    if args.inject_fault is not None:
        overrides["inject_faults"] = args.inject_fault
    if args.fault_seed is not None:
        overrides["fault_seed"] = args.fault_seed
    report = replay_log(args.log, config=ServiceConfig(**overrides), speed=args.speed)
    print(report.describe())
    if args.snapshot:
        workload = Workload.from_log_file(args.log)
        workload.save(args.snapshot)
        print(f"workload snapshot written to {args.snapshot}")
    return 0 if report.ok else 1


def _command_list(_: argparse.Namespace) -> int:
    from repro.experiments.tables import ALL_TABLES

    print("available tables:")
    for key in sorted(ALL_TABLES):
        print(f"  {key:4s} -> {ALL_TABLES[key].__doc__.splitlines()[0]}")
    print("\nworkload families (see repro.experiments.workloads):")
    for factory in (
        wl.table2a_workloads,
        wl.table2b_workloads,
        wl.table2c_workloads,
        wl.table3_workloads,
        wl.table16_workloads,
    ):
        for workload in factory():
            print(f"  {workload.name:32s} {workload.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-bandjoin`` command."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    from repro.obs import setup_logging

    setup_logging(verbosity=args.verbose)
    handlers = {
        "demo": _command_demo,
        "engine": _command_engine,
        "table": _command_table,
        "figure4": _command_figure4,
        "calibrate": _command_calibrate,
        "serve": _command_serve,
        "stats": _command_stats,
        "explain": _command_explain,
        "replay": _command_replay,
        "list": _command_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
