"""Named, versioned relation catalog with incremental delta appends.

The catalog is the serving layer's data plane.  Every registered relation is
held as a **base** (the part the optimizer has seen — plans and materialized
base results key off its content) plus a **delta** tail of rows appended
since the base was last (re-)partitioned.  An append therefore never touches
the base: it concatenates onto the delta and bumps the content version,
which is what invalidates the prepared queries' materialized results.

Once the delta grows past a configurable fraction of the base
(:attr:`RelationCatalog.staleness_threshold`), the relation is *stale*: the
catalog reports it and fires the ``on_stale`` callback, which the service
wires to background compaction — merging the delta into a new base, after
which the next query re-optimizes over the full data.  Until then, queries
answer through the delta-join path of
:class:`~repro.service.prepared.PreparedQuery`, which routes only the
appended rows through the existing partitioning.

All mutation happens under one lock; readers receive immutable
:class:`RelationSnapshot` objects and are never blocked by an append racing
with their query.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from collections.abc import Mapping

import numpy as np

from repro import faults
from repro.config import (
    DEFAULT_SPILL_THRESHOLD_BYTES,
    DEFAULT_STALENESS_THRESHOLD,
    DEFAULT_STORAGE_BACKEND,
    MAX_SEGMENTS_BEFORE_REWRITE,
    STORAGE_BACKENDS,
)
from repro.data.relation import Relation
from repro.data.storage import recover_spill_dir
from repro.exceptions import CorruptSegmentError, ServiceError
from repro.obs.globals import registry as obs_registry

__all__ = ["RelationSnapshot", "RelationCatalog"]

#: Spill attempts before giving up (the last one runs fault-suppressed).
MAX_SPILL_ATTEMPTS = 3


def _recovery_counter():
    return obs_registry().counter(
        "repro_segment_recoveries_total",
        "corrupt segment writes detected and retried into a fresh directory",
    )


def _as_relation(name: str, data) -> Relation:
    """Coerce a Relation or a ``{column: array}`` mapping into a Relation."""
    if isinstance(data, Relation):
        return data if data.name == name else data.rename(name)
    if isinstance(data, Mapping):
        return Relation(name, {c: np.asarray(v) for c, v in data.items()})
    raise ServiceError(
        f"relation data for {name!r} must be a Relation or a column mapping, "
        f"got {type(data).__name__}"
    )


class RelationSnapshot:
    """Immutable view of one catalog relation at a point in time.

    Attributes
    ----------
    name:
        Catalog name of the relation.
    version:
        Content version; bumped on every append and re-registration.  Result
        caches key off this, so stale results can never be served.
    base_version:
        Partitioning lineage; bumped when the base changes (registration or
        compaction) but *not* on appends — cached plans and base results
        stay valid across appends.
    base / delta:
        The optimized part and the appended tail (``None`` when no rows have
        been appended since the last compaction).
    """

    __slots__ = ("name", "version", "base_version", "base", "delta", "_full")

    def __init__(
        self,
        name: str,
        version: int,
        base_version: int,
        base: Relation,
        delta: Relation | None,
    ) -> None:
        self.name = name
        self.version = version
        self.base_version = base_version
        self.base = base
        self.delta = delta
        self._full: Relation | None = None

    @property
    def full(self) -> Relation:
        """Return base and delta concatenated (materialized lazily, once)."""
        if self.delta is None:
            return self.base
        full = self._full
        if full is None:
            full = self.base.concat(self.delta)
            self._full = full
        return full

    @property
    def rows(self) -> int:
        """Return the total row count including the delta."""
        return len(self.base) + self.delta_rows

    @property
    def delta_rows(self) -> int:
        """Return the number of appended rows awaiting compaction."""
        return 0 if self.delta is None else len(self.delta)

    @property
    def staleness(self) -> float:
        """Return the delta-to-base row fraction."""
        return self.delta_rows / max(1, len(self.base))

    @property
    def storage(self) -> str:
        """Return the storage backend of the relation's base."""
        return self.base.storage

    @property
    def segment_count(self) -> int:
        """Return the physical segment count across base and delta."""
        total = self.base.segment_count
        if self.delta is not None:
            total += self.delta.segment_count
        return total

    def describe(self) -> dict:
        """Return a JSON-friendly summary."""
        return {
            "name": self.name,
            "version": self.version,
            "base_version": self.base_version,
            "rows": self.rows,
            "delta_rows": self.delta_rows,
            "staleness": self.staleness,
            "columns": list(self.base.column_names),
            "storage": self.storage,
            "segments": self.segment_count,
            "bytes": self.base.nbytes + (self.delta.nbytes if self.delta else 0),
        }

    def __repr__(self) -> str:
        return (
            f"RelationSnapshot(name={self.name!r}, version={self.version}, "
            f"rows={self.rows}, delta_rows={self.delta_rows})"
        )


class RelationCatalog:
    """Registry of named, versioned relations supporting incremental appends.

    Parameters
    ----------
    staleness_threshold:
        Delta-to-base fraction past which :meth:`append` reports the
        relation stale and fires ``on_stale``.
    on_stale:
        Callback ``on_stale(name)`` invoked (outside the catalog lock) when
        an append pushes a relation past the threshold; the service uses it
        to schedule background compaction.
    storage:
        ``"memory"`` (historical all-heap behavior) or ``"mmap"``:
        registered relations of at least ``spill_threshold_bytes`` bytes are
        spilled to memory-mapped ``.npy`` segments under ``spill_dir``, and
        compaction maintains the segment chain incrementally on disk.
    spill_dir:
        Segment directory root; a private temp directory (removed by
        :meth:`cleanup`) when ``None``.
    spill_threshold_bytes:
        Minimum relation payload size for spilling — small relations stay on
        the heap even under ``storage="mmap"``.
    """

    def __init__(
        self,
        staleness_threshold: float = DEFAULT_STALENESS_THRESHOLD,
        on_stale=None,
        storage: str = DEFAULT_STORAGE_BACKEND,
        spill_dir: str | None = None,
        spill_threshold_bytes: int = DEFAULT_SPILL_THRESHOLD_BYTES,
    ) -> None:
        if staleness_threshold <= 0:
            raise ServiceError("staleness_threshold must be positive")
        if storage not in STORAGE_BACKENDS:
            raise ServiceError(
                f"storage must be one of {STORAGE_BACKENDS}, got {storage!r}"
            )
        if spill_threshold_bytes < 1:
            raise ServiceError("spill_threshold_bytes must be positive")
        self.staleness_threshold = staleness_threshold
        self.on_stale = on_stale
        self.storage = storage
        self.spill_threshold_bytes = int(spill_threshold_bytes)
        self._owns_spill_dir = storage == "mmap" and spill_dir is None
        if storage == "mmap":
            self.spill_dir = (
                tempfile.mkdtemp(prefix="repro-catalog-") if spill_dir is None else spill_dir
            )
            os.makedirs(self.spill_dir, exist_ok=True)
            # Startup recovery: a crash mid-spill leaves ``*.tmp`` segment
            # files behind (finished segments were atomically renamed, so
            # anything still tmp-named is garbage by definition).
            recover_spill_dir(self.spill_dir)
        else:
            self.spill_dir = spill_dir
        self._lock = threading.Lock()
        self._entries: dict[str, RelationSnapshot] = {}
        self._spill_lock = threading.Lock()
        self._spill_serial = 0

    def _spill_path(self, label: str) -> str:
        """Return a fresh segment directory for ``label`` under the root."""
        with self._spill_lock:
            self._spill_serial += 1
            serial = self._spill_serial
        return os.path.join(self.spill_dir, f"{label}-{serial:05d}")

    def _maybe_spill(self, relation: Relation) -> Relation:
        """Spill a heap relation to disk segments when policy says so."""
        if (
            self.storage != "mmap"
            or relation.storage != "memory"
            or relation.nbytes < self.spill_threshold_bytes
        ):
            return relation
        return self._spill_with_retry(relation, relation.name, "register")

    def _spill_with_retry(self, relation: Relation, label: str, stage: str) -> Relation:
        """Spill ``relation`` to segments, retrying torn writes (see below)."""
        return self._retry_segment_write(relation.spill, label, stage)

    def _retry_segment_write(self, write, label: str, stage: str):
        """Run ``write(path)`` against fresh segment directories until it sticks.

        Segment writes validate on finish, so a torn write (crash window,
        full disk, injected ``spill_torn`` fault) surfaces as
        :class:`CorruptSegmentError` here rather than as wrong query
        answers later.  Each retry targets a *fresh* directory — the bad
        one is removed — and the final attempt runs fault-suppressed, so
        availability never depends on the injector's draw.
        """
        last_error: CorruptSegmentError | None = None
        for attempt in range(MAX_SPILL_ATTEMPTS):
            path = self._spill_path(label)
            final = attempt == MAX_SPILL_ATTEMPTS - 1
            try:
                if final:
                    with faults.suppressed():
                        return write(path)
                return write(path)
            except CorruptSegmentError as exc:
                last_error = exc
                _recovery_counter().inc(stage=stage)
                shutil.rmtree(path, ignore_errors=True)
        raise CorruptSegmentError(
            f"segment write for {label!r} failed after {MAX_SPILL_ATTEMPTS} "
            f"attempts: {last_error}"
        ) from last_error

    def cleanup(self) -> None:
        """Remove the catalog-owned spill directory (call after shutdown).

        Segment files are shared by every snapshot version that references
        them, so individual files are never deleted while the catalog is
        live; the whole directory goes at once when the owning service
        closes.  Catalogs pointed at a caller-provided ``spill_dir`` leave
        it untouched.
        """
        if self._owns_spill_dir and self.spill_dir:
            shutil.rmtree(self.spill_dir, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # Registration and lookup
    # ------------------------------------------------------------------ #
    def register(self, name: str, data, replace: bool = False) -> RelationSnapshot:
        """Register a relation under ``name`` (a fresh base with no delta).

        Under ``storage="mmap"`` a heap relation at or above the spill
        threshold is rewritten to memory-mapped segments before it enters
        the catalog, so registration — not first query — pays the I/O.
        """
        relation = self._maybe_spill(_as_relation(name, data))
        with self._lock:
            existing = self._entries.get(name)
            if existing is not None and not replace:
                raise ServiceError(
                    f"relation {name!r} is already registered; pass replace=True to overwrite"
                )
            version = existing.version + 1 if existing is not None else 1
            base_version = existing.base_version + 1 if existing is not None else 1
            snapshot = RelationSnapshot(name, version, base_version, relation, None)
            self._entries[name] = snapshot
            return snapshot

    def get(self, name: str) -> RelationSnapshot:
        """Return the current snapshot of ``name``."""
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise ServiceError(
                    f"unknown relation {name!r}; registered: {sorted(self._entries)}"
                ) from None

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def names(self) -> list[str]:
        """Return the registered relation names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def drop(self, name: str) -> None:
        """Remove a relation from the catalog."""
        with self._lock:
            if self._entries.pop(name, None) is None:
                raise ServiceError(f"unknown relation {name!r}")

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def append(self, name: str, rows) -> RelationSnapshot:
        """Append rows to a relation's delta and return the new snapshot.

        The appended rows are schema-checked against the base; the base
        itself (and therefore every cached plan and base result) is
        untouched.  When the grown delta pushes the relation past the
        staleness threshold, ``on_stale(name)`` fires after the catalog
        lock is released.
        """
        delta_rows = _as_relation(name, rows)
        stale = False
        with self._lock:
            current = self._entries.get(name)
            if current is None:
                raise ServiceError(f"cannot append to unknown relation {name!r}")
            if len(delta_rows) == 0:
                return current
            if delta_rows.column_names != current.base.column_names:
                raise ServiceError(
                    f"appended rows for {name!r} have schema "
                    f"{delta_rows.column_names}, expected {current.base.column_names}"
                )
            delta = (
                delta_rows
                if current.delta is None
                else current.delta.concat(delta_rows)
            )
            snapshot = RelationSnapshot(
                name, current.version + 1, current.base_version, current.base, delta
            )
            self._entries[name] = snapshot
            stale = snapshot.staleness >= self.staleness_threshold
        if stale and self.on_stale is not None:
            self.on_stale(name)
        return snapshot

    def compact(self, name: str) -> RelationSnapshot:
        """Merge a relation's delta into a fresh base (the re-partition point).

        The content version is preserved — the rows are unchanged, so
        materialized results for the current version remain servable — but
        the base lineage is bumped: the next uncached query re-optimizes
        over the full data instead of taking the delta path.

        The merge never materializes the whole relation at once.  A heap
        base concatenates column by column (peak transient memory is one
        column pair), then spills if it crossed the threshold.  An mmap
        base spills the delta and unions the segment chains — O(delta)
        I/O — rewriting the chain into even segments only once it exceeds
        ``MAX_SEGMENTS_BEFORE_REWRITE``.
        """
        with self._lock:
            current = self._entries.get(name)
            if current is None:
                raise ServiceError(f"cannot compact unknown relation {name!r}")
            if current.delta is None:
                return current
            base, delta = current.base, current.delta
            if base.storage == "mmap":
                delta = self._retry_segment_write(
                    delta.spill, f"{name}-delta", "compact"
                )
                merged = base.concat(delta)
                if merged.segment_count > MAX_SEGMENTS_BEFORE_REWRITE:
                    merged = Relation.from_store(
                        name,
                        self._retry_segment_write(
                            merged.store.compacted, f"{name}-compact", "compact"
                        ),
                    )
            else:
                merged = self._maybe_spill(base.concat(delta))
            snapshot = RelationSnapshot(
                name, current.version, current.base_version + 1, merged, None
            )
            self._entries[name] = snapshot
            return snapshot

    def stale_names(self) -> list[str]:
        """Return the relations currently past the staleness threshold."""
        with self._lock:
            return sorted(
                name
                for name, snap in self._entries.items()
                if snap.staleness >= self.staleness_threshold
            )

    def describe(self) -> dict:
        """Return a JSON-friendly summary of every registered relation."""
        with self._lock:
            return {name: snap.describe() for name, snap in self._entries.items()}

    def __repr__(self) -> str:
        return f"RelationCatalog(relations={self.names()})"
