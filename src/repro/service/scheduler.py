"""Concurrent query scheduler: single-flight, micro-batching, admission control.

The scheduler is the serving layer's control plane.  Callers submit
``(prepared query, epsilons)`` requests and receive futures; a small pool of
worker threads drains the queue.  Three mechanisms keep heavy traffic
efficient:

**Single-flight deduplication** — a request identical to one already queued
or executing (same prepared-query key, same epsilons) does not enqueue a
second execution; it attaches to the in-flight future and both callers get
the same result.  Under a thundering herd of popular queries only one engine
dispatch runs.

**Micro-batching** — when a worker picks up a request it also drains queued
requests for the *same prepared query* with different epsilons (up to
``max_batch``).  The batch runs as one engine dispatch with the per-attribute
union of the epsilon bands; each member's exact answer is recovered by
filtering the wide pair set against its own band condition (exact, because
the filter re-checks the member's condition on the actual values — a pair
satisfies a narrower band iff its values do).

**Admission control** — at most ``max_pending`` requests may be queued or
executing; beyond that :meth:`QueryScheduler.submit` raises
:class:`~repro.exceptions.ServiceOverloadError` instead of letting queues
grow without bound.  Optionally the scheduler also prices each query by its
cheap sampled output estimate (:meth:`PreparedQuery.estimate_pairs`, powered
by the zero-materialization counting kernels) and rejects queries whose
estimate exceeds ``max_estimated_pairs`` — a runaway band width then fails
fast at submit time instead of tying a worker to an enormous dispatch.

Every request is timed (queue wait, execution, total) and counted per
execution path; :meth:`SchedulerMetrics.snapshot` reports the counters plus
latency percentiles over a sliding window.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from repro.config import DEFAULT_MAX_BATCH, DEFAULT_MAX_PENDING, DEFAULT_SCHEDULER_WORKERS
from repro.engine import deadline as deadline_mod
from repro.exceptions import (
    CorruptSegmentError,
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadError,
)
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    NOOP_SPAN,
    MetricsRegistry,
    get_logger,
    peak_rss_bytes,
    percentile,
    tracer,
)
from repro.obs.workload.recorder import pair_fingerprint
from repro.service.prepared import (
    PATH_MICRO_BATCH,
    PreparedQuery,
    QueryResult,
    epsilon_union,
    gather_rows,
)

__all__ = ["QueryScheduler", "SchedulerMetrics"]

logger = get_logger(__name__)

#: Failure causes reported by ``repro_query_failures_total``.
FAILURE_CAUSES = ("overload", "worker_crash", "timeout", "corrupt_segment", "internal")


def _failure_cause(exc: BaseException) -> str:
    """Classify an execution failure for the labeled failure counter."""
    if isinstance(exc, ServiceOverloadError):
        return "overload"
    if isinstance(exc, DeadlineExceededError):
        return "timeout"
    if isinstance(exc, BrokenProcessPool):
        return "worker_crash"
    if isinstance(exc, CorruptSegmentError):
        return "corrupt_segment"
    return "internal"


class SchedulerMetrics:
    """Scheduler accounting, backed by an obs :class:`MetricsRegistry`.

    Every counter lives in the registry (``repro_scheduler_*``), so one
    Prometheus scrape of the owning registry sees them; the integer
    properties (``submitted``, ``completed``, …) read the same counters for
    existing callers.  Exact latency percentiles additionally keep a sliding
    window of samples — registry histograms have fixed buckets, and the
    serving API promised exact p50/p95/p99.
    """

    def __init__(self, window: int = 2048, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._events = self.registry.counter(
            "repro_scheduler_events_total",
            "scheduler lifecycle events (submitted/completed/...)",
        )
        self._paths = self.registry.counter(
            "repro_scheduler_paths_total", "completed requests per execution path"
        )
        self._latency = self.registry.histogram(
            "repro_scheduler_latency_seconds",
            "request latency by stage",
            buckets=DEFAULT_TIME_BUCKETS,
        )
        self._peak_rss = self.registry.gauge(
            "repro_process_peak_rss_bytes",
            "peak resident set size of the serving process",
        )
        self._failures = self.registry.counter(
            "repro_query_failures_total",
            "request failures classified by cause "
            "(overload/worker_crash/timeout/corrupt_segment/internal)",
        )
        self._degraded = self.registry.counter(
            "repro_degraded_responses_total",
            "requests answered with a version-stale cached result under overload",
        )
        self._latencies: deque = deque(maxlen=window)  # (queue_s, exec_s, total_s)

    # -- write paths ---------------------------------------------------- #
    def record_submitted(self) -> None:
        self._events.inc(event="submitted")

    def record_deduplicated(self) -> None:
        self._events.inc(event="deduplicated")

    def record_rejected(self) -> None:
        self._events.inc(event="rejected")
        # Admission rejections are the scheduler's overload failures —
        # classified here even when degraded mode still answers the caller.
        self._failures.inc(cause="overload")

    def record_degraded(self) -> None:
        self._events.inc(event="degraded")
        self._degraded.inc()

    def record_batched(self, count: int) -> None:
        self._events.inc(count, event="batched")

    def record(self, path: str, queue_seconds: float, exec_seconds: float) -> None:
        """Record one completed request."""
        self._events.inc(event="completed")
        self._paths.inc(path=path)
        total = queue_seconds + exec_seconds
        self._latency.observe(queue_seconds, stage="queue")
        self._latency.observe(exec_seconds, stage="exec")
        self._latency.observe(total, stage="total")
        with self._lock:
            self._latencies.append((queue_seconds, exec_seconds, total))

    def record_failure(self, cause: str = "internal") -> None:
        self._events.inc(event="failed")
        self._failures.inc(cause=cause)

    def sample_rss(self) -> None:
        """Refresh the peak-RSS gauge (called after each executed batch)."""
        self._peak_rss.set(peak_rss_bytes())

    @property
    def peak_rss_bytes(self) -> int:
        return int(self._peak_rss.value())

    # -- read paths (API-compatible with the pre-registry counters) ----- #
    def _event(self, name: str) -> int:
        return int(self._events.value(event=name))

    @property
    def submitted(self) -> int:
        return self._event("submitted")

    @property
    def completed(self) -> int:
        return self._event("completed")

    @property
    def failed(self) -> int:
        return self._event("failed")

    @property
    def deduplicated(self) -> int:
        return self._event("deduplicated")

    @property
    def batched(self) -> int:
        return self._event("batched")

    @property
    def rejected(self) -> int:
        return self._event("rejected")

    @property
    def degraded(self) -> int:
        return self._event("degraded")

    @property
    def paths(self) -> dict[str, int]:
        return {labels.get("path", ""): int(count) for labels, count in self._paths.items()}

    @property
    def failures(self) -> dict[str, int]:
        """Return request failures keyed by classified cause."""
        return {
            labels.get("cause", ""): int(count)
            for labels, count in self._failures.items()
        }

    def latency_percentiles(self) -> dict:
        """Return p50/p95/p99 of total latency plus mean queue wait (seconds)."""
        with self._lock:
            totals = [total for _, _, total in self._latencies]
            queues = [queue for queue, _, _ in self._latencies]
        return {
            "p50": percentile(totals, 50),
            "p95": percentile(totals, 95),
            "p99": percentile(totals, 99),
            "mean_queue_seconds": sum(queues) / len(queues) if queues else 0.0,
            "samples": len(totals),
        }

    def snapshot(self) -> dict:
        """Return a JSON-friendly summary of every counter."""
        info = {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "deduplicated": self.deduplicated,
            "batched": self.batched,
            "rejected": self.rejected,
            "degraded": self.degraded,
            "failures": self.failures,
            "paths": self.paths,
            "peak_rss_bytes": self.peak_rss_bytes,
        }
        info["latency"] = self.latency_percentiles()
        return info


def _query_label(prepared) -> str:
    """Human-readable label of a prepared query (tolerates test stubs)."""
    return (
        f"{getattr(prepared, 's_name', '?')}⋈{getattr(prepared, 't_name', '?')}"
    )


def _query_name(prepared) -> str:
    """Capture identity of a prepared query: its registered service name
    when available (replayable), otherwise the human-readable label."""
    return getattr(prepared, "name", None) or _query_label(prepared)


@dataclass
class _Request:
    """One scheduled execution (shared by every deduplicated submitter)."""

    prepared: PreparedQuery
    ekey: tuple
    key: tuple
    future: Future
    submitted_at: float
    started_at: float = 0.0
    submitted_wall: float = 0.0
    span: object = NOOP_SPAN  # telemetry "query" span (NOOP when disabled)
    deadline_at: float | None = None  # monotonic; None = unbounded


class QueryScheduler:
    """Schedules prepared-query executions onto a worker-thread pool.

    Parameters
    ----------
    max_workers:
        Number of scheduler threads (each drives one engine dispatch at a
        time; the engine's own backend parallelizes within a dispatch).
    max_pending:
        Admission-control limit on requests queued or executing.
    max_batch:
        Maximum number of compatible requests served by one dispatch.
    max_estimated_pairs:
        Reject queries whose sampled output estimate exceeds this many
        pairs (``None`` disables output-size admission control).
    recorder:
        Optional :class:`~repro.obs.workload.recorder.QueryLogRecorder`;
        when present every request outcome (completed, deduplicated,
        rejected, failed) is captured as a structured workload event.
    calibration:
        Optional :class:`~repro.obs.explain.store.EstimateAccuracyTracker`;
        when present every *executed* completion (cache-served paths are
        skipped) is handed over for estimate-vs-actual accounting.
    """

    def __init__(
        self,
        max_workers: int = DEFAULT_SCHEDULER_WORKERS,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_estimated_pairs: int | None = None,
        registry: MetricsRegistry | None = None,
        recorder=None,
        calibration=None,
        default_deadline: float | None = None,
        degraded_mode: str = "stale",
        drain_timeout: float = 5.0,
    ) -> None:
        if max_workers < 1:
            raise ServiceError("max_workers must be at least 1")
        if max_pending < 1:
            raise ServiceError("max_pending must be at least 1")
        if max_batch < 1:
            raise ServiceError("max_batch must be at least 1")
        if max_estimated_pairs is not None and max_estimated_pairs < 1:
            raise ServiceError("max_estimated_pairs must be positive when set")
        if default_deadline is not None and default_deadline <= 0:
            raise ServiceError("default_deadline must be positive seconds when set")
        if degraded_mode not in ("stale", "reject"):
            raise ServiceError(
                f"degraded_mode must be 'stale' or 'reject', got {degraded_mode!r}"
            )
        if drain_timeout < 0:
            raise ServiceError("drain_timeout must be non-negative")
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.max_estimated_pairs = max_estimated_pairs
        self.default_deadline = default_deadline
        self.degraded_mode = degraded_mode
        self.drain_timeout = drain_timeout
        self.metrics = SchedulerMetrics(registry=registry)
        self.recorder = recorder
        self.calibration = calibration
        # Capture-template memo: everything about a completed query event
        # except its timings is determined by (query, epsilons, catalog
        # versions) — including the result fingerprint, which would
        # otherwise rehash the whole pair set per cache-served repeat.  Hot
        # repeats therefore capture at the cost of one dict copy.  Reads are
        # unlocked (a plain-dict get is atomic under the GIL); the lock only
        # serializes the insert/evict path.
        self._capture_lock = threading.Lock()
        self._capture_cache: dict[tuple, dict] = {}
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._queue: deque[_Request] = deque()
        self._inflight: dict[tuple, _Request] = {}
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"bandjoin-sched-{i}", daemon=True
            )
            for i in range(max_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #
    def submit(self, prepared: PreparedQuery, epsilons=None, deadline=None) -> Future:
        """Enqueue one query; returns a future resolving to a QueryResult.

        Identical in-flight requests share one future (single-flight); a
        full scheduler raises :class:`ServiceOverloadError` immediately, as
        does a query whose sampled output estimate exceeds
        ``max_estimated_pairs``.  The catalog versions at submit time are
        part of the request identity, so a query following an acknowledged
        append never attaches to an execution over the pre-append data.

        ``deadline`` (seconds; falls back to ``default_deadline``) bounds
        the request end to end: expired-in-queue requests fail with
        :class:`DeadlineExceededError`, and the remaining budget propagates
        into execution where backends bound their waits by it.

        Under overload with ``degraded_mode="stale"``, a request whose
        epsilon binding has *any* cached result is answered from it —
        explicitly marked stale with its version lag — instead of rejected.
        The rejection is still counted (the execution was refused); the
        degraded response is what the caller gets in its place.
        """
        ekey = prepared.epsilon_key(epsilons)
        key = (prepared.key, ekey, prepared.current_versions())
        deadline_at = self._resolve_deadline(deadline)
        try:
            with self._work_ready:
                existing = self._admit_locked(key)
                if existing is not None:
                    self._record_outcome(prepared, ekey, "deduplicated")
                    return existing
                if self.max_estimated_pairs is None:
                    return self._enqueue_locked(prepared, ekey, key, deadline_at)
        except ServiceOverloadError:
            degraded = self._degraded_future(prepared, ekey)
            if degraded is not None:
                return degraded
            self._record_outcome(prepared, ekey, "rejected", reason="saturated")
            raise
        # Priced outside the scheduler lock (the probe reads the catalog) and
        # after the saturation check, so overload never pays for probes; a
        # duplicate landing meanwhile is caught by the re-admission below.
        estimate = prepared.estimate_pairs(ekey)
        if estimate > self.max_estimated_pairs:
            self.metrics.record_rejected()
            logger.info(
                "rejected %s: estimated %.0f pairs over limit %d",
                _query_label(prepared), estimate, self.max_estimated_pairs,
            )
            degraded = self._degraded_future(prepared, ekey)
            if degraded is not None:
                return degraded
            self._record_outcome(prepared, ekey, "rejected", reason="estimated_pairs")
            raise ServiceOverloadError(
                f"estimated output of ~{estimate:,.0f} pairs exceeds the "
                f"admission limit of {self.max_estimated_pairs:,} pairs; "
                "narrow the band or raise max_estimated_pairs"
            )
        try:
            with self._work_ready:
                existing = self._admit_locked(key)
                if existing is not None:
                    self._record_outcome(prepared, ekey, "deduplicated")
                    return existing
                return self._enqueue_locked(prepared, ekey, key, deadline_at)
        except ServiceOverloadError:
            degraded = self._degraded_future(prepared, ekey)
            if degraded is not None:
                return degraded
            self._record_outcome(prepared, ekey, "rejected", reason="saturated")
            raise

    def _resolve_deadline(self, deadline) -> float | None:
        """Turn a relative deadline (seconds) into a monotonic timestamp."""
        seconds = deadline if deadline is not None else self.default_deadline
        if seconds is None:
            return None
        seconds = float(seconds)
        if seconds <= 0:
            raise ServiceError("deadline must be positive seconds")
        return time.monotonic() + seconds

    def _degraded_future(self, prepared, ekey) -> Future | None:
        """Under overload, try answering from a version-stale cached result.

        Returns a pre-resolved future holding the stale-marked result, or
        ``None`` when degraded mode is off, the prepared object cannot serve
        stale results (test stubs), or nothing usable is cached — the caller
        then rejects as before.  Correctness note: the result is *marked*
        (``stale``/``version_lag``), never silently passed off as fresh.
        """
        if self.degraded_mode != "stale":
            return None
        stale_fn = getattr(prepared, "stale_result", None)
        if stale_fn is None:
            return None
        try:
            result = stale_fn(ekey)
        except Exception:  # noqa: BLE001 - degrade is best-effort by definition
            return None
        if result is None:
            return None
        self.metrics.record_degraded()
        logger.info(
            "degraded %s: serving stale cached result (version lag %d)",
            _query_label(prepared), result.version_lag,
        )
        self._record_outcome(prepared, ekey, "degraded")
        future: Future = Future()
        future.set_result(result)
        return future

    def _admit_locked(self, key: tuple) -> Future | None:
        """Admission gate (caller holds the lock): returns the in-flight
        future of a duplicate, raises on shutdown or saturation, and returns
        ``None`` when the request may enqueue."""
        if self._shutdown:
            raise ServiceError("scheduler is shut down")
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.record_deduplicated()
            return existing.future
        if len(self._inflight) >= self.max_pending:
            self.metrics.record_rejected()
            logger.info("rejected: scheduler saturated at %d pending", self.max_pending)
            raise ServiceOverloadError(
                f"scheduler is saturated ({self.max_pending} pending queries); "
                "retry once in-flight work drains"
            )
        return None

    def _enqueue_locked(
        self,
        prepared: PreparedQuery,
        ekey: tuple,
        key: tuple,
        deadline_at: float | None = None,
    ) -> Future:
        """Enqueue an admitted request (caller holds the lock)."""
        request = _Request(
            prepared=prepared,
            ekey=ekey,
            key=key,
            future=Future(),
            submitted_at=time.perf_counter(),
            submitted_wall=time.time(),
            # Root (or, under the server's request span, child) of this
            # request's trace; ended by the worker thread after set_result
            # readiness, or on failure/shutdown.
            span=tracer().span("query", query=_query_label(prepared)),
            deadline_at=deadline_at,
        )
        self._inflight[key] = request
        self._queue.append(request)
        self.metrics.record_submitted()
        self._work_ready.notify()
        return request.future

    def query(
        self, prepared: PreparedQuery, epsilons=None, timeout=None, deadline=None
    ) -> QueryResult:
        """Synchronous submit-and-wait."""
        return self.submit(prepared, epsilons, deadline=deadline).result(timeout)

    # ------------------------------------------------------------------ #
    # Workload capture
    # ------------------------------------------------------------------ #
    def _record_outcome(self, prepared, ekey, outcome: str, reason: str | None = None) -> None:
        """Capture a request that never reached execution (dedup/rejection)."""
        if self.recorder is None:
            return
        self.recorder.record_query(
            query=_query_name(prepared),
            epsilons=ekey,
            outcome=outcome,
            s_name=getattr(prepared, "s_name", "?"),
            t_name=getattr(prepared, "t_name", "?"),
            reason=reason,
        )

    def _capture_template(self, key, prepared, ekey, result: QueryResult) -> dict:
        """Build (and memoize) the static part of a completed-query capture event.

        Memoized per (query, epsilons, result versions): those determine the
        relation row counts, the output size and the content fingerprint, so
        cache-served repeats skip the catalog lookups and the pair-set hash.
        """
        template = {
            "type": "query",
            "query": _query_name(prepared),
            "epsilons": [list(pair) for pair in ekey],
            "outcome": "ok",
            "s": result.s_name,
            "t": result.t_name,
            "s_version": result.s_version,
            "t_version": result.t_version,
            "pairs": result.n_pairs,
            "fingerprint": pair_fingerprint(result.pairs),
        }
        catalog = getattr(prepared, "catalog", None)
        if catalog is not None:
            try:
                template["s_rows"] = catalog.get(result.s_name).rows
                template["t_rows"] = catalog.get(result.t_name).rows
            except Exception:  # noqa: BLE001 - capture must never fail a query
                pass
        with self._capture_lock:
            cache = self._capture_cache
            if len(cache) >= 512:
                # Evict the oldest half (insertion order) in one sweep rather
                # than paying LRU bookkeeping on every hot-path hit.
                for old in list(cache)[:256]:
                    del cache[old]
            cache[key] = template
        return template

    def _record_completed(self, request: _Request, result: QueryResult, done: float) -> None:
        """Capture one completed request with its latencies and fingerprint."""
        recorder = self.recorder
        if recorder is None:
            return
        prepared, ekey = request.prepared, request.ekey
        key = (getattr(prepared, "key", None), ekey, result.s_version, result.t_version)
        template = self._capture_cache.get(key)
        if template is None:
            template = self._capture_template(key, prepared, ekey, result)
        recorder.record_completed(
            template,
            request.submitted_wall,
            request.started_at - request.submitted_at,
            done - request.started_at,
            result.path,
        )

    @property
    def pending(self) -> int:
        """Return the number of requests currently queued or executing."""
        with self._lock:
            return len(self._inflight)

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            with self._work_ready:
                while not self._queue and not self._shutdown:
                    self._work_ready.wait()
                if not self._queue:  # shutdown with a drained queue
                    return
                head = self._queue.popleft()
                batch = [head]
                if self.max_batch > 1 and self._queue:
                    remaining: deque[_Request] = deque()
                    for request in self._queue:
                        if (
                            len(batch) < self.max_batch
                            and request.prepared.key == head.prepared.key
                        ):
                            batch.append(request)
                        else:
                            remaining.append(request)
                    self._queue = remaining
                now = time.perf_counter()
                for request in batch:
                    request.started_at = now
            try:
                self._execute_batch(batch)
            finally:
                with self._work_ready:
                    for request in batch:
                        self._inflight.pop(request.key, None)
                    # Wake a graceful close() waiting for in-flight work to
                    # drain (and idle peers re-checking the shutdown flag).
                    self._work_ready.notify_all()

    def _fail_request(self, request: _Request, exc: Exception, cause: str) -> None:
        """Resolve one request's future with a classified failure."""
        self.metrics.record_failure(cause=cause)
        if self.recorder is not None:
            self.recorder.record_query(
                query=_query_name(request.prepared),
                epsilons=request.ekey,
                outcome="failed",
                s_name=getattr(request.prepared, "s_name", "?"),
                t_name=getattr(request.prepared, "t_name", "?"),
                ts=request.submitted_wall,
                error=str(exc),
            )
        request.span.set(error=str(exc))
        request.span.end()
        request.future.set_exception(exc)

    def _execute_batch(self, batch: list[_Request]) -> None:
        # Deadlines expired while queued fail fast — a worker slot is never
        # spent computing an answer the caller has already given up on.
        live: list[_Request] = []
        for request in batch:
            if (
                request.deadline_at is not None
                and time.monotonic() >= request.deadline_at
            ):
                self._fail_request(
                    request,
                    DeadlineExceededError("deadline expired while queued"),
                    "timeout",
                )
            else:
                live.append(request)
        if not live:
            return
        batch = live
        prepared = batch[0].prepared
        head = batch[0]
        for request in batch:
            if request.span.context is not None:
                tracer().record(
                    "queue",
                    request.span.context,
                    start=request.submitted_wall,
                    duration=max(0.0, request.started_at - request.submitted_at),
                )
        exec_wall = time.time()
        exec_span = (
            tracer().span("execute", parent=head.span.context, batch=len(batch))
            if head.span.context is not None
            else NOOP_SPAN
        )
        # One dispatch serves the whole batch, so it runs under the *most
        # permissive* member deadline (any unbounded member unbinds it);
        # members whose own deadline lapsed meanwhile still fail below.
        deadlines = [request.deadline_at for request in batch]
        batch_deadline = None if any(d is None for d in deadlines) else max(deadlines)
        try:
            with exec_span, deadline_mod.deadline_scope(batch_deadline):
                if len(batch) == 1:
                    results = [prepared.execute(head.ekey)]
                else:
                    results = self._dispatch_batch(prepared, batch)
        except Exception as exc:  # noqa: BLE001 - failures propagate via futures
            cause = _failure_cause(exc)
            logger.warning(
                "query %s failed (%s): %s", _query_label(prepared), cause, exc
            )
            for request in batch:
                self._fail_request(request, exc, cause)
            return
        done = time.perf_counter()
        for request, result in zip(batch, results):
            self.metrics.record(
                result.path,
                queue_seconds=request.started_at - request.submitted_at,
                exec_seconds=done - request.started_at,
            )
            self._record_completed(request, result, done)
            if self.calibration is not None:
                # observe() itself skips cache-served paths and never raises.
                self.calibration.observe(
                    request.prepared, request.ekey, result, done - request.started_at
                )
        if len(batch) > 1:
            self.metrics.record_batched(len(batch) - 1)
        self.metrics.sample_rss()
        # Telemetry is finalised before the futures resolve: a caller ending
        # the enclosing request span right after .result() must find every
        # member's "query" span already ended.
        for request, result in zip(batch, results):
            if request is not head and request.span.context is not None:
                tracer().record(
                    "execute",
                    request.span.context,
                    start=exec_wall,
                    duration=done - request.started_at,
                    batched=True,
                    path=result.path,
                )
            request.span.set(path=result.path)
            request.span.end()
        for request, result in zip(batch, results):
            request.future.set_result(result)

    def _dispatch_batch(
        self, prepared: PreparedQuery, batch: list[_Request]
    ) -> list[QueryResult]:
        """Serve a micro-batch from one wide engine dispatch.

        The snapshot pair is pinned once so every member answers from the
        same catalog state even if appends land mid-batch.
        """
        snapshots = prepared.snapshots()
        widest = epsilon_union([request.ekey for request in batch])
        wide = prepared.execute(widest, snapshots=snapshots)
        s_values = t_values = None
        if wide.pairs.shape[0]:
            s_values = gather_rows(snapshots[0].full, prepared.attributes, wide.pairs[:, 0])
            t_values = gather_rows(snapshots[1].full, prepared.attributes, wide.pairs[:, 1])
        results: list[QueryResult] = []
        for request in batch:
            if request.ekey == widest:
                results.append(wide)
                continue
            pairs = wide.pairs
            if pairs.shape[0]:
                condition = prepared.condition(request.ekey)
                pairs = pairs[condition.matches(s_values, t_values)]
            narrowed = replace(wide, pairs=pairs, path=PATH_MICRO_BATCH)
            prepared.store_result(request.ekey, narrowed)
            results.append(narrowed)
        return results

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True) -> None:
        """Stop accepting work, drain in-flight requests, join the workers.

        Shutdown is graceful: new admissions are blocked immediately, but
        queued and executing requests get up to ``drain_timeout`` seconds to
        finish normally (workers keep serving the queue).  Whatever is still
        queued when the budget runs out fails with
        ``ServiceError("scheduler shut down")``.
        """
        with self._work_ready:
            if self._shutdown:
                return
            self._shutdown = True
            self._work_ready.notify_all()  # idle workers must see the flag
            if wait and self.drain_timeout > 0:
                drain_until = time.monotonic() + self.drain_timeout
                while self._inflight:
                    budget = drain_until - time.monotonic()
                    if budget <= 0:
                        break
                    self._work_ready.wait(budget)
            abandoned = list(self._queue)
            self._queue.clear()
            for request in abandoned:
                self._inflight.pop(request.key, None)
                request.span.set(error="scheduler shut down")
                request.span.end()
                request.future.set_exception(ServiceError("scheduler shut down"))
            self._work_ready.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryScheduler(workers={len(self._threads)}, "
            f"max_pending={self.max_pending}, max_batch={self.max_batch})"
        )
