"""Prepared band-join queries with result caching and delta joins.

A :class:`PreparedQuery` binds a catalog relation pair to a band-condition
*template*: the join attributes are fixed at prepare time, the epsilon
widths are parameters supplied per execution.  Execution resolves through
the engine's :class:`~repro.engine.plan_cache.PlanCache` (so the expensive
RecPart optimization runs once per (base contents, epsilon) combination)
and through a per-query **result cache** of materialized pair sets keyed by
``(s version, t version, epsilons)`` — appending to either relation bumps
its version, which invalidates every affected result automatically.

The interesting path is the **delta join**.  With base results cached and
rows appended since, the full answer decomposes as::

    J(S ∪ ΔS, T ∪ ΔT)  =  J(S, T)  ∪  J(ΔS, T ∪ ΔT)  ∪  J(S, ΔT)

The first term is the cached base result; the other two route only the
appended rows through the *existing* partitioning
(:meth:`~repro.engine.engine.ParallelJoinEngine.execute` with the cached
plan), so an append of ``k`` rows costs O(k · matching output) instead of a
re-optimization plus a full re-join.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro.config import DEFAULT_RESULT_CACHE_SIZE, DEFAULT_WORKERS
from repro.distributed.stats import JobStats, merge_job_stats
from repro.engine.engine import ParallelJoinEngine
from repro.exceptions import ServiceError
from repro.geometry.band import BandCondition
from repro.service.catalog import RelationCatalog, RelationSnapshot

__all__ = [
    "QueryResult",
    "PreparedQuery",
    "PreparedQueryStats",
    "ResultCacheStats",
    "gather_rows",
]

#: Execution paths a query can take, slowest to fastest.
PATH_COLD = "cold"                  # optimize + full join
PATH_PLAN_CACHE = "plan_cache"      # cached plan + full join
PATH_DELTA = "delta"                # cached base result + delta joins
PATH_RESULT_CACHE = "result_cache"  # cached materialized result
PATH_MICRO_BATCH = "micro_batch"    # filtered from a batched wide dispatch
PATH_STALE = "stale"                # version-stale cached result (degraded mode)


@dataclass(frozen=True)
class QueryResult:
    """Materialized outcome of one prepared-query execution.

    ``pairs`` holds globally indexed ``(s_row, t_row)`` output pairs; row
    indices address the *full* relations (base rows first, appended rows
    after, in append order).  Pair order is unspecified — it depends on the
    execution path; canonicalize with
    :func:`~repro.local_join.base.canonical_pair_order` when comparing.
    """

    pairs: np.ndarray
    path: str
    s_name: str
    t_name: str
    s_version: int
    t_version: int
    seconds: float
    optimization_seconds: float = 0.0
    job: JobStats | None = None
    #: Degraded-mode marker: the result answers *older* catalog versions
    #: than current; ``version_lag`` is the summed version distance.
    stale: bool = False
    version_lag: int = 0

    @property
    def n_pairs(self) -> int:
        """Return the number of output pairs."""
        return int(self.pairs.shape[0])

    def describe(self, sample: int = 0) -> dict:
        """Return a JSON-friendly summary (optionally with sample pairs)."""
        info = {
            "pairs": self.n_pairs,
            "path": self.path,
            "s": {"name": self.s_name, "version": self.s_version},
            "t": {"name": self.t_name, "version": self.t_version},
            "seconds": self.seconds,
            "optimization_seconds": self.optimization_seconds,
        }
        if self.stale:
            info["stale"] = True
            info["version_lag"] = self.version_lag
        if sample > 0:
            info["sample"] = self.pairs[:sample].tolist()
        return info


@dataclass
class ResultCacheStats:
    """Accounting of one prepared query's materialized-result caches.

    Covers both LRU maps (full results and base results): ``hits``/``misses``
    count execute-path lookups, ``stores`` inserts, ``evictions`` capacity
    drops, and ``invalidations`` entries dropped by :meth:`PreparedQuery.invalidate`
    (i.e. append-driven flushes).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@dataclass
class PreparedQueryStats:
    """Per-path execution counters of one prepared query."""

    executions: int = 0
    cold: int = 0
    plan_cached: int = 0
    delta: int = 0
    result_cached: int = 0

    def record(self, path: str) -> None:
        """Count one execution of the given path."""
        self.executions += 1
        if path == PATH_COLD:
            self.cold += 1
        elif path == PATH_PLAN_CACHE:
            self.plan_cached += 1
        elif path == PATH_DELTA:
            self.delta += 1
        elif path == PATH_RESULT_CACHE:
            self.result_cached += 1

    def as_dict(self) -> dict:
        return {
            "executions": self.executions,
            "cold": self.cold,
            "plan_cached": self.plan_cached,
            "delta": self.delta,
            "result_cached": self.result_cached,
        }


class PreparedQuery:
    """A parameterized band-join over two catalog relations.

    Parameters
    ----------
    catalog / engine:
        The shared relation catalog and execution engine (the engine's plan
        cache is the one amortizing optimization across queries).
    s_name / t_name:
        Catalog names of the S- and T-side relations.
    attributes:
        Join attributes (the band-condition template's dimensions).
    default_epsilons:
        Optional default band widths used when an execution passes none.
    workers:
        Partition-worker budget of the optimized plans.
    partitioner:
        Optimizer used on plan-cache misses (RecPart by default).
    result_cache_size:
        LRU capacity of the materialized-result cache.
    """

    def __init__(
        self,
        catalog: RelationCatalog,
        engine: ParallelJoinEngine,
        s_name: str,
        t_name: str,
        attributes: Sequence[str],
        default_epsilons=None,
        workers: int = DEFAULT_WORKERS,
        partitioner=None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
    ) -> None:
        if not attributes:
            raise ServiceError("a prepared query needs at least one join attribute")
        if workers < 1:
            raise ServiceError("workers must be at least 1")
        if result_cache_size < 1:
            raise ServiceError("result_cache_size must be at least 1")
        self.catalog = catalog
        self.engine = engine
        self.s_name = s_name
        self.t_name = t_name
        self.attributes = tuple(attributes)
        self.workers = int(workers)
        if partitioner is None:
            from repro.core.recpart import RecPartPartitioner

            partitioner = RecPartPartitioner(weights=engine.weights)
        self.partitioner = partitioner
        self.result_cache_size = result_cache_size
        self.default_epsilons = (
            None if default_epsilons is None else self._normalize(default_epsilons)
        )
        self.stats = PreparedQueryStats()
        self.result_cache_stats = ResultCacheStats()
        #: Stable identity used by the scheduler for single-flight dedup and
        #: micro-batch grouping: equal keys answer from the same caches.
        self.key = (s_name, t_name, self.attributes, self.workers, partitioner.name)
        #: Service-registered query name (set by BandJoinService.prepare);
        #: the workload capture records it as the replayable query identity.
        self.name: str | None = None
        self._lock = threading.Lock()
        self._results: OrderedDict = OrderedDict()       # (sv, tv, ekey) -> QueryResult
        self._base_results: OrderedDict = OrderedDict()  # (sbv, tbv, ekey) -> QueryResult
        self._sampled_estimates: OrderedDict = OrderedDict()  # (sv, tv, ekey, k) -> float
        # Validate the schema eagerly so prepare() fails fast.
        for name in (s_name, t_name):
            snapshot = catalog.get(name)
            missing = [a for a in self.attributes if a not in snapshot.base]
            if missing:
                raise ServiceError(
                    f"relation {name!r} is missing join attributes {missing}"
                )

    # ------------------------------------------------------------------ #
    # Epsilon template binding
    # ------------------------------------------------------------------ #
    def _normalize(self, epsilons) -> tuple[tuple[float, float], ...]:
        """Normalize an epsilon specification to per-attribute (left, right) pairs."""
        d = len(self.attributes)
        if isinstance(epsilons, Mapping):
            missing = [a for a in self.attributes if a not in epsilons]
            if missing:
                raise ServiceError(f"epsilons missing for attributes {missing}")
            values = [epsilons[a] for a in self.attributes]
        elif isinstance(epsilons, (int, float)):
            values = [float(epsilons)] * d
        else:
            values = list(epsilons)
            if len(values) != d:
                raise ServiceError(
                    f"expected {d} epsilon values (one per attribute), got {len(values)}"
                )
        pairs: list[tuple[float, float]] = []
        for value in values:
            if isinstance(value, (tuple, list)):
                if len(value) != 2:
                    raise ServiceError("asymmetric epsilons must be (left, right) pairs")
                pairs.append((float(value[0]), float(value[1])))
            else:
                pairs.append((float(value), float(value)))
        return tuple(pairs)

    def resolve_epsilons(self, epsilons=None) -> tuple[tuple[float, float], ...]:
        """Return the normalized epsilons of one execution (defaults applied)."""
        if epsilons is None:
            if self.default_epsilons is None:
                raise ServiceError(
                    f"prepared query {self.key} has no default epsilons; pass some"
                )
            return self.default_epsilons
        return self._normalize(epsilons)

    def condition(self, epsilons=None) -> BandCondition:
        """Bind the template to a concrete band condition."""
        pairs = self.resolve_epsilons(epsilons)
        return BandCondition(
            {a: (left, right) for a, (left, right) in zip(self.attributes, pairs)}
        )

    def epsilon_key(self, epsilons=None) -> tuple:
        """Return the hashable cache-key form of one epsilon binding."""
        return self.resolve_epsilons(epsilons)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def snapshots(self) -> tuple[RelationSnapshot, RelationSnapshot]:
        """Return a consistent (S, T) snapshot pair for one execution."""
        return self.catalog.get(self.s_name), self.catalog.get(self.t_name)

    def current_versions(self) -> tuple[int, int]:
        """Return the catalog content versions the query would answer over.

        The scheduler folds these into its single-flight key so a request
        submitted *after* an acknowledged append never attaches to an
        in-flight execution over the pre-append data (read-your-writes).
        """
        return self.catalog.get(self.s_name).version, self.catalog.get(self.t_name).version

    def execute(self, epsilons=None, snapshots=None) -> QueryResult:
        """Answer the query, taking the cheapest valid path.

        In order of preference: the materialized-result cache, the delta
        path (cached base result + delta joins of the appended rows), a
        full join under a cached plan, and finally the cold path (optimize,
        then join).  ``snapshots`` pins an explicit snapshot pair — the
        scheduler uses it to serve a whole micro-batch from one consistent
        catalog state.
        """
        start = time.perf_counter()
        s_snap, t_snap = snapshots if snapshots is not None else self.snapshots()
        ekey = self.epsilon_key(epsilons)
        full_key = (s_snap.version, t_snap.version, ekey)
        with self._lock:
            hit = self._results.get(full_key)
            if hit is not None:
                self._results.move_to_end(full_key)
                self.result_cache_stats.hits += 1
            else:
                self.result_cache_stats.misses += 1
        if hit is not None:
            self.stats.record(PATH_RESULT_CACHE)
            return replace(
                hit, path=PATH_RESULT_CACHE, seconds=time.perf_counter() - start
            )

        condition = self.condition(ekey)
        base, base_cached = self._base_result(s_snap, t_snap, condition, ekey)
        if s_snap.delta is None and t_snap.delta is None:
            result = replace(
                base,
                path=PATH_RESULT_CACHE if base_cached else base.path,
                s_version=s_snap.version,
                t_version=t_snap.version,
                seconds=time.perf_counter() - start,
            )
        else:
            jobs = [base.job] if base.job is not None else []
            chunks = [base.pairs]
            opt_seconds = 0.0 if base_cached else base.optimization_seconds
            partitioning = self._plan(s_snap, t_snap, condition)
            if s_snap.delta is not None:
                delta = self.engine.execute(
                    s_snap.delta, t_snap.full, condition, partitioning, materialize=True
                )
                chunks.append(
                    _shift_pairs(delta.pairs, s_shift=len(s_snap.base), t_shift=0)
                )
                jobs.append(delta.job)
            if t_snap.delta is not None:
                delta = self.engine.execute(
                    s_snap.base, t_snap.delta, condition, partitioning, materialize=True
                )
                chunks.append(
                    _shift_pairs(delta.pairs, s_shift=0, t_shift=len(t_snap.base))
                )
                jobs.append(delta.job)
            result = QueryResult(
                pairs=np.concatenate(chunks),
                path=PATH_DELTA if base_cached else base.path,
                s_name=self.s_name,
                t_name=self.t_name,
                s_version=s_snap.version,
                t_version=t_snap.version,
                seconds=time.perf_counter() - start,
                optimization_seconds=opt_seconds,
                job=merge_job_stats(jobs) if jobs else None,
            )
        self.store_result(ekey, result)
        self.stats.record(result.path)
        return result

    def __call__(self, epsilons=None) -> QueryResult:
        return self.execute(epsilons)

    # ------------------------------------------------------------------ #
    # Cheap cardinality paths (admission control, capacity planning)
    # ------------------------------------------------------------------ #
    def estimate_pairs(self, epsilons=None, sample_size: int | None = None) -> float:
        """Cheaply estimate the output cardinality of one epsilon binding.

        A cached materialized result for the current catalog versions is
        answered exactly; otherwise the memoized sampled probe of
        :meth:`sampled_estimate` gives the order of magnitude without
        touching the engine.  The scheduler's admission control prices
        queries with this before enqueueing them.
        """
        s_snap, t_snap = self.snapshots()
        ekey = self.epsilon_key(epsilons)
        with self._lock:
            hit = self._results.get((s_snap.version, t_snap.version, ekey))
        if hit is not None:
            return float(hit.n_pairs)
        return self.sampled_estimate(ekey, sample_size)

    def sampled_estimate(self, epsilons=None, sample_size: int | None = None) -> float:
        """Return the purely sampled output-cardinality estimate.

        Unlike :meth:`estimate_pairs` this never consults the result cache —
        it is what the *planner believed* before execution, which is what
        EXPLAIN ANALYZE and the calibration store must compare actuals
        against (otherwise an analyzed run whose result was just stored would
        report a tautological q-error of 1.0).

        The probe (a band-selectivity estimate over evenly spaced row samples
        — one ``searchsorted`` pair per dimension) is memoized per
        ``(s version, t version, epsilons, sample size)``, so repeated
        admission-control or explain calls against unchanged relations pay
        the sampling cost once.
        """
        from repro.sampling.selectivity import (
            DEFAULT_SELECTIVITY_SAMPLE,
            estimate_join_selectivity,
        )

        s_snap, t_snap = self.snapshots()
        ekey = self.epsilon_key(epsilons)
        k = sample_size if sample_size is not None else DEFAULT_SELECTIVITY_SAMPLE
        memo_key = (s_snap.version, t_snap.version, ekey, k)
        with self._lock:
            cached = self._sampled_estimates.get(memo_key)
            if cached is not None:
                self._sampled_estimates.move_to_end(memo_key)
                return cached
        condition = self.condition(ekey)
        # Gather only the sampled rows — never the full (n, d) join matrices;
        # the probe must stay O(k log k) however large the relations grow.
        s_sample = _sampled_join_matrix(s_snap.full, self.attributes, k)
        t_sample = _sampled_join_matrix(t_snap.full, self.attributes, k)
        selectivity = estimate_join_selectivity(s_sample, t_sample, condition, k)
        estimate = selectivity * len(s_snap.full) * len(t_snap.full)
        # The estimate is a pair count; the divide-then-multiply round trip
        # through the selectivity leaves ulp-level noise on what is an exact
        # integer when the probe sampled the relations in full.  Snap it so
        # the deterministic case reports a q-error of exactly 1.0.
        nearest = round(estimate)
        if math.isclose(estimate, nearest, rel_tol=1e-12, abs_tol=0.0):
            estimate = float(nearest)
        with self._lock:
            self._sampled_estimates[memo_key] = estimate
            self._sampled_estimates.move_to_end(memo_key)
            while len(self._sampled_estimates) > self.result_cache_size:
                self._sampled_estimates.popitem(last=False)
        return estimate

    def explain(self, epsilons=None, analyze: bool = False, execute=None, model=None):
        """Return the :class:`~repro.obs.explain.report.QueryPlanReport`.

        Plain EXPLAIN plans without executing; ``analyze=True`` executes
        (through ``execute`` when given — the service passes a
        scheduler-routed closure so analyzed runs share admission control)
        and grafts measured actuals plus q-errors onto every estimate node.
        ``model`` prices the plan with a calibrated running-time model (in
        seconds) instead of the default load-weight pricing.
        """
        from repro.obs.explain import build_report

        return build_report(self, epsilons, analyze=analyze, execute=execute, model=model)

    def count(self, epsilons=None) -> int:
        """Return the exact output cardinality without materializing pairs.

        Runs the engine's count path (zero-materialization kernels: window
        arithmetic in one dimension, chunk-wise masked counting beyond), so
        the cost is bounded by the input scan plus the kernel budget — never
        by the output size.  A cached materialized result is answered
        directly.
        """
        s_snap, t_snap = self.snapshots()
        ekey = self.epsilon_key(epsilons)
        with self._lock:
            hit = self._results.get((s_snap.version, t_snap.version, ekey))
        if hit is not None:
            return hit.n_pairs
        condition = self.condition(ekey)
        result = self.engine.join(
            s_snap.full,
            t_snap.full,
            condition,
            workers=self.workers,
            partitioner=self.partitioner,
            materialize=False,
        )
        return int(result.total_output)

    def _plan(self, s_snap, t_snap, condition):
        """Resolve the partitioning of the base pair through the plan cache."""
        plan, _ = self.engine.plan_cache.get_or_build(
            self.partitioner, s_snap.base, t_snap.base, condition, self.workers
        )
        return plan

    def ensure_plan(self, epsilons=None) -> bool:
        """Pre-build (or confirm) the plan for one epsilon binding.

        Returns ``True`` when the plan was already cached.  The service
        calls this after compaction so re-partitioning happens in the
        background rather than inside the next query.
        """
        s_snap, t_snap = self.snapshots()
        condition = self.condition(epsilons)
        _, cached = self.engine.plan_cache.get_or_build(
            self.partitioner, s_snap.base, t_snap.base, condition, self.workers
        )
        return cached

    def _base_result(self, s_snap, t_snap, condition, ekey) -> tuple[QueryResult, bool]:
        """Return the materialized base-pair join (cached per base lineage)."""
        base_key = (s_snap.base_version, t_snap.base_version, ekey)
        with self._lock:
            cached = self._base_results.get(base_key)
            if cached is not None:
                self._base_results.move_to_end(base_key)
                self.result_cache_stats.hits += 1
            else:
                self.result_cache_stats.misses += 1
        if cached is not None:
            return cached, True
        engine_result = self.engine.join(
            s_snap.base,
            t_snap.base,
            condition,
            workers=self.workers,
            partitioner=self.partitioner,
            materialize=True,
        )
        result = QueryResult(
            pairs=engine_result.pairs,
            path=PATH_PLAN_CACHE if engine_result.plan_from_cache else PATH_COLD,
            s_name=self.s_name,
            t_name=self.t_name,
            s_version=s_snap.version,
            t_version=t_snap.version,
            seconds=engine_result.wall_seconds,
            optimization_seconds=(
                0.0 if engine_result.plan_from_cache else engine_result.optimization_seconds
            ),
            job=engine_result.job,
        )
        with self._lock:
            self._base_results[base_key] = result
            self.result_cache_stats.stores += 1
            while len(self._base_results) > self.result_cache_size:
                self._base_results.popitem(last=False)
                self.result_cache_stats.evictions += 1
        return result, False

    def stale_result(self, ekey: tuple) -> QueryResult | None:
        """Return the freshest cached result for ``ekey``, whatever its versions.

        The scheduler's degraded mode calls this under overload: serving a
        slightly version-stale answer (explicitly marked ``stale`` with its
        version lag) beats rejecting the request outright.  Returns ``None``
        when no execution of this epsilon binding was ever cached — staleness
        is bounded by what the cache holds, never fabricated.
        """
        try:
            cur_s, cur_t = self.current_versions()
        except ServiceError:
            return None
        with self._lock:
            candidates = [
                result
                for (sv, tv, key), result in self._results.items()
                if key == ekey
            ]
        if not candidates:
            return None
        hit = max(candidates, key=lambda r: (r.s_version + r.t_version))
        lag = max(0, cur_s - hit.s_version) + max(0, cur_t - hit.t_version)
        return replace(
            hit, path=PATH_STALE, stale=True, version_lag=lag, seconds=0.0
        )

    # ------------------------------------------------------------------ #
    # Result-cache management
    # ------------------------------------------------------------------ #
    def store_result(self, ekey: tuple, result: QueryResult) -> None:
        """Insert a materialized result (the scheduler also stores filtered
        micro-batch members here so repeats hit the result cache)."""
        key = (result.s_version, result.t_version, ekey)
        with self._lock:
            self._results[key] = result
            self._results.move_to_end(key)
            self.result_cache_stats.stores += 1
            while len(self._results) > self.result_cache_size:
                self._results.popitem(last=False)
                self.result_cache_stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every cached result (full and base)."""
        with self._lock:
            self.result_cache_stats.invalidations += len(self._results) + len(
                self._base_results
            )
            self._results.clear()
            self._base_results.clear()

    def cached_results(self) -> int:
        """Return the number of materialized results currently cached."""
        with self._lock:
            return len(self._results)

    def describe(self) -> dict:
        """Return a JSON-friendly summary of the prepared query."""
        return {
            "s": self.s_name,
            "t": self.t_name,
            "attributes": list(self.attributes),
            "workers": self.workers,
            "partitioner": self.partitioner.name,
            "default_epsilons": (
                None
                if self.default_epsilons is None
                else [list(pair) for pair in self.default_epsilons]
            ),
            "cached_results": self.cached_results(),
            "stats": self.stats.as_dict(),
            "result_cache": self.result_cache_stats.as_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.s_name!r} ⋈ {self.t_name!r} on "
            f"{list(self.attributes)}, workers={self.workers})"
        )


def gather_rows(relation, attributes, rows) -> np.ndarray:
    """Extract the join-attribute values of selected rows without
    materializing the full ``(n, d)`` join matrix of the relation."""
    store = getattr(relation, "store", None)
    if store is not None:
        # Gather through the column store: an mmap-backed relation reads
        # only the touched pages instead of materializing whole columns.
        idx = np.asarray(rows)
        return np.column_stack(
            [store.take(a, idx).astype(float, copy=False) for a in attributes]
        )
    return np.column_stack(
        [np.asarray(relation.column(a), dtype=float)[rows] for a in attributes]
    )


def _sampled_join_matrix(relation, attributes, sample_size: int) -> np.ndarray:
    """Return a ``(min(n, sample_size), d)`` evenly spaced row sample of the
    relation's join attributes, gathering only the sampled rows."""
    from repro.sampling.selectivity import evenly_spaced_indices

    idx = evenly_spaced_indices(len(relation), sample_size)
    if idx is None:
        return relation.join_matrix(attributes)
    return gather_rows(relation, attributes, idx)


def _shift_pairs(pairs: np.ndarray, s_shift: int, t_shift: int) -> np.ndarray:
    """Lift a delta join's local pair indices into full-relation coordinates.

    Also deduplicates: a partitioning's fallback routing of values it never
    observed at optimization time (e.g. the grid's unseen-cell hashing) may
    place one tuple copy twice in the same unit, which would produce a pair
    twice.
    """
    if pairs.shape[0] == 0:
        return pairs
    shifted = pairs.copy()
    shifted[:, 0] += s_shift
    shifted[:, 1] += t_shift
    return np.unique(shifted, axis=0)


# Re-exported for callers composing their own schedulers.
def epsilon_union(ekeys: "Sequence[tuple]") -> tuple:
    """Return the per-attribute widest epsilon pair across several bindings.

    Used by the scheduler's micro-batching: one dispatch with the union
    band covers every member, whose exact answers are then recovered by
    filtering (a pair satisfies a narrower band iff its values do — checked
    directly, so filtering is exact regardless of the widening).
    """
    if not ekeys:
        raise ServiceError("epsilon_union needs at least one epsilon binding")
    widest = [list(pair) for pair in ekeys[0]]
    for ekey in ekeys[1:]:
        if len(ekey) != len(widest):
            raise ServiceError("epsilon bindings of one batch must align")
        for i, (left, right) in enumerate(ekey):
            widest[i][0] = max(widest[i][0], left)
            widest[i][1] = max(widest[i][1], right)
    return tuple((left, right) for left, right in widest)
