"""The synchronous band-join service facade.

:class:`BandJoinService` wires the serving subsystem together: one
:class:`~repro.service.catalog.RelationCatalog` (data plane), one
:class:`~repro.engine.engine.ParallelJoinEngine` with a shared thread-safe
plan cache (execution plane), a registry of named
:class:`~repro.service.prepared.PreparedQuery` objects, and one
:class:`~repro.service.scheduler.QueryScheduler` (control plane) that all
queries flow through — so even single-caller usage benefits from
single-flight deduplication, and concurrent callers share dispatches.

Appends that push a relation past the staleness threshold trigger
compaction (merging the delta into a new base) plus plan re-optimization
for every prepared query over that relation; with the default
``compaction="background"`` both happen on a maintenance thread while
queries keep answering through the delta path.
"""

from __future__ import annotations

import threading

import numpy as np

import repro.obs as obs
from repro import faults
from repro.config import ServiceConfig
from repro.engine.engine import ParallelJoinEngine
from repro.engine.plan_cache import PlanCache
from repro.exceptions import ServiceError
from repro.obs import MetricsRegistry, bind_plan_cache, bind_prepared_query, get_logger
from repro.obs.explain import CalibrationStore, EstimateAccuracyTracker
from repro.obs.workload import (
    SLO,
    QueryLogRecorder,
    SLOMonitor,
    Workload,
    service_probes,
)
from repro.service.catalog import RelationCatalog, RelationSnapshot, _as_relation
from repro.service.prepared import PreparedQuery, QueryResult
from repro.service.scheduler import QueryScheduler

__all__ = ["BandJoinService"]

logger = get_logger(__name__)


class BandJoinService:
    """A long-running, concurrent band-join serving facade.

    Parameters
    ----------
    config:
        A :class:`~repro.config.ServiceConfig`; defaults apply when omitted.
    partitioner:
        Optimizer shared by prepared queries that do not bring their own
        (RecPart by default, chosen lazily per query).

    Examples
    --------
    >>> service = BandJoinService()
    >>> service.register("S", {"A1": s_values})
    >>> service.register("T", {"A1": t_values})
    >>> service.prepare("close_pairs", "S", "T", attributes=["A1"], epsilons=0.01)
    >>> service.query("close_pairs").n_pairs          # cold: optimize + join
    >>> service.query("close_pairs").path             # 'result_cache'
    >>> service.append("S", {"A1": new_values})
    >>> service.query("close_pairs").path             # 'delta'
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        partitioner=None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        if self.config.telemetry:
            obs.enable()
        #: Deterministic chaos: the configured fault spec installs a
        #: process-wide injector for this service's lifetime (uninstalled by
        #: :meth:`close`); pool workers re-install it from initargs.
        self._fault_injector = None
        if self.config.inject_faults:
            self._fault_injector = faults.install(
                faults.FaultInjector(
                    faults.parse_fault_spec(self.config.inject_faults),
                    seed=self.config.fault_seed,
                )
            )
            logger.info("fault injection active: %r", self._fault_injector)
        if self.config.trace_ring_size is not None:
            obs.tracer().resize(self.config.trace_ring_size)
        #: Workload capture (``None`` when ``config.capture`` is off); the
        #: scheduler records every request outcome here, the service adds
        #: catalog mutations — with column data when spooling, so the
        #: capture is replayable.
        self.recorder = (
            QueryLogRecorder(
                capacity=self.config.capture_ring_size,
                spool_path=self.config.capture_log,
            )
            if self.config.capture
            else None
        )
        #: Per-service metric scope: scheduler counters and cache adapters
        #: land here, so concurrently running services never mix series.
        self.registry = MetricsRegistry()
        backend = "serial" if self.config.backend == "simulated" else self.config.backend
        self.engine = ParallelJoinEngine(
            backend=backend,
            algorithm=self.config.local_algorithm,
            plan_cache=PlanCache(max_entries=self.config.plan_cache_size),
            memory_budget=self.config.kernel_memory_budget,
            spill_dir=self.config.spill_dir,
        )
        bind_plan_cache(self.registry, self.engine.plan_cache)
        self.catalog = RelationCatalog(
            staleness_threshold=self.config.staleness_threshold,
            on_stale=self._on_stale if self.config.compaction != "off" else None,
            storage=self.config.storage,
            spill_dir=self.config.spill_dir,
            spill_threshold_bytes=self.config.spill_threshold_bytes,
        )
        #: Persistent (estimate, actual, features) spool when a calibration
        #: log is configured; in-memory otherwise.  ``calibrate()`` on it
        #: refits the running-time betas from analyzed runs.
        self.calibration_store = CalibrationStore(
            path=self.config.calibration_log,
            max_records=self.config.calibration_max_records,
        )
        #: Live estimate-vs-actual accounting: the scheduler hands it every
        #: executed completion; it feeds the ``repro_estimate_qerror``
        #: histogram, the ``estimate_qerror`` SLO probe and the store.
        self.calibration = EstimateAccuracyTracker(
            registry=self.registry, store=self.calibration_store
        )
        self.scheduler = QueryScheduler(
            max_workers=self.config.scheduler_workers,
            max_pending=self.config.max_pending,
            max_batch=self.config.max_batch,
            max_estimated_pairs=self.config.max_estimated_pairs,
            registry=self.registry,
            recorder=self.recorder,
            calibration=self.calibration,
            default_deadline=self.config.default_deadline_seconds,
            degraded_mode=self.config.degraded_mode,
            drain_timeout=self.config.shutdown_drain_seconds,
        )
        self.partitioner = partitioner
        self._prepared: dict[str, PreparedQuery] = {}
        self._prepared_lock = threading.Lock()
        self._maintenance_lock = threading.Lock()
        self._maintenance: list[threading.Thread] = []
        self._compacting: set[str] = set()
        self._closed = False
        self.monitor = SLOMonitor(
            objectives=self._slo_objectives(),
            probes=service_probes(self),
            interval=self.config.slo_interval,
            registry=self.registry,
            recorder=self.recorder,
        )
        self.monitor.start()

    def _slo_objectives(self) -> list[SLO]:
        """Translate the config's scalar SLO fields into objectives."""
        objectives = []
        if self.config.slo_p99_seconds is not None:
            objectives.append(
                SLO("p99_latency", "p99_latency_seconds", self.config.slo_p99_seconds)
            )
        if self.config.slo_error_rate is not None:
            objectives.append(SLO("error_rate", "error_rate", self.config.slo_error_rate))
        if self.config.slo_cache_hit_floor is not None:
            objectives.append(
                SLO("cache_hit_floor", "cache_hit_rate", self.config.slo_cache_hit_floor)
            )
        if self.config.slo_queue_depth is not None:
            objectives.append(
                SLO("queue_depth", "queue_depth", float(self.config.slo_queue_depth))
            )
        if self.config.slo_max_estimate_qerror is not None:
            objectives.append(
                SLO(
                    "estimate_qerror",
                    "estimate_qerror",
                    self.config.slo_max_estimate_qerror,
                )
            )
        return objectives

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def register(self, name: str, data, replace: bool = False) -> RelationSnapshot:
        """Register a relation (a Relation instance or a column mapping)."""
        self._check_open()
        relation = _as_relation(name, data)
        snapshot = self.catalog.register(name, relation, replace=replace)
        if self.recorder is not None:
            self.recorder.record_register(
                name,
                rows=snapshot.rows,
                version=snapshot.version,
                columns=_spool_columns(relation) if self.recorder.spooling else None,
            )
        return snapshot

    def append(self, name: str, rows) -> RelationSnapshot:
        """Append rows to a registered relation's delta."""
        self._check_open()
        relation = _as_relation(name, rows)
        snapshot = self.catalog.append(name, relation)
        if self.recorder is not None:
            self.recorder.record_append(
                name,
                rows=len(relation),
                version=snapshot.version,
                total_rows=snapshot.rows,
                columns=_spool_columns(relation) if self.recorder.spooling else None,
            )
        return snapshot

    # ------------------------------------------------------------------ #
    # Query plane
    # ------------------------------------------------------------------ #
    def prepare(
        self,
        query_name: str,
        s: str,
        t: str,
        attributes,
        epsilons=None,
        workers: int | None = None,
        partitioner=None,
        replace: bool = False,
    ) -> PreparedQuery:
        """Create and register a prepared query under ``query_name``."""
        self._check_open()
        prepared = PreparedQuery(
            catalog=self.catalog,
            engine=self.engine,
            s_name=s,
            t_name=t,
            attributes=attributes,
            default_epsilons=epsilons,
            workers=workers if workers is not None else self.config.workers,
            partitioner=partitioner if partitioner is not None else self.partitioner,
            result_cache_size=self.config.result_cache_size,
        )
        with self._prepared_lock:
            if query_name in self._prepared and not replace:
                raise ServiceError(
                    f"prepared query {query_name!r} already exists; "
                    "pass replace=True to overwrite"
                )
            self._prepared[query_name] = prepared
        prepared.name = query_name
        bind_prepared_query(self.registry, query_name, prepared)
        if self.recorder is not None:
            self.recorder.record_prepare(
                query_name,
                s_name=s,
                t_name=t,
                attributes=attributes,
                epsilons=prepared.default_epsilons,
                workers=prepared.workers,
            )
        logger.info(
            "prepared %r: %s ⋈ %s on %s", query_name, s, t, list(attributes)
        )
        return prepared

    def prepared(self, query_name: str) -> PreparedQuery:
        """Return the prepared query registered under ``query_name``."""
        with self._prepared_lock:
            try:
                return self._prepared[query_name]
            except KeyError:
                raise ServiceError(
                    f"unknown prepared query {query_name!r}; "
                    f"registered: {sorted(self._prepared)}"
                ) from None

    def prepared_queries(self) -> dict[str, PreparedQuery]:
        """Return a point-in-time copy of the prepared-query registry."""
        with self._prepared_lock:
            return dict(self._prepared)

    def query(
        self, query_name: str, epsilons=None, timeout=None, deadline=None
    ) -> QueryResult:
        """Answer one prepared query synchronously (through the scheduler).

        ``deadline`` (seconds, falling back to the configured
        ``default_deadline_seconds``) bounds the request end to end.
        """
        self._check_open()
        return self.scheduler.query(
            self.prepared(query_name), epsilons, timeout=timeout, deadline=deadline
        )

    def submit(self, query_name: str, epsilons=None, deadline=None):
        """Enqueue one prepared query; returns a future (asynchronous callers)."""
        self._check_open()
        return self.scheduler.submit(self.prepared(query_name), epsilons, deadline=deadline)

    def explain(self, query_name: str, epsilons=None, analyze: bool = False):
        """EXPLAIN (ANALYZE) one prepared query.

        Returns the :class:`~repro.obs.explain.report.QueryPlanReport`:
        the chosen partitioning with per-worker cost-model estimates, the
        plan-cache provenance and the kernel selector's decision.  With
        ``analyze=True`` the query executes *through the scheduler* (so
        analyzed runs share single-flight, admission control and the
        calibration accounting) and every estimate node carries the measured
        actual plus its q-error.

        Once the calibration store holds enough analyzed runs, the plan is
        priced with the refit running-time model (in seconds); before that
        the cost-model node reports abstract load units.
        """
        self._check_open()
        prepared = self.prepared(query_name)
        try:
            model = self.calibration_store.calibrate().model
        except Exception:  # noqa: BLE001 - pricing falls back to load units
            model = None
        return prepared.explain(
            epsilons,
            analyze=analyze,
            execute=lambda ekey: self.scheduler.query(prepared, ekey),
            model=model,
        )

    def calibrate(self, min_records: int | None = None):
        """Refit the cost-model betas from the calibration store's records.

        Returns the :class:`~repro.obs.explain.store.CalibrationReport`;
        raises :class:`~repro.exceptions.CostModelError` until enough
        executed runs have been recorded.
        """
        if min_records is not None:
            return self.calibration_store.calibrate(min_records=min_records)
        return self.calibration_store.calibrate()

    # ------------------------------------------------------------------ #
    # Staleness maintenance
    # ------------------------------------------------------------------ #
    def _on_stale(self, name: str) -> None:
        if self.config.compaction == "sync":
            self._compact_and_replan(name)
            return
        # One compaction per relation at a time: appends keep reporting the
        # relation stale until the merge lands, and each re-optimization is
        # expensive — a burst of appends must not fan out into a thread storm.
        with self._maintenance_lock:
            if self._closed or name in self._compacting:
                return
            self._compacting.add(name)
            self._maintenance = [t for t in self._maintenance if t.is_alive()]
            thread = threading.Thread(
                target=self._background_compact,
                args=(name,),
                name=f"bandjoin-compact-{name}",
                daemon=True,
            )
            self._maintenance.append(thread)
        thread.start()

    def _background_compact(self, name: str) -> None:
        try:
            self._compact_and_replan(name)
        finally:
            with self._maintenance_lock:
                self._compacting.discard(name)
        # Appends that landed while we were compacting were skipped by the
        # in-progress guard; pick them up if they crossed the threshold again.
        if not self._closed and name in self.catalog.stale_names():
            self._on_stale(name)

    def _compact_and_replan(self, name: str) -> None:
        """Merge a stale relation's delta and re-optimize affected plans."""
        logger.info("compacting relation %r", name)
        self.catalog.compact(name)
        with self._prepared_lock:
            affected = [
                prepared
                for prepared in self._prepared.values()
                if name in (prepared.s_name, prepared.t_name)
                and prepared.default_epsilons is not None
            ]
        for prepared in affected:
            prepared.ensure_plan()

    def drain_maintenance(self) -> None:
        """Block until every background compaction has finished (tests/benchmarks)."""
        while True:
            with self._maintenance_lock:
                if not self._maintenance:
                    return
                thread = self._maintenance.pop()
            thread.join()

    # ------------------------------------------------------------------ #
    # Introspection and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Return a JSON-friendly snapshot of every layer of the service."""
        with self._prepared_lock:
            prepared = {name: p.describe() for name, p in self._prepared.items()}
        return {
            "catalog": self.catalog.describe(),
            "prepared": prepared,
            "scheduler": self.scheduler.metrics.snapshot(),
            "plan_cache": {
                "entries": len(self.engine.plan_cache),
                **self.engine.plan_cache.stats.as_dict(),
            },
            "backend": self.engine.backend.name,
            "telemetry": obs.is_enabled(),
            "capture": self.recorder.describe() if self.recorder is not None else None,
            "calibration": self.calibration.describe(),
        }

    def health(self) -> dict:
        """Evaluate every configured SLO now and return the health report.

        Beyond the SLO verdicts, the report carries the classified failure
        counters (``repro_query_failures_total`` by cause), the degraded
        (stale-served) response count, and — when chaos is configured — the
        fault injector's firing statistics.
        """
        report = self.monitor.health()
        report["failures"] = self.scheduler.metrics.failures
        report["degraded_responses"] = self.scheduler.metrics.degraded
        if self._fault_injector is not None:
            report["fault_injection"] = self._fault_injector.stats()
        return report

    def workload_snapshot(self) -> Workload:
        """Summarize the captured traffic currently in the recorder ring."""
        if self.recorder is None:
            raise ServiceError(
                "workload capture is disabled (ServiceConfig.capture=False)"
            )
        return Workload.from_recorder(self.recorder)

    def metrics_snapshot(self) -> dict:
        """Return the full metric dump: this service's registry plus the
        process-wide one (kernel counters)."""
        return {
            "service": self.registry.snapshot(),
            "process": obs.registry().snapshot(),
        }

    def prometheus(self) -> str:
        """Return the Prometheus text exposition of every metric scope."""
        return self.registry.render_prometheus() + obs.registry().render_prometheus()

    def traces(self, n: int | None = None) -> list[dict]:
        """Return recent finished query traces (span trees, newest first)."""
        return obs.tracer().recent(n)

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    def close(self) -> None:
        """Shut the scheduler down and finish pending maintenance."""
        with self._maintenance_lock:
            if self._closed:
                return
            self._closed = True
        self.monitor.stop()
        self.scheduler.close()
        self.drain_maintenance()
        self.catalog.cleanup()
        if self.recorder is not None:
            self.recorder.close()
        if self._fault_injector is not None and faults.active() is self._fault_injector:
            faults.uninstall()

    def __enter__(self) -> "BandJoinService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"BandJoinService(backend={self.engine.backend.name!r}, "
            f"relations={self.catalog.names()}, "
            f"prepared={sorted(self._prepared)})"
        )


def _spool_columns(relation) -> dict:
    """Serialize a relation's columns for the replayable JSONL spool."""
    return {
        name: np.asarray(relation.column(name)).tolist()
        for name in relation.column_names
    }
