"""Line-oriented request/response front end for :class:`BandJoinService`.

One JSON object per line in, one JSON object per line out — a protocol thin
enough to drive from a shell pipe, ``nc``, or any language with a socket and
a JSON parser.  Two transports share the same handler:

* **stdio** (``repro-bandjoin serve``) — read requests from stdin, write
  responses to stdout; ends on EOF or ``{"op": "quit"}``.
* **TCP** (``repro-bandjoin serve --port 7077``) — a threading socket
  server; every client connection speaks the same line protocol, and all
  clients share one service (so they share caches and the scheduler).

Operations::

    {"op": "register", "name": "S", "columns": {"A1": [...]}}
    {"op": "append",   "name": "S", "columns": {"A1": [...]}}
    {"op": "prepare",  "query": "q", "s": "S", "t": "T",
     "attributes": ["A1"], "epsilons": [0.01]}
    {"op": "query",    "query": "q", "epsilons": [0.02], "sample": 5}
    {"op": "catalog"} | {"op": "stats"} | {"op": "ping"} | {"op": "quit"}
    {"op": "metrics"}           — Prometheus text exposition (one string)
    {"op": "trace", "n": 3}     — recent query traces as JSON span trees
    {"op": "health"}            — SLO evaluation (healthy flag + breaches)
    {"op": "workload"}          — Workload snapshot of the captured traffic
    {"op": "explain", "query": "q", "epsilons": [0.02], "analyze": true}
                                — EXPLAIN (ANALYZE) plan report as JSON
    {"op": "calibrate"}         — refit the cost-model betas from the store

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``;
the connection survives malformed requests.  Query requests are traced end
to end: the server opens a ``request`` root span (with a ``parse`` child
covering JSON decoding), so ``{"op": "trace"}`` returns the full
parse → queue → execute → plan/route/kernel/merge tree of recent queries.
"""

from __future__ import annotations

import json
import time

import socketserver

from repro.exceptions import ReproError, ServiceError
from repro.obs import tracer
from repro.service.service import BandJoinService

__all__ = ["handle_request", "serve_lines", "LineProtocolServer"]


def _require(request: dict, field: str):
    try:
        return request[field]
    except KeyError:
        raise ServiceError(f"request is missing the {field!r} field") from None


def handle_request(service: BandJoinService, request: dict) -> dict:
    """Execute one decoded request against the service and return the response."""
    op = _require(request, "op")
    if op == "ping":
        return {"ok": True, "op": "pong"}
    if op == "register":
        snapshot = service.register(
            _require(request, "name"),
            _require(request, "columns"),
            replace=bool(request.get("replace", False)),
        )
        return {"ok": True, "relation": snapshot.describe()}
    if op == "append":
        snapshot = service.append(_require(request, "name"), _require(request, "columns"))
        return {"ok": True, "relation": snapshot.describe()}
    if op == "prepare":
        prepared = service.prepare(
            _require(request, "query"),
            _require(request, "s"),
            _require(request, "t"),
            attributes=_require(request, "attributes"),
            epsilons=request.get("epsilons"),
            workers=request.get("workers"),
            replace=bool(request.get("replace", False)),
        )
        return {"ok": True, "prepared": prepared.describe()}
    if op == "query":
        # Epsilon lists (including [left, right] pairs) pass through as-is;
        # PreparedQuery normalization accepts sequences directly.
        deadline = request.get("deadline")
        result = service.query(
            _require(request, "query"),
            request.get("epsilons"),
            deadline=float(deadline) if deadline is not None else None,
        )
        return {"ok": True, **result.describe(sample=int(request.get("sample", 0)))}
    if op == "catalog":
        return {"ok": True, "catalog": service.catalog.describe()}
    if op == "stats":
        return {"ok": True, "stats": service.stats()}
    if op == "metrics":
        return {"ok": True, "metrics": service.prometheus()}
    if op == "trace":
        n = request.get("n")
        return {"ok": True, "traces": service.traces(int(n) if n is not None else None)}
    if op == "health":
        return {"ok": True, "health": service.health()}
    if op == "workload":
        return {"ok": True, "workload": service.workload_snapshot().to_dict()}
    if op == "explain":
        report = service.explain(
            _require(request, "query"),
            request.get("epsilons"),
            analyze=bool(request.get("analyze", False)),
        )
        return {"ok": True, "explain": report.to_dict()}
    if op == "calibrate":
        min_records = request.get("min_records")
        report = service.calibrate(
            int(min_records) if min_records is not None else None
        )
        return {"ok": True, "calibration": report.to_dict()}
    raise ServiceError(f"unknown operation {op!r}")


def _handle_line(service: BandJoinService, line: str) -> tuple[dict | None, bool]:
    """Return ``(response, keep_going)`` for one protocol line."""
    line = line.strip()
    if not line:
        return None, True
    parse_wall = time.time()
    parse_start = time.perf_counter()
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": f"invalid JSON: {exc}"}, True
    parse_seconds = time.perf_counter() - parse_start
    if not isinstance(request, dict):
        return {"ok": False, "error": "request must be a JSON object"}, True
    if request.get("op") == "quit":
        return {"ok": True, "op": "quit"}, False
    # Only queries get a request-level root span: tracing every ping or
    # stats scrape would wash the useful traces out of the bounded ring.
    span = (
        tracer().span("request", op="query", query=request.get("query"))
        if request.get("op") == "query"
        else None
    )
    try:
        if span is not None:
            with span:
                tracer().record(
                    "parse", span.context, start=parse_wall, duration=parse_seconds
                )
                return handle_request(service, request), True
        return handle_request(service, request), True
    except ReproError as exc:
        return {"ok": False, "error": str(exc)}, True


def serve_lines(service: BandJoinService, lines, out) -> int:
    """Serve the line protocol over any line iterable / writable pair.

    Returns the number of requests answered.  Used both by the stdio mode
    of ``repro-bandjoin serve`` and by the tests (with StringIO streams).
    """
    answered = 0
    for line in lines:
        response, keep_going = _handle_line(service, line)
        if response is not None:
            out.write(json.dumps(response) + "\n")
            out.flush()
            answered += 1
        if not keep_going:
            break
    return answered


class LineProtocolServer(socketserver.ThreadingTCPServer):
    """TCP transport of the line protocol; all clients share one service."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: BandJoinService) -> None:
        self.service = service
        super().__init__(address, _LineProtocolHandler)


class _LineProtocolHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service = self.server.service
        for raw in self.rfile:
            response, keep_going = _handle_line(service, raw.decode("utf-8", "replace"))
            if response is not None:
                self.wfile.write((json.dumps(response) + "\n").encode())
            if not keep_going:
                break
