"""Online band-join serving layer.

Turns the one-shot optimize-then-execute pipeline into a long-running
service for slowly changing data, built on the engine subsystem's plan
cache and backends:

* :mod:`repro.service.catalog` — named, versioned relations with
  incremental **delta appends**: appended rows accumulate next to the
  optimized base until a staleness threshold triggers re-partitioning.
* :mod:`repro.service.prepared` — **prepared queries** binding a relation
  pair to a band-condition template with parameterizable epsilons,
  materialized-result caching, and the delta-join fast path (appended rows
  routed through the *existing* partitioning).
* :mod:`repro.service.scheduler` — a concurrent **query scheduler** with
  single-flight deduplication, epsilon-union micro-batching and
  admission control, reporting per-path latency percentiles.
* :mod:`repro.service.service` — the synchronous :class:`BandJoinService`
  facade tying the pieces together.
* :mod:`repro.service.server` — the JSON-lines protocol behind
  ``repro-bandjoin serve`` (stdio or TCP).

Quickstart
----------
>>> from repro.service import BandJoinService
>>> service = BandJoinService()
>>> service.register("S", {"A1": s_values})
>>> service.register("T", {"A1": t_values})
>>> service.prepare("near", "S", "T", attributes=["A1"], epsilons=0.01)
>>> service.query("near").path      # 'cold' — optimizes, joins, caches
>>> service.query("near").path      # 'result_cache'
>>> service.append("T", {"A1": more_values})
>>> service.query("near").path      # 'delta' — joins only the new rows
"""

from repro.service.catalog import RelationCatalog, RelationSnapshot
from repro.service.prepared import (
    PATH_COLD,
    PATH_DELTA,
    PATH_MICRO_BATCH,
    PATH_PLAN_CACHE,
    PATH_RESULT_CACHE,
    PreparedQuery,
    PreparedQueryStats,
    QueryResult,
    epsilon_union,
)
from repro.service.scheduler import QueryScheduler, SchedulerMetrics
from repro.service.server import LineProtocolServer, handle_request, serve_lines
from repro.service.service import BandJoinService

__all__ = [
    "BandJoinService",
    "RelationCatalog",
    "RelationSnapshot",
    "PreparedQuery",
    "PreparedQueryStats",
    "QueryResult",
    "QueryScheduler",
    "SchedulerMetrics",
    "LineProtocolServer",
    "handle_request",
    "serve_lines",
    "epsilon_union",
    "PATH_COLD",
    "PATH_PLAN_CACHE",
    "PATH_DELTA",
    "PATH_RESULT_CACHE",
    "PATH_MICRO_BATCH",
]
