"""Axis-aligned hyper-rectangular regions of the join-attribute space.

RecPart partitions the d-dimensional join-attribute space
``A_1 x A_2 x ... x A_d`` (paper Section 4).  Every split-tree leaf
corresponds to one :class:`Region`: a conjunction of half-open per-dimension
intervals ``[lower_i, upper_i)``.  The root region uses infinite bounds so
that it covers the whole space.

Half-open intervals guarantee that a recursive split of a region into
``A_i < x`` / ``A_i >= x`` children is an exact partition of the parent: no
point belongs to both children and no point is lost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PartitioningError


@dataclass(frozen=True)
class Region:
    """An axis-aligned box ``[lower_i, upper_i)`` in each dimension ``i``.

    Attributes
    ----------
    lower:
        Tuple of lower bounds (inclusive); ``-inf`` for unbounded.
    upper:
        Tuple of upper bounds (exclusive); ``+inf`` for unbounded.
    """

    lower: tuple[float, ...]
    upper: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lower) != len(self.upper):
            raise PartitioningError("lower and upper bounds must have the same dimensionality")
        if len(self.lower) == 0:
            raise PartitioningError("a region needs at least one dimension")
        for lo, hi in zip(self.lower, self.upper):
            if not lo < hi:
                raise PartitioningError(f"empty or inverted interval [{lo}, {hi})")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def full_space(cls, dimensionality: int) -> "Region":
        """Return the region covering the whole ``dimensionality``-dimensional space."""
        if dimensionality < 1:
            raise PartitioningError("dimensionality must be at least 1")
        return cls(tuple([-np.inf] * dimensionality), tuple([np.inf] * dimensionality))

    @classmethod
    def from_bounds(cls, lower, upper) -> "Region":
        """Build a region from any pair of sequences of bounds."""
        return cls(tuple(float(x) for x in lower), tuple(float(x) for x in upper))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def dimensionality(self) -> int:
        """Return the number of dimensions of the region."""
        return len(self.lower)

    @property
    def lower_array(self) -> np.ndarray:
        """Return the lower bounds as a float array."""
        return np.asarray(self.lower, dtype=float)

    @property
    def upper_array(self) -> np.ndarray:
        """Return the upper bounds as a float array."""
        return np.asarray(self.upper, dtype=float)

    def extent(self, dim: int) -> float:
        """Return the side length in dimension ``dim`` (``inf`` when unbounded)."""
        return self.upper[dim] - self.lower[dim]

    def extents(self) -> np.ndarray:
        """Return all side lengths as an array."""
        return self.upper_array - self.lower_array

    def is_bounded(self) -> bool:
        """Return ``True`` when every side length is finite."""
        return bool(np.all(np.isfinite(self.extents())))

    def volume(self) -> float:
        """Return the volume of the region (``inf`` when unbounded)."""
        return float(np.prod(self.extents()))

    def is_small(self, epsilons: np.ndarray, factor: float = 2.0) -> bool:
        """Return ``True`` when the region is "small" in every dimension.

        The paper (Section 4.2) defines a partition as small as soon as its
        size is below ``factor`` (default twice) times the band width in
        *all* dimensions.  Dimensions with zero band width can never make a
        region small (an equi-join dimension can always be split further), so
        they are required to have zero extent too, which only happens for
        degenerate single-value regions.
        """
        epsilons = np.asarray(epsilons, dtype=float)
        if epsilons.shape != (self.dimensionality,):
            raise PartitioningError("epsilons must have one entry per dimension")
        ext = self.extents()
        thresholds = factor * epsilons
        return bool(np.all(ext <= thresholds))

    def is_small_in_dimension(self, dim: int, epsilon: float, factor: float = 2.0) -> bool:
        """Return ``True`` when the region cannot be usefully split in ``dim``."""
        return self.extent(dim) <= factor * epsilon

    # ------------------------------------------------------------------ #
    # Point / box predicates (vectorised)
    # ------------------------------------------------------------------ #
    def contains(self, points: np.ndarray) -> np.ndarray:
        """Return a boolean mask of which ``(n, d)`` points fall inside the region."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[1] != self.dimensionality:
            raise PartitioningError(
                f"points have {pts.shape[1]} dimensions, region has {self.dimensionality}"
            )
        return np.all((pts >= self.lower_array) & (pts < self.upper_array), axis=1)

    def intersects_boxes(self, box_lower: np.ndarray, box_upper: np.ndarray) -> np.ndarray:
        """Return which of the closed boxes ``[box_lower_i, box_upper_i]`` intersect the region.

        Used for the epsilon-range routing of duplicated tuples: a T-tuple is
        copied to every leaf whose region intersects its (closed) epsilon
        range.  The region itself is half-open, so intersection requires
        ``box_lower < region.upper`` and ``box_upper >= region.lower``.
        """
        lo = np.atleast_2d(np.asarray(box_lower, dtype=float))
        hi = np.atleast_2d(np.asarray(box_upper, dtype=float))
        return np.all((lo < self.upper_array) & (hi >= self.lower_array), axis=1)

    def contains_region(self, other: "Region") -> bool:
        """Return ``True`` when ``other`` lies entirely inside this region."""
        return bool(
            np.all(other.lower_array >= self.lower_array)
            and np.all(other.upper_array <= self.upper_array)
        )

    def intersects_region(self, other: "Region") -> bool:
        """Return ``True`` when the two half-open regions share any volume."""
        return bool(
            np.all(self.lower_array < other.upper_array)
            and np.all(other.lower_array < self.upper_array)
        )

    # ------------------------------------------------------------------ #
    # Splitting
    # ------------------------------------------------------------------ #
    def split(self, dim: int, value: float) -> tuple["Region", "Region"]:
        """Split the region on ``A_dim < value`` into (left, right) children.

        The left child is the half satisfying the predicate (matching the
        paper's convention in Figure 7).  Raises :class:`PartitioningError`
        when the split value does not lie strictly inside the region.
        """
        if not 0 <= dim < self.dimensionality:
            raise PartitioningError(f"split dimension {dim} out of range")
        if not self.lower[dim] < value < self.upper[dim]:
            raise PartitioningError(
                f"split value {value} outside region interval "
                f"[{self.lower[dim]}, {self.upper[dim]}) in dimension {dim}"
            )
        left_upper = list(self.upper)
        left_upper[dim] = value
        right_lower = list(self.lower)
        right_lower[dim] = value
        left = Region(self.lower, tuple(left_upper))
        right = Region(tuple(right_lower), self.upper)
        return left, right

    def clip_to(self, lower: np.ndarray, upper: np.ndarray) -> "Region":
        """Return this region clipped to finite data bounds (for reporting/plotting)."""
        lo = np.maximum(self.lower_array, np.asarray(lower, dtype=float))
        hi = np.minimum(self.upper_array, np.asarray(upper, dtype=float))
        hi = np.maximum(hi, np.nextafter(lo, np.inf))
        return Region.from_bounds(lo, hi)

    def __repr__(self) -> str:
        intervals = ", ".join(
            f"[{lo:g}, {hi:g})" for lo, hi in zip(self.lower, self.upper)
        )
        return f"Region({intervals})"
