"""Band-join conditions.

A band-join condition (paper Section 2) is a conjunction of per-attribute
band predicates ``|s.A_i - t.A_i| <= eps_i``.  The library also supports the
paper's asymmetric generalisation ``-eps_left_i <= t.A_i - s.A_i <= eps_right_i``.

The class :class:`BandCondition` is the single place in the library that
knows how to

* test whether a pair of tuples joins (vectorised over numpy arrays),
* compute the epsilon-range hyper-rectangle around a tuple, and
* describe which attributes participate in the join (the join *dimensions*).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import BandConditionError


@dataclass(frozen=True)
class BandPredicate:
    """A single-attribute band predicate ``-eps_left <= t.A - s.A <= eps_right``.

    The symmetric case has ``eps_left == eps_right == eps``; an equality
    predicate is the degenerate case ``eps_left == eps_right == 0``.
    """

    attribute: str
    eps_left: float
    eps_right: float

    def __post_init__(self) -> None:
        if self.eps_left < 0 or self.eps_right < 0:
            raise BandConditionError(
                f"band widths must be non-negative, got ({self.eps_left}, {self.eps_right}) "
                f"for attribute {self.attribute!r}"
            )
        if not np.isfinite(self.eps_left) or not np.isfinite(self.eps_right):
            raise BandConditionError("band widths must be finite")

    @property
    def is_symmetric(self) -> bool:
        """Return ``True`` when the left and right widths coincide."""
        return self.eps_left == self.eps_right

    @property
    def is_equality(self) -> bool:
        """Return ``True`` when the predicate degenerates to an equi-join predicate."""
        return self.eps_left == 0 and self.eps_right == 0

    @property
    def width(self) -> float:
        """Return the total width ``eps_left + eps_right`` of the band."""
        return self.eps_left + self.eps_right

    def matches(self, s_values: np.ndarray, t_values: np.ndarray) -> np.ndarray:
        """Vectorised predicate test: element-wise ``-eps_left <= t - s <= eps_right``.

        Evaluated in the paper's inclusive interval form
        ``s in [t - eps_right, t + eps_left]`` so that membership agrees
        bit-for-bit with the hyper-rectangles of
        :meth:`BandCondition.epsilon_range` (the algebraically equivalent
        ``t - s`` formulation rounds differently for values of very
        different magnitude, letting the two checks disagree on pairs that
        lie exactly on a band boundary).
        """
        s_arr = np.asarray(s_values, dtype=float)
        t_arr = np.asarray(t_values, dtype=float)
        return (s_arr >= t_arr - self.eps_right) & (s_arr <= t_arr + self.eps_left)


class BandCondition:
    """A conjunction of band predicates over the join attributes.

    Parameters
    ----------
    widths:
        Either a mapping ``{attribute: eps}`` / ``{attribute: (eps_left, eps_right)}``
        or a sequence of :class:`BandPredicate`.

    Examples
    --------
    >>> cond = BandCondition({"longitude": 0.5, "latitude": 0.5, "time": 10.0})
    >>> cond.dimensionality
    3
    >>> cond.attributes
    ('longitude', 'latitude', 'time')
    """

    def __init__(self, widths) -> None:
        predicates: list[BandPredicate] = []
        if isinstance(widths, dict):
            for attribute, eps in widths.items():
                if isinstance(eps, (tuple, list)):
                    if len(eps) != 2:
                        raise BandConditionError(
                            f"asymmetric band width for {attribute!r} must be a pair"
                        )
                    left, right = float(eps[0]), float(eps[1])
                else:
                    left = right = float(eps)
                predicates.append(BandPredicate(attribute, left, right))
        else:
            for pred in widths:
                if not isinstance(pred, BandPredicate):
                    raise BandConditionError(
                        "BandCondition expects a mapping or BandPredicate instances"
                    )
                predicates.append(pred)
        if not predicates:
            raise BandConditionError("a band condition needs at least one predicate")
        seen: set[str] = set()
        for pred in predicates:
            if pred.attribute in seen:
                raise BandConditionError(f"duplicate predicate on attribute {pred.attribute!r}")
            seen.add(pred.attribute)
        self._predicates: tuple[BandPredicate, ...] = tuple(predicates)
        self._eps_arrays: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def symmetric(cls, attributes: Sequence[str], widths: Sequence[float] | float) -> "BandCondition":
        """Build a symmetric condition from parallel attribute and width sequences.

        ``widths`` may be a single float, in which case the same band width is
        used in every dimension.
        """
        attributes = list(attributes)
        if isinstance(widths, (int, float)):
            widths = [float(widths)] * len(attributes)
        widths = [float(x) for x in widths]
        if len(widths) != len(attributes):
            raise BandConditionError("attributes and widths must have the same length")
        return cls({a: w for a, w in zip(attributes, widths)})

    @classmethod
    def equi_join(cls, attributes: Sequence[str]) -> "BandCondition":
        """Build the equi-join special case (all band widths zero)."""
        return cls.symmetric(attributes, 0.0)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def predicates(self) -> tuple[BandPredicate, ...]:
        """Return the per-attribute predicates in declaration order."""
        return self._predicates

    @property
    def attributes(self) -> tuple[str, ...]:
        """Return the join attributes in declaration order."""
        return tuple(p.attribute for p in self._predicates)

    @property
    def dimensionality(self) -> int:
        """Return the number of join attributes ``d``."""
        return len(self._predicates)

    @property
    def epsilons(self) -> np.ndarray:
        """Return symmetric band widths as an array (max of left/right per dimension)."""
        return np.array([max(p.eps_left, p.eps_right) for p in self._predicates], dtype=float)

    def eps_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the per-dimension ``(eps_left, eps_right)`` width vectors.

        The arrays are built once per condition and cached (they are the
        innermost constants of every local-join kernel, which would otherwise
        rebuild Python predicate lists on each ``join()``/``count()`` call).
        They are marked read-only because they are shared across callers.
        """
        if self._eps_arrays is None:
            left = np.array([p.eps_left for p in self._predicates], dtype=float)
            right = np.array([p.eps_right for p in self._predicates], dtype=float)
            left.flags.writeable = False
            right.flags.writeable = False
            self._eps_arrays = (left, right)
        return self._eps_arrays

    @property
    def is_symmetric(self) -> bool:
        """Return ``True`` when every predicate is symmetric."""
        return all(p.is_symmetric for p in self._predicates)

    @property
    def is_equi_join(self) -> bool:
        """Return ``True`` when every band width is zero."""
        return all(p.is_equality for p in self._predicates)

    def predicate_for(self, attribute: str) -> BandPredicate:
        """Return the predicate on ``attribute`` or raise :class:`BandConditionError`."""
        for pred in self._predicates:
            if pred.attribute == attribute:
                return pred
        raise BandConditionError(f"no band predicate on attribute {attribute!r}")

    def validate_against(self, columns: Iterable[str]) -> None:
        """Raise :class:`BandConditionError` if a join attribute is missing from ``columns``."""
        available = set(columns)
        missing = [a for a in self.attributes if a not in available]
        if missing:
            raise BandConditionError(f"join attributes missing from relation: {missing}")

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def matches(self, s_values: np.ndarray, t_values: np.ndarray) -> np.ndarray:
        """Element-wise test of the full condition.

        ``s_values`` and ``t_values`` are arrays of shape ``(n, d)`` (or
        broadcastable shapes) holding the join-attribute values of S- and
        T-tuples paired row by row, in :attr:`attributes` order.
        """
        s_arr = np.atleast_2d(np.asarray(s_values, dtype=float))
        t_arr = np.atleast_2d(np.asarray(t_values, dtype=float))
        if s_arr.shape[-1] != self.dimensionality or t_arr.shape[-1] != self.dimensionality:
            raise BandConditionError(
                f"expected {self.dimensionality} join-attribute columns, "
                f"got shapes {s_arr.shape} and {t_arr.shape}"
            )
        result = np.ones(np.broadcast_shapes(s_arr.shape[:-1], t_arr.shape[:-1]), dtype=bool)
        for i, pred in enumerate(self._predicates):
            result &= pred.matches(s_arr[..., i], t_arr[..., i])
        return result

    def matches_pair(self, s_values: Sequence[float], t_values: Sequence[float]) -> bool:
        """Scalar version of :meth:`matches` for a single (s, t) pair."""
        return bool(self.matches(np.asarray(s_values)[None, :], np.asarray(t_values)[None, :])[0])

    def epsilon_range(self, values: np.ndarray, around: str = "t") -> tuple[np.ndarray, np.ndarray]:
        """Return the epsilon-range hyper-rectangles around tuples.

        For a T-tuple ``t``, an S-tuple matches iff it falls into
        ``[t.A_i - eps_right_i, t.A_i + eps_left_i]`` in every dimension
        (``around="t"``); for an S-tuple the interval is
        ``[s.A_i - eps_left_i, s.A_i + eps_right_i]`` (``around="s"``).
        For symmetric conditions both coincide with the paper's
        ``[a.A_i - eps_i, a.A_i + eps_i]``.

        Parameters
        ----------
        values:
            Array of shape ``(n, d)`` of join-attribute values.
        around:
            ``"s"`` or ``"t"`` — which relation the tuples belong to.

        Returns
        -------
        (lower, upper):
            Two arrays of shape ``(n, d)`` with the per-dimension interval bounds.
        """
        arr = np.atleast_2d(np.asarray(values, dtype=float))
        if arr.shape[-1] != self.dimensionality:
            raise BandConditionError(
                f"expected {self.dimensionality} join-attribute columns, got shape {arr.shape}"
            )
        left, right = self.eps_arrays()
        if around == "t":
            lower = arr - right
            upper = arr + left
        elif around == "s":
            lower = arr - left
            upper = arr + right
        else:
            raise BandConditionError("around must be 's' or 't'")
        return lower, upper

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BandCondition):
            return NotImplemented
        return self._predicates == other._predicates

    def __hash__(self) -> int:
        return hash(self._predicates)

    def __repr__(self) -> str:
        parts = []
        for pred in self._predicates:
            if pred.is_symmetric:
                parts.append(f"|{pred.attribute}| <= {pred.eps_left:g}")
            else:
                parts.append(f"{pred.attribute} in [-{pred.eps_left:g}, {pred.eps_right:g}]")
        return f"BandCondition({', '.join(parts)})"
