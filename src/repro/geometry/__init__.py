"""Geometric primitives: band conditions and axis-aligned regions."""

from repro.geometry.band import BandCondition
from repro.geometry.region import Region

__all__ = ["BandCondition", "Region"]
