"""Figure reproductions: the overhead scatter (Figures 4 and 10) and the
running-time-model error CDF (Figure 9).

The library has no plotting dependency; figures are produced as structured
data (points / CDF steps) plus an ASCII rendering and an optional CSV export,
which is what the benchmark harness prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.config import LoadWeights
from repro.cost.model import default_running_time_model
from repro.exceptions import ReproError
from repro.experiments.runner import default_partitioners, run_workload
from repro.experiments.workloads import Workload, figure4_workloads
from repro.metrics.measures import OverheadPoint


@dataclass
class Figure4Data:
    """The duplication-overhead vs load-overhead scatter of Figures 4 / 10."""

    points: list[OverheadPoint] = field(default_factory=list)

    def methods(self) -> list[str]:
        """Return the distinct methods appearing in the scatter."""
        seen: list[str] = []
        for point in self.points:
            if point.method not in seen:
                seen.append(point.method)
        return seen

    def points_for(self, method: str) -> list[OverheadPoint]:
        """Return the points of one method."""
        return [p for p in self.points if p.method == method]

    def fraction_within_ten_percent(self, method: str) -> float:
        """Return the fraction of a method's points within 10% of both lower bounds."""
        points = self.points_for(method)
        if not points:
            return 0.0
        return sum(1 for p in points if p.within_ten_percent) / len(points)

    def worst_point(self, method: str) -> OverheadPoint | None:
        """Return the point of a method with the largest max(duplication, load) overhead."""
        points = self.points_for(method)
        if not points:
            return None
        return max(points, key=lambda p: max(p.duplication_overhead, p.load_overhead))

    def summary_rows(self) -> list[list]:
        """Return one summary row per method (for the benchmark report)."""
        rows = []
        for method in self.methods():
            points = self.points_for(method)
            rows.append(
                [
                    method,
                    len(points),
                    self.fraction_within_ten_percent(method),
                    float(np.median([p.duplication_overhead for p in points])),
                    float(np.median([p.load_overhead for p in points])),
                    float(max(max(p.duplication_overhead, p.load_overhead) for p in points)),
                ]
            )
        return rows

    def to_csv(self, path: str | Path) -> Path:
        """Write the scatter points to CSV (method, workload, x, y)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["method", "workload", "duplication_overhead", "load_overhead"])
            for point in self.points:
                writer.writerow(
                    [point.method, point.workload, point.duplication_overhead, point.load_overhead]
                )
        return path

    def render_ascii(self, width: int = 60, height: int = 18) -> str:
        """Render a crude log-log ASCII scatter (one character per method)."""
        if not self.points:
            return "(no points)"
        markers = "RC1GIO*"
        method_marker = {m: markers[i % len(markers)] for i, m in enumerate(self.methods())}
        xs = np.array([max(p.duplication_overhead, 1e-4) for p in self.points])
        ys = np.array([max(p.load_overhead, 1e-4) for p in self.points])
        log_x = np.log10(xs)
        log_y = np.log10(ys)
        x_lo, x_hi = log_x.min(), max(log_x.max(), log_x.min() + 1e-6)
        y_lo, y_hi = log_y.min(), max(log_y.max(), log_y.min() + 1e-6)
        grid = [[" "] * width for _ in range(height)]
        for point, lx, ly in zip(self.points, log_x, log_y):
            col = int((lx - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((ly - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = method_marker[point.method]
        legend = "  ".join(f"{marker}={method}" for method, marker in method_marker.items())
        body = "\n".join("".join(row) for row in grid)
        return (
            f"duplication overhead (x, log) vs load overhead (y, log)\n{body}\n{legend}"
        )


def figure4(
    scale: float = 1.0,
    workloads: list[Workload] | None = None,
    verify: str = "none",
    seed: int = 0,
    include_recpart_symmetric: bool = True,
) -> Figure4Data:
    """Reproduce the Figure 4 / Figure 10 scatter across a cross-section of workloads."""
    from repro.experiments.tables import _scaled  # local import to avoid a cycle

    weights = LoadWeights()
    cost_model = default_running_time_model()
    selected = workloads if workloads is not None else figure4_workloads()
    data = Figure4Data()
    for workload in selected:
        scaled = _scaled(workload, scale)
        experiment = run_workload(
            scaled,
            partitioners=default_partitioners(
                weights=weights,
                cost_model=cost_model,
                include_recpart_symmetric=include_recpart_symmetric,
                seed=seed,
            ),
            weights=weights,
            cost_model=cost_model,
            verify=verify,
            seed=seed,
        )
        data.points.extend(experiment.overhead_points())
    return data


@dataclass
class Figure9Data:
    """Cumulative distribution of the running-time model's relative error."""

    errors: list[float] = field(default_factory=list)

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (sorted absolute errors, cumulative fraction) step coordinates."""
        if not self.errors:
            return np.empty(0), np.empty(0)
        values = np.sort(np.abs(np.asarray(self.errors)))
        fractions = np.arange(1, values.size + 1) / values.size
        return values, fractions

    def fraction_below(self, threshold: float) -> float:
        """Return the fraction of predictions with absolute relative error below ``threshold``."""
        if not self.errors:
            return 0.0
        values = np.abs(np.asarray(self.errors))
        return float(np.mean(values < threshold))

    def max_error(self) -> float:
        """Return the largest absolute relative error."""
        if not self.errors:
            return 0.0
        return float(np.max(np.abs(self.errors)))

    def summary_rows(self) -> list[list]:
        """Return the Figure-9-style checkpoints (error below 0.2 / 0.4 / 0.73)."""
        return [
            ["fraction with |error| < 20%", self.fraction_below(0.20)],
            ["fraction with |error| < 40%", self.fraction_below(0.40)],
            ["fraction with |error| < 73%", self.fraction_below(0.73)],
            ["maximum |error|", self.max_error()],
        ]


def figure9(scale: float = 1.0, seed: int = 0, calibration=None) -> Figure9Data:
    """Reproduce Figure 9: the CDF of the running-time model's prediction error."""
    from repro.experiments.tables import table12

    reproduction = table12(scale=scale, seed=seed, calibration=calibration)
    errors = [row[4] for row in reproduction.custom_rows if row[4] is not None]
    if not errors:
        raise ReproError("model-accuracy experiment produced no timed observations")
    return Figure9Data(errors=errors)
