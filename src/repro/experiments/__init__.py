"""Experiment harness: workload definitions, runner, and per-table reproductions."""

from repro.experiments.workloads import Workload
from repro.experiments.runner import ExperimentResult, MethodResult, run_workload, default_partitioners

__all__ = [
    "Workload",
    "ExperimentResult",
    "MethodResult",
    "run_workload",
    "default_partitioners",
]
