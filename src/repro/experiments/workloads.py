"""Workload definitions: scaled-down analogues of the paper's Table 1 / Table 10.

The paper evaluates on inputs of 200-800 million tuples on a 30-node EMR
cluster.  This reproduction uses the same data *distributions* at
laptop-scale cardinalities (default 50,000 tuples per input, 8 simulated
workers) with band widths re-calibrated so that the output-size / input-size
ratios land in the same regimes as the corresponding paper workloads
(selective joins with output below input size up to heavy joins with output
tens of times the input).  DESIGN.md documents the substitution; the module
docstrings of :mod:`repro.data.generators` and
:mod:`repro.data.synthetic_real` describe the generators.

Every paper table has a ``table*_workloads()`` function here returning the
workloads that its reproduction in :mod:`repro.experiments.tables` runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.config import DEFAULT_SEED
from repro.data.generators import (
    pareto_relation,
    reverse_pareto_relation,
)
from repro.data.relation import Relation
from repro.data.synthetic_real import (
    SPATIOTEMPORAL_ATTRIBUTES,
    cloud_reports_like,
    ebird_like,
    ptf_objects_like,
)
from repro.exceptions import WorkloadError
from repro.geometry.band import BandCondition

#: Default tuples per input relation (the paper uses 200 million).
DEFAULT_ROWS_PER_INPUT: int = 50_000

#: Default number of simulated workers (the paper uses 30 EMR nodes).
DEFAULT_WORKLOAD_WORKERS: int = 8

#: Decimal rounding applied to the 1D Pareto data so the equi-join
#: (band width 0) workload produces output, as in the paper.
PARETO_1D_DECIMALS: int = 5


@dataclass(frozen=True)
class Workload:
    """One band-join problem instance: dataset, band widths and cluster size.

    Attributes
    ----------
    name:
        Short unique identifier used in reports (e.g. ``"pareto-1.5-3d-w0.05"``).
    description:
        Human-readable description.
    dataset:
        Dataset family: ``"pareto"``, ``"rv-pareto"``, ``"ebird-cloud"`` or ``"ptf"``.
    dimensions:
        Number of join attributes.
    band_widths:
        Band width per join attribute.
    rows_per_input:
        Number of tuples generated per input relation.
    workers:
        Number of simulated workers.
    skew:
        Pareto shape parameter ``z`` (ignored by the non-Pareto datasets).
    seed:
        Base random seed of the data generation.
    """

    name: str
    description: str
    dataset: str
    dimensions: int
    band_widths: tuple[float, ...]
    rows_per_input: int = DEFAULT_ROWS_PER_INPUT
    workers: int = DEFAULT_WORKLOAD_WORKERS
    skew: float = 1.5
    seed: int = DEFAULT_SEED
    decimals: int | None = None
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.dataset not in ("pareto", "rv-pareto", "ebird-cloud", "ptf"):
            raise WorkloadError(f"unknown dataset family {self.dataset!r}")
        if len(self.band_widths) != self.dimensions:
            raise WorkloadError(
                f"workload {self.name!r}: {len(self.band_widths)} band widths for "
                f"{self.dimensions} dimensions"
            )
        if self.rows_per_input < 1:
            raise WorkloadError("rows_per_input must be positive")
        if self.workers < 1:
            raise WorkloadError("workers must be positive")

    # ------------------------------------------------------------------ #
    # Construction of the problem instance
    # ------------------------------------------------------------------ #
    def attributes(self) -> tuple[str, ...]:
        """Return the join attributes of the workload."""
        if self.dataset == "ebird-cloud":
            return SPATIOTEMPORAL_ATTRIBUTES
        if self.dataset == "ptf":
            return ("ra", "dec")
        return tuple(f"A{i + 1}" for i in range(self.dimensions))

    def condition(self) -> BandCondition:
        """Return the band condition of the workload."""
        return BandCondition.symmetric(self.attributes(), list(self.band_widths))

    def build(self) -> tuple[Relation, Relation, BandCondition]:
        """Generate the two input relations and the band condition."""
        n = self.rows_per_input
        if self.dataset == "pareto":
            rng = np.random.default_rng(self.seed)
            s = pareto_relation(
                "S", n, dimensions=self.dimensions, z=self.skew, seed=rng, decimals=self.decimals
            )
            t = pareto_relation(
                "T", n, dimensions=self.dimensions, z=self.skew, seed=rng, decimals=self.decimals
            )
        elif self.dataset == "rv-pareto":
            rng = np.random.default_rng(self.seed)
            s = pareto_relation("S", n, dimensions=self.dimensions, z=self.skew, seed=rng)
            t = reverse_pareto_relation("T", n, dimensions=self.dimensions, z=self.skew, seed=rng)
        elif self.dataset == "ebird-cloud":
            s = ebird_like(n, seed=self.seed)
            t = cloud_reports_like(n, seed=self.seed + 1)
        elif self.dataset == "ptf":
            # A single observation set split in half: both sides observe the
            # same underlying celestial sources, as in the paper's self-match.
            full = ptf_objects_like(2 * n, seed=self.seed)
            order = np.random.default_rng(self.seed + 7).permutation(2 * n)
            s = full.take(order[:n], name="ptf_S")
            t = full.take(order[n:], name="ptf_T")
        else:  # pragma: no cover - guarded by __post_init__
            raise WorkloadError(f"unknown dataset family {self.dataset!r}")
        return s, t, self.condition()

    # ------------------------------------------------------------------ #
    # Convenience derivation
    # ------------------------------------------------------------------ #
    def scaled(self, rows_per_input: int, workers: int, suffix: str = "") -> "Workload":
        """Return a copy with a different input size / cluster size (scalability runs)."""
        return replace(
            self,
            name=f"{self.name}{suffix or f'-{rows_per_input}x{workers}'}",
            rows_per_input=rows_per_input,
            workers=workers,
        )

    def label(self) -> str:
        """Return a compact label for figures: dataset, dimensionality, band width."""
        widths = ",".join(f"{w:g}" for w in self.band_widths)
        return f"{self.dataset}-d{self.dimensions}-eps({widths})-w{self.workers}"


# ---------------------------------------------------------------------- #
# Workload families mirroring paper Table 1 / Table 10
# ---------------------------------------------------------------------- #
def pareto_workload(
    band_width: float | tuple[float, ...],
    dimensions: int = 3,
    skew: float = 1.5,
    rows_per_input: int = DEFAULT_ROWS_PER_INPUT,
    workers: int = DEFAULT_WORKLOAD_WORKERS,
    reverse: bool = False,
    decimals: int | None = None,
    seed: int = DEFAULT_SEED,
) -> Workload:
    """Build one Pareto-family workload (the paper's ``pareto-z`` / ``rv-pareto-z``)."""
    widths = (
        tuple(float(band_width) for _ in range(dimensions))
        if isinstance(band_width, (int, float))
        else tuple(float(x) for x in band_width)
    )
    family = "rv-pareto" if reverse else "pareto"
    name = f"{family}-{skew:g}-d{dimensions}-eps{widths[0]:g}"
    return Workload(
        name=name,
        description=f"{family}-{skew:g}, d={dimensions}, band width {widths}",
        dataset=family,
        dimensions=dimensions,
        band_widths=widths,
        rows_per_input=rows_per_input,
        workers=workers,
        skew=skew,
        decimals=decimals,
        seed=seed,
    )


def ebird_cloud_workload(
    band_width: float | tuple[float, ...],
    rows_per_input: int = DEFAULT_ROWS_PER_INPUT,
    workers: int = DEFAULT_WORKLOAD_WORKERS,
    seed: int = DEFAULT_SEED,
) -> Workload:
    """Build one ebird-joins-cloud workload (3D spatio-temporal band-join)."""
    widths = (
        tuple(float(band_width) for _ in range(3))
        if isinstance(band_width, (int, float))
        else tuple(float(x) for x in band_width)
    )
    return Workload(
        name=f"ebird-cloud-eps{widths[0]:g}",
        description=f"ebird joins cloud on (time, lat, lon), band width {widths}",
        dataset="ebird-cloud",
        dimensions=3,
        band_widths=widths,
        rows_per_input=rows_per_input,
        workers=workers,
        seed=seed,
    )


def ptf_workload(
    band_width: float,
    rows_per_input: int = DEFAULT_ROWS_PER_INPUT,
    workers: int = DEFAULT_WORKLOAD_WORKERS,
    seed: int = DEFAULT_SEED,
) -> Workload:
    """Build one PTF celestial-object matching workload (2D band self-match)."""
    return Workload(
        name=f"ptf-eps{band_width:g}",
        description=f"PTF objects self-match on (ra, dec), band width {band_width:g}",
        dataset="ptf",
        dimensions=2,
        band_widths=(float(band_width), float(band_width)),
        rows_per_input=rows_per_input,
        workers=workers,
        seed=seed,
    )


# -------------------------- Table 2: band-width impact ------------------ #
def table2a_workloads() -> list[Workload]:
    """1D pareto-1.5 with increasing band width (paper Table 2a).

    The values are rounded to 5 decimals so the band-width-zero case is a
    real (skewed) equi-join, as in the paper.
    """
    return [
        pareto_workload(width, dimensions=1, decimals=PARETO_1D_DECIMALS)
        for width in (0.0, 1e-4, 2e-4, 3e-4)
    ]


def table2b_workloads() -> list[Workload]:
    """3D pareto-1.5 with increasing band width (paper Table 2b)."""
    return [pareto_workload(width, dimensions=3) for width in (0.0, 0.05, 0.09)]


def table2c_workloads() -> list[Workload]:
    """3D ebird-joins-cloud with increasing band width (paper Table 2c)."""
    return [ebird_cloud_workload(width) for width in (0.0, 2.0, 4.0, 8.0)]


# -------------------------- Table 3: skew resistance -------------------- #
def table3_workloads() -> list[Workload]:
    """3D pareto-z with fixed band width and increasing skew (paper Table 3)."""
    return [pareto_workload(0.05, dimensions=3, skew=z) for z in (0.5, 1.0, 1.5, 2.0)]


# -------------------------- Table 4: scalability ------------------------ #
def table4a_workloads() -> list[Workload]:
    """Scale input and workers together on 3D pareto-1.5 (paper Table 4a)."""
    base = pareto_workload(0.05, dimensions=3)
    return [
        base.scaled(25_000, 4),
        base.scaled(50_000, 8),
        base.scaled(100_000, 16),
    ]


def table4b_workloads() -> list[Workload]:
    """Scale input and workers together on ebird-cloud (paper Table 4b)."""
    base = ebird_cloud_workload(2.0)
    return [
        base.scaled(25_000, 4),
        base.scaled(50_000, 8),
        base.scaled(100_000, 16),
    ]


def table4c_workloads() -> list[Workload]:
    """8D pareto-1.5, varying input size at a fixed cluster size (paper Table 4c)."""
    base = pareto_workload(0.35, dimensions=8)
    return [base.scaled(n, DEFAULT_WORKLOAD_WORKERS) for n in (12_500, 25_000, 50_000, 100_000)]


def table4d_workloads() -> list[Workload]:
    """8D pareto-1.5, varying the number of workers at fixed input (paper Table 4d)."""
    base = pareto_workload(0.35, dimensions=8)
    return [base.scaled(DEFAULT_ROWS_PER_INPUT, w) for w in (1, 4, 8, 16)]


# -------------------------- Table 5 / 6: grid tuning --------------------- #
def table5_workload() -> Workload:
    """The workload of the Grid-eps grid-size sweep (paper Table 5)."""
    return pareto_workload(0.05, dimensions=3)


def table5_grid_multipliers() -> list[int]:
    """Grid-size multipliers swept by Table 5 (cell size = multiplier x band width)."""
    return [1, 2, 4, 8, 16, 32]


def table6_workloads() -> list[Workload]:
    """Grid* vs RecPart on skewed and anti-correlated data (paper Table 6)."""
    return [
        pareto_workload(0.05, dimensions=3, skew=2.0),
        pareto_workload(5.0, dimensions=3, reverse=True),
        pareto_workload(10.0, dimensions=3, reverse=True),
    ]


# -------------------------- Table 7 / 11: IEJoin ------------------------- #
def table7_workloads() -> list[Workload]:
    """Workloads of the distributed-IEJoin comparison (paper Tables 7 and 11)."""
    return [
        pareto_workload(0.0, dimensions=3, skew=1.5),
        pareto_workload(0.05, dimensions=3, skew=1.5),
        pareto_workload(0.05, dimensions=3, skew=1.0),
        pareto_workload(0.05, dimensions=3, skew=0.5),
    ]


def table7_block_sizes() -> list[int]:
    """``sizePerBlock`` values swept for distributed IEJoin (scaled from the paper)."""
    return [1_000, 2_500, 5_000, 10_000]


# -------------------------- Table 8 / 13: beta ratio --------------------- #
def table8_workload() -> Workload:
    """Workload of the local-join-cost-ratio study (paper Tables 8 and 13)."""
    return ebird_cloud_workload(2.0)


def table8_beta_ratios() -> list[float]:
    """Shuffle-vs-local cost ratios (beta2 / beta1) swept by Table 8."""
    return [0.0001, 0.01, 1.0, 100.0, 10_000.0]


# -------------------------- Table 9 / 14: symmetric splits --------------- #
def table9_workloads() -> list[Workload]:
    """RecPart-S vs RecPart workloads (paper Tables 9 and 14)."""
    return [
        pareto_workload(0.05, dimensions=3, skew=1.0),
        ebird_cloud_workload(2.0),
        ebird_cloud_workload(4.0),
        pareto_workload(5.0, dimensions=3, reverse=True),
        pareto_workload(10.0, dimensions=3, reverse=True),
        pareto_workload(2.0, dimensions=1, reverse=True),
        pareto_workload(50.0, dimensions=1, reverse=True),
    ]


# -------------------------- Table 12 / Figure 9: model accuracy ---------- #
def table12_workloads() -> list[Workload]:
    """Workloads used to validate the running-time model (paper Table 12, Figure 9)."""
    return [
        pareto_workload(1e-4, dimensions=1, decimals=PARETO_1D_DECIMALS),
        pareto_workload(2e-4, dimensions=1, decimals=PARETO_1D_DECIMALS),
        pareto_workload(0.05, dimensions=3),
        pareto_workload(0.09, dimensions=3),
        pareto_workload(0.05, dimensions=3, skew=1.0),
        pareto_workload(0.05, dimensions=3, skew=2.0),
        ebird_cloud_workload(2.0),
        ebird_cloud_workload(4.0),
    ]


# -------------------------- Table 15: dimensionality sweep --------------- #
def table15_workloads() -> list[Workload]:
    """Band width 0.05 in every dimension, d in {1, 2, 4, 8} (paper Table 15)."""
    return [pareto_workload(0.05, dimensions=d) for d in (1, 2, 4, 8)]


# -------------------------- Table 16: PTF / theoretical termination ------ #
def table16_workloads() -> list[Workload]:
    """PTF celestial matching with arc-second band widths (paper Table 16)."""
    return [ptf_workload(2.78e-4), ptf_workload(8.33e-4)]


# -------------------------- Figure 4 / Figure 10 ------------------------- #
def figure4_workloads() -> list[Workload]:
    """A broad cross-section of all workload families for the overhead scatter."""
    workloads = []
    workloads.extend(table2a_workloads()[1:3])
    workloads.extend(table2b_workloads()[1:])
    workloads.extend(table2c_workloads()[1:3])
    workloads.extend(table3_workloads())
    workloads.append(table4c_workloads()[1])
    workloads.extend(table16_workloads()[:1])
    # Deduplicate by name while preserving order.
    seen: set[str] = set()
    unique = []
    for w in workloads:
        if w.name not in seen:
            seen.add(w.name)
            unique.append(w)
    return unique
