"""End-to-end experiment runner.

``run_workload`` takes one workload (dataset + band condition + cluster size)
and a set of partitioners, runs the full optimize -> partition -> simulated
execution pipeline for each, and collects the per-method measures the paper
reports in its tables: optimization time, estimated join time, total input
``I`` (with duplicates), and the input ``I_m`` / output ``O_m`` of the most
loaded worker, plus the overheads over the lower bounds used by Figure 4.

Failures (e.g. Grid-eps refusing to materialise an astronomically replicated
input, or being undefined for band width zero) are captured as failed method
results rather than aborting the experiment — matching how the paper reports
"failed" and "N/A" cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import LoadWeights
from repro.core.partitioner import Partitioner
from repro.cost.lower_bounds import LowerBounds, compute_lower_bounds
from repro.cost.model import RunningTimeModel, default_running_time_model
from repro.data.relation import Relation
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.exceptions import ReproError
from repro.experiments.workloads import Workload
from repro.geometry.band import BandCondition
from repro.metrics.measures import OverheadPoint
from repro.metrics.report import format_table


@dataclass
class MethodResult:
    """Measured outcome of one partitioning method on one workload."""

    method: str
    optimization_seconds: float = 0.0
    execution_seconds: float = 0.0
    predicted_join_time: float | None = None
    total_input: int = 0
    max_worker_input: int = 0
    max_worker_output: int = 0
    max_worker_load: float = 0.0
    total_output: int = 0
    duplication_overhead: float = 0.0
    load_overhead: float = 0.0
    n_units: int = 0
    failed: bool = False
    error: str | None = None

    @property
    def total_time(self) -> float:
        """Return optimization plus (predicted) join time when available."""
        if self.predicted_join_time is None:
            return self.optimization_seconds
        return self.optimization_seconds + self.predicted_join_time

    def as_row(self) -> list:
        """Return the method's table row (paper column structure)."""
        if self.failed:
            return [self.method, "failed", "-", "-", "-", "-", "-", self.error or ""]
        return [
            self.method,
            self.optimization_seconds,
            self.predicted_join_time,
            self.total_input,
            self.max_worker_input,
            self.max_worker_output,
            self.duplication_overhead,
            self.load_overhead,
        ]


@dataclass
class ExperimentResult:
    """All method results of one workload plus its lower bounds."""

    workload: Workload
    bounds: LowerBounds
    results: list[MethodResult] = field(default_factory=list)

    HEADERS = [
        "method",
        "opt [s]",
        "est. join time",
        "I",
        "I_m",
        "O_m",
        "dup overhead",
        "load overhead",
    ]

    def result_for(self, method: str) -> MethodResult:
        """Return the result of one method (raises if absent)."""
        for result in self.results:
            if result.method == method:
                return result
        raise ReproError(f"no result for method {method!r} in workload {self.workload.name!r}")

    def successful(self) -> list[MethodResult]:
        """Return only the methods that completed."""
        return [r for r in self.results if not r.failed]

    def best_method(self) -> MethodResult:
        """Return the method with the smallest total (optimization + join) time."""
        candidates = self.successful()
        if not candidates:
            raise ReproError(f"every method failed on workload {self.workload.name!r}")
        return min(candidates, key=lambda r: r.total_time)

    def overhead_points(self) -> list[OverheadPoint]:
        """Return the Figure-4 scatter points of this experiment."""
        return [
            OverheadPoint(
                method=r.method,
                workload=self.workload.name,
                duplication_overhead=r.duplication_overhead,
                load_overhead=r.load_overhead,
            )
            for r in self.successful()
        ]

    def format(self) -> str:
        """Render the experiment as an aligned text table."""
        rows = []
        for r in self.results:
            if r.failed:
                rows.append([r.method, "failed", None, None, None, None, None, None])
            else:
                rows.append(
                    [
                        r.method,
                        r.optimization_seconds,
                        r.predicted_join_time,
                        r.total_input,
                        r.max_worker_input,
                        r.max_worker_output,
                        r.duplication_overhead,
                        r.load_overhead,
                    ]
                )
        title = (
            f"{self.workload.name}: {self.workload.description} "
            f"(|S|+|T|={self.bounds.total_input:,.0f}, output={self.bounds.output_size:,.0f}, "
            f"w={self.workload.workers})"
        )
        return format_table(self.HEADERS, rows, title=title)


def default_partitioners(
    weights: LoadWeights | None = None,
    cost_model: RunningTimeModel | None = None,
    include_recpart_symmetric: bool = False,
    include_grid_star: bool = False,
    include_iejoin: bool = False,
    seed: int = 0,
) -> list[Partitioner]:
    """Return the paper's standard comparison set: RecPart-S, CSIO, 1-Bucket, Grid-eps.

    Optional flags add the symmetric RecPart, Grid* and distributed IEJoin,
    used by the experiments that study them specifically.
    """
    from repro.baselines.csio import CSIOPartitioner
    from repro.baselines.grid import GridEpsilonPartitioner
    from repro.baselines.grid_star import GridStarPartitioner
    from repro.baselines.iejoin import IEJoinPartitioner
    from repro.baselines.one_bucket import OneBucketPartitioner
    from repro.core.recpart import RecPartPartitioner, RecPartSPartitioner

    weights = weights if weights is not None else LoadWeights()
    cost_model = cost_model if cost_model is not None else default_running_time_model()
    partitioners: list[Partitioner] = [
        RecPartSPartitioner(cost_model=cost_model, weights=weights, seed=seed),
        CSIOPartitioner(weights=weights, seed=seed),
        OneBucketPartitioner(weights=weights, seed=seed),
        GridEpsilonPartitioner(weights=weights, seed=seed),
    ]
    if include_recpart_symmetric:
        partitioners.insert(1, RecPartPartitioner(cost_model=cost_model, weights=weights, seed=seed))
    if include_grid_star:
        partitioners.append(GridStarPartitioner(cost_model=cost_model, weights=weights, seed=seed))
    if include_iejoin:
        partitioners.append(IEJoinPartitioner(weights=weights, seed=seed))
    return partitioners


def run_method(
    partitioner: Partitioner,
    s: Relation,
    t: Relation,
    condition: BandCondition,
    workers: int,
    bounds: LowerBounds | None,
    executor: DistributedBandJoinExecutor,
    verify: str = "none",
    rng: np.random.Generator | None = None,
) -> MethodResult:
    """Run one partitioner end-to-end and package the measurements.

    ``bounds`` may be ``None``; the overhead fields are then left at zero and
    can be filled in later with :func:`attach_overheads`.
    """
    start = time.perf_counter()
    try:
        partitioning = partitioner.partition(s, t, condition, workers, rng=rng)
        execution = executor.execute(s, t, condition, partitioning, verify=verify)
    except ReproError as error:
        return MethodResult(
            method=partitioner.name,
            failed=True,
            error=f"{type(error).__name__}: {error}",
            execution_seconds=time.perf_counter() - start,
        )
    elapsed = time.perf_counter() - start
    result = MethodResult(
        method=partitioner.name,
        optimization_seconds=partitioning.stats.optimization_seconds,
        execution_seconds=elapsed - partitioning.stats.optimization_seconds,
        predicted_join_time=execution.predicted_join_time,
        total_input=execution.total_input,
        max_worker_input=execution.max_worker_input,
        max_worker_output=execution.max_worker_output,
        max_worker_load=execution.max_worker_load,
        total_output=execution.total_output,
        n_units=partitioning.n_units,
    )
    if bounds is not None:
        attach_overheads(result, bounds)
    return result


def attach_overheads(result: MethodResult, bounds: LowerBounds) -> MethodResult:
    """Fill a method result's overhead-vs-lower-bound fields in place."""
    if not result.failed:
        result.duplication_overhead = bounds.input_overhead(result.total_input)
        result.load_overhead = bounds.load_overhead(result.max_worker_load)
    return result


def run_workload(
    workload: Workload,
    partitioners: list[Partitioner] | None = None,
    weights: LoadWeights | None = None,
    cost_model: RunningTimeModel | None = None,
    verify: str = "none",
    seed: int = 0,
    engine: str | None = None,
    local_algorithm: str | None = None,
) -> ExperimentResult:
    """Run every partitioner on one workload and collect the paper-style measures.

    ``engine`` selects the execution mode of the reduce phase:
    ``None``/``"simulated"`` keeps the sequential in-driver path, while
    ``"serial"``, ``"threads"`` or ``"processes"`` dispatch the local joins
    to the corresponding :mod:`repro.engine` backend.  ``local_algorithm``
    picks the per-worker kernel by registry name (``"index-nested-loop"``,
    ``"sort-sweep"``, ``"iejoin-local"``, ``"nested-loop"``, ``"auto"``);
    the pair counts are kernel-independent, only the reduce-phase speed
    changes.
    """
    weights = weights if weights is not None else LoadWeights()
    cost_model = cost_model if cost_model is not None else default_running_time_model()
    if partitioners is None:
        partitioners = default_partitioners(weights=weights, cost_model=cost_model, seed=seed)

    s, t, condition = workload.build()
    executor = DistributedBandJoinExecutor(
        algorithm=local_algorithm, weights=weights, cost_model=cost_model, engine=engine
    )

    results = []
    for partitioner in partitioners:
        # Stable per-method stream: zlib.crc32 is deterministic across processes
        # (unlike the builtin hash of a string), so experiment results are
        # reproducible run to run.
        import zlib

        method_key = zlib.crc32(partitioner.name.encode()) % (2**31)
        rng = np.random.default_rng((seed, method_key))
        results.append(
            run_method(
                partitioner,
                s,
                t,
                condition,
                workload.workers,
                None,
                executor,
                verify=verify,
                rng=rng,
            )
        )

    # Every successful execution produced the exact join output (the executor
    # verifies this when asked), so the lower bounds can reuse that count
    # instead of recomputing the full join.
    exact_output: float | None = None
    for result in results:
        if not result.failed:
            exact_output = float(result.total_output)
            break
    bounds = compute_lower_bounds(
        s, t, condition, workload.workers, weights=weights, output_size=exact_output
    )
    for result in results:
        attach_overheads(result, bounds)
    return ExperimentResult(workload=workload, bounds=bounds, results=results)
