"""Per-table reproductions of the paper's evaluation section.

Each ``table*`` function runs the corresponding experiment end-to-end (data
generation, optimization, simulated distributed execution) and returns a
:class:`TableReproduction` whose ``format()`` prints the same row structure
the paper reports: per method the optimization time, the estimated join time
from the running-time model, the total input ``I`` including duplicates and
the input/output of the most loaded worker (``I_m``, ``O_m``).

All functions take a ``scale`` parameter (fraction of the default workload
size) so the same code drives both quick CI-sized runs and the full
benchmarks, plus a ``verify`` flag that cross-checks every distributed result
against a single-machine join.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.baselines.csio import CSIOPartitioner
from repro.baselines.grid import GridEpsilonPartitioner
from repro.baselines.grid_star import GridStarPartitioner
from repro.baselines.iejoin import IEJoinPartitioner
from repro.baselines.one_bucket import OneBucketPartitioner
from repro.config import LoadWeights, RecPartConfig
from repro.core.recpart import RecPartPartitioner, RecPartSPartitioner
from repro.cost.calibration import CalibrationResult, calibrate_running_time_model
from repro.cost.lower_bounds import compute_lower_bounds
from repro.cost.model import ModelCoefficients, RunningTimeModel, default_running_time_model
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.exceptions import ReproError
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    default_partitioners,
    run_method,
    run_workload,
)
from repro.experiments import workloads as wl
from repro.experiments.workloads import Workload
from repro.metrics.measures import OverheadPoint
from repro.metrics.report import format_table


@dataclass
class TableReproduction:
    """One reproduced paper table: its experiments plus optional custom rows."""

    table_id: str
    title: str
    experiments: list[ExperimentResult] = field(default_factory=list)
    custom_headers: list[str] | None = None
    custom_rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        """Render the whole table reproduction as text."""
        sections = [f"=== {self.table_id}: {self.title} ==="]
        for experiment in self.experiments:
            sections.append(experiment.format())
        if self.custom_rows:
            sections.append(
                format_table(self.custom_headers or [], self.custom_rows, title=None)
            )
        for note in self.notes:
            sections.append(f"note: {note}")
        return "\n\n".join(sections)

    def overhead_points(self) -> list[OverheadPoint]:
        """Return every Figure-4 point contributed by this table."""
        points: list[OverheadPoint] = []
        for experiment in self.experiments:
            points.extend(experiment.overhead_points())
        return points

    def method_results(self, method: str) -> list[MethodResult]:
        """Return the per-workload results of one method across the table."""
        return [e.result_for(method) for e in self.experiments]


def _scaled(workload: Workload, scale: float) -> Workload:
    """Return the workload with its input size (and nothing else) scaled down."""
    if scale == 1.0:
        return workload
    rows = max(500, int(round(workload.rows_per_input * scale)))
    return replace(workload, rows_per_input=rows)


def _run_table(
    table_id: str,
    title: str,
    workload_list: list[Workload],
    scale: float,
    verify: str,
    partitioners=None,
    weights: LoadWeights | None = None,
    cost_model: RunningTimeModel | None = None,
    seed: int = 0,
    notes: list[str] | None = None,
    **partitioner_flags,
) -> TableReproduction:
    """Shared driver: run every workload of a table with a partitioner set."""
    weights = weights if weights is not None else LoadWeights()
    cost_model = cost_model if cost_model is not None else default_running_time_model()
    experiments = []
    for workload in workload_list:
        scaled = _scaled(workload, scale)
        methods = (
            partitioners
            if partitioners is not None
            else default_partitioners(
                weights=weights, cost_model=cost_model, seed=seed, **partitioner_flags
            )
        )
        experiments.append(
            run_workload(
                scaled,
                partitioners=methods,
                weights=weights,
                cost_model=cost_model,
                verify=verify,
                seed=seed,
            )
        )
    return TableReproduction(
        table_id=table_id, title=title, experiments=experiments, notes=notes or []
    )


# ---------------------------------------------------------------------- #
# Table 2: impact of band width
# ---------------------------------------------------------------------- #
def table2a(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 2a: 1D pareto-1.5, increasing band width."""
    return _run_table(
        "Table 2a",
        "pareto-1.5, d=1, varying band width",
        wl.table2a_workloads(),
        scale,
        verify,
        seed=seed,
        notes=["Grid-eps is undefined for band width 0 and reports 'failed' on that row."],
    )


def table2b(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 2b: 3D pareto-1.5, increasing band width."""
    return _run_table(
        "Table 2b",
        "pareto-1.5, d=3, varying band width",
        wl.table2b_workloads(),
        scale,
        verify,
        seed=seed,
    )


def table2c(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 2c: ebird joins cloud, d=3, increasing band width."""
    return _run_table(
        "Table 2c",
        "ebird joins cloud, d=3, varying band width",
        wl.table2c_workloads(),
        scale,
        verify,
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# Table 3: skew resistance
# ---------------------------------------------------------------------- #
def table3(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 3: pareto-z, d=3, increasing skew."""
    return _run_table(
        "Table 3",
        "skew resistance on pareto-z, d=3, band width 0.05",
        wl.table3_workloads(),
        scale,
        verify,
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# Table 4: scalability
# ---------------------------------------------------------------------- #
def table4a(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 4a: pareto-1.5 d=3, scaling input and workers together."""
    return _run_table(
        "Table 4a",
        "scalability on pareto-1.5, d=3 (input and workers scaled together)",
        wl.table4a_workloads(),
        scale,
        verify,
        seed=seed,
    )


def table4b(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 4b: ebird joins cloud, scaling input and workers together."""
    return _run_table(
        "Table 4b",
        "scalability on ebird joins cloud (input and workers scaled together)",
        wl.table4b_workloads(),
        scale,
        verify,
        seed=seed,
    )


def table4c(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 4c: 8D pareto-1.5, varying input size at fixed worker count."""
    return _run_table(
        "Table 4c",
        "8D pareto-1.5, varying input size",
        wl.table4c_workloads(),
        scale,
        verify,
        seed=seed,
        include_recpart_symmetric=True,
        notes=[
            "Grid-eps replication explodes exponentially with dimensionality; rows where it "
            "refuses to materialise the copies are reported as 'failed' (the paper's Grid-eps "
            "ran out of memory on its largest 8D workload)."
        ],
    )


def table4d(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 4d: 8D pareto-1.5, varying the number of workers."""
    return _run_table(
        "Table 4d",
        "8D pareto-1.5, varying the number of workers",
        wl.table4d_workloads(),
        scale,
        verify,
        seed=seed,
        include_recpart_symmetric=True,
    )


# ---------------------------------------------------------------------- #
# Table 5: Grid-eps grid-size sweep vs Grid*
# ---------------------------------------------------------------------- #
def table5(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 5: effect of grid size on Grid-eps, compared with Grid*, RecPart-S, CSIO, 1-Bucket."""
    weights = LoadWeights()
    cost_model = default_running_time_model()
    workload = _scaled(wl.table5_workload(), scale)
    s, t, condition = workload.build()
    executor = DistributedBandJoinExecutor(weights=weights, cost_model=cost_model)
    bounds = compute_lower_bounds(s, t, condition, workload.workers, weights=weights)

    rows: list[list] = []
    for multiplier in wl.table5_grid_multipliers():
        partitioner = GridEpsilonPartitioner(multiplier=float(multiplier), weights=weights)
        result = run_method(
            partitioner, s, t, condition, workload.workers, bounds, executor, verify=verify
        )
        label = f"Grid (cell = {multiplier} x eps)"
        if result.failed:
            rows.append([label, "failed", None, None, None, None])
        else:
            rows.append(
                [
                    label,
                    result.total_input,
                    result.max_worker_input,
                    result.max_worker_output,
                    result.predicted_join_time,
                    result.duplication_overhead,
                ]
            )
    comparison = [
        GridStarPartitioner(cost_model=cost_model, weights=weights),
        RecPartSPartitioner(cost_model=cost_model, weights=weights),
        CSIOPartitioner(weights=weights),
        OneBucketPartitioner(weights=weights),
    ]
    for partitioner in comparison:
        result = run_method(
            partitioner, s, t, condition, workload.workers, bounds, executor, verify=verify
        )
        rows.append(
            [
                partitioner.name,
                result.total_input,
                result.max_worker_input,
                result.max_worker_output,
                result.predicted_join_time,
                result.duplication_overhead,
            ]
        )
    return TableReproduction(
        table_id="Table 5",
        title=f"Grid-eps grid-size sweep on {workload.name}",
        custom_headers=["method", "I", "I_m", "O_m", "est. join time", "dup overhead"],
        custom_rows=rows,
    )


# ---------------------------------------------------------------------- #
# Table 6: Grid* vs RecPart
# ---------------------------------------------------------------------- #
def table6(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 6: Grid* vs RecPart on skewed and anti-correlated (reverse Pareto) data."""
    weights = LoadWeights()
    cost_model = default_running_time_model()
    partitioners = [
        RecPartPartitioner(cost_model=cost_model, weights=weights, seed=seed),
        GridStarPartitioner(cost_model=cost_model, weights=weights, seed=seed),
    ]
    return _run_table(
        "Table 6",
        "Grid* vs RecPart (skewed and reverse-Pareto data)",
        wl.table6_workloads(),
        scale,
        verify,
        partitioners=partitioners,
        weights=weights,
        cost_model=cost_model,
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# Table 7 / Table 11: distributed IEJoin comparison
# ---------------------------------------------------------------------- #
def table7(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Tables 7 and 11: RecPart-S vs distributed IEJoin across block sizes."""
    weights = LoadWeights()
    cost_model = default_running_time_model()
    executor = DistributedBandJoinExecutor(weights=weights, cost_model=cost_model)
    rows: list[list] = []
    for workload in wl.table7_workloads():
        scaled = _scaled(workload, scale)
        s, t, condition = scaled.build()
        bounds = compute_lower_bounds(s, t, condition, scaled.workers, weights=weights)
        recpart = run_method(
            RecPartSPartitioner(cost_model=cost_model, weights=weights, seed=seed),
            s,
            t,
            condition,
            scaled.workers,
            bounds,
            executor,
            verify=verify,
        )
        rows.append(
            [
                scaled.name,
                "RecPart-S",
                None,
                recpart.predicted_join_time,
                recpart.total_input,
                recpart.max_worker_input,
                recpart.max_worker_output,
            ]
        )
        for block_size in wl.table7_block_sizes():
            scaled_block = max(50, int(round(block_size * scale)))
            iejoin = run_method(
                IEJoinPartitioner(size_per_block=scaled_block, weights=weights, seed=seed),
                s,
                t,
                condition,
                scaled.workers,
                bounds,
                executor,
                verify=verify,
            )
            rows.append(
                [
                    scaled.name,
                    "IEJoin",
                    scaled_block,
                    iejoin.predicted_join_time,
                    iejoin.total_input,
                    iejoin.max_worker_input,
                    iejoin.max_worker_output,
                ]
            )
    return TableReproduction(
        table_id="Table 7 / Table 11",
        title="RecPart-S vs distributed IEJoin (sizePerBlock sweep)",
        custom_headers=["workload", "method", "sizePerBlock", "est. join time", "I", "I_m", "O_m"],
        custom_rows=rows,
    )


# ---------------------------------------------------------------------- #
# Table 8 / Table 13: impact of the local-join cost ratio
# ---------------------------------------------------------------------- #
def table8(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Tables 8 and 13: varying the shuffle-vs-local-cost ratio (beta2 / beta1).

    RecPart re-optimises for every ratio (its cost model changes), while the
    competitors ignore the ratio by design, so their partitionings are
    computed once.
    """
    weights = LoadWeights()
    workload = _scaled(wl.table8_workload(), scale)
    s, t, condition = workload.build()
    bounds = compute_lower_bounds(s, t, condition, workload.workers, weights=weights)

    rows: list[list] = []
    competitor_results: dict[str, MethodResult] = {}
    executor_plain = DistributedBandJoinExecutor(weights=weights)
    for partitioner in (
        CSIOPartitioner(weights=weights, seed=seed),
        OneBucketPartitioner(weights=weights, seed=seed),
        GridEpsilonPartitioner(weights=weights, seed=seed),
    ):
        competitor_results[partitioner.name] = run_method(
            partitioner, s, t, condition, workload.workers, bounds, executor_plain, verify=verify
        )

    for ratio in wl.table8_beta_ratios():
        # beta1 (shuffle weight) fixed to 1, local weights scaled by the ratio.
        model = RunningTimeModel(
            ModelCoefficients(
                beta0=0.0,
                beta1=1.0,
                beta2=ratio * weights.beta_input,
                beta3=ratio * weights.beta_output,
            )
        )
        executor = DistributedBandJoinExecutor(weights=weights, cost_model=model)
        recpart = run_method(
            RecPartPartitioner(cost_model=model, weights=weights, seed=seed),
            s,
            t,
            condition,
            workload.workers,
            bounds,
            executor,
            verify=verify,
        )
        local_overhead = (
            weights.beta_input * recpart.max_worker_input
            + weights.beta_output * recpart.max_worker_output
        )
        row = [ratio, recpart.total_input, local_overhead]
        for name in ("CSIO", "1-Bucket", "Grid-eps"):
            competitor = competitor_results[name]
            if competitor.failed:
                row.extend([None, None])
                continue
            competitor_local = (
                weights.beta_input * competitor.max_worker_input
                + weights.beta_output * competitor.max_worker_output
            )
            row.extend([competitor.total_input, competitor_local])
        rows.append(row)
    return TableReproduction(
        table_id="Table 8 / Table 13",
        title=f"Impact of the beta2/beta1 ratio on {workload.name}",
        custom_headers=[
            "beta2/beta1",
            "RecPart I",
            "RecPart 4*I_m+O_m",
            "CSIO I",
            "CSIO 4*I_m+O_m",
            "1-Bucket I",
            "1-Bucket 4*I_m+O_m",
            "Grid I",
            "Grid 4*I_m+O_m",
        ],
        custom_rows=rows,
        notes=[
            "As the local-cost weight grows, RecPart trades a little extra duplication for a "
            "lower max worker load; the competitors ignore the ratio."
        ],
    )


# ---------------------------------------------------------------------- #
# Table 9 / Table 14: symmetric partitioning
# ---------------------------------------------------------------------- #
def table9(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Tables 9 and 14: RecPart-S vs RecPart (benefit of symmetric splits)."""
    weights = LoadWeights()
    cost_model = default_running_time_model()
    executor = DistributedBandJoinExecutor(weights=weights, cost_model=cost_model)
    rows: list[list] = []
    for workload in wl.table9_workloads():
        scaled = _scaled(workload, scale)
        s, t, condition = scaled.build()
        bounds = compute_lower_bounds(s, t, condition, scaled.workers, weights=weights)
        row: list = [scaled.name]
        times: dict[str, float | None] = {}
        for partitioner in (
            RecPartSPartitioner(cost_model=cost_model, weights=weights, seed=seed),
            RecPartPartitioner(cost_model=cost_model, weights=weights, seed=seed),
        ):
            result = run_method(
                partitioner, s, t, condition, scaled.workers, bounds, executor, verify=verify
            )
            imbalance = (
                result.max_worker_load
                / (weights.load(result.total_input, result.total_output) / scaled.workers)
                if result.total_input
                else 1.0
            )
            times[partitioner.name] = result.predicted_join_time
            row.extend(
                [
                    result.total_input,
                    result.max_worker_input,
                    result.max_worker_output,
                    imbalance,
                    result.predicted_join_time,
                ]
            )
        ratio = None
        if times.get("RecPart-S") and times.get("RecPart"):
            ratio = times["RecPart"] / times["RecPart-S"]
        row.append(ratio)
        rows.append(row)
    return TableReproduction(
        table_id="Table 9 / Table 14",
        title="RecPart-S vs RecPart (symmetric partitioning)",
        custom_headers=[
            "workload",
            "RecPart-S I",
            "RecPart-S I_m",
            "RecPart-S O_m",
            "RecPart-S imbalance",
            "RecPart-S est. time",
            "RecPart I",
            "RecPart I_m",
            "RecPart O_m",
            "RecPart imbalance",
            "RecPart est. time",
            "time ratio RecPart/RecPart-S",
        ],
        custom_rows=rows,
    )


# ---------------------------------------------------------------------- #
# Table 12 / Figure 9: running-time model accuracy
# ---------------------------------------------------------------------- #
def table12(
    scale: float = 1.0,
    verify: str = "none",
    seed: int = 0,
    calibration: CalibrationResult | None = None,
) -> TableReproduction:
    """Table 12: predicted vs measured join time for every method and workload.

    The model is calibrated on in-process local-join micro-benchmarks (the
    paper's procedure against this machine); the "actual" time of a simulated
    distributed execution is the most loaded worker's measured local-join
    time plus the measured per-tuple shuffle proxy times the total input.
    """
    calibration = (
        calibration
        if calibration is not None
        else calibrate_running_time_model(n_queries=16, base_input=3000, seed=seed)
    )
    model = calibration.model
    weights = LoadWeights()
    executor = DistributedBandJoinExecutor(weights=weights, cost_model=model)

    rows: list[list] = []
    errors: list[float] = []
    for workload in wl.table12_workloads():
        scaled = _scaled(workload, scale)
        s, t, condition = scaled.build()
        bounds = compute_lower_bounds(s, t, condition, scaled.workers, weights=weights)
        for partitioner in default_partitioners(weights=weights, cost_model=model, seed=seed):
            try:
                partitioning = partitioner.partition(s, t, condition, scaled.workers)
                execution = executor.execute(s, t, condition, partitioning, verify=verify)
            except ReproError:
                rows.append([scaled.name, partitioner.name, None, None, None])
                continue
            predicted = model.predict(
                execution.total_input,
                execution.max_worker_input,
                execution.max_worker_output,
            )
            actual = (
                execution.job.max_local_seconds
                + calibration.shuffle_cost_per_tuple * execution.total_input
            )
            if actual <= 0:
                continue
            error = (predicted - actual) / actual
            errors.append(error)
            rows.append([scaled.name, partitioner.name, predicted, actual, error])
    return TableReproduction(
        table_id="Table 12 / Figure 9",
        title="Running-time model accuracy (predicted vs measured join time)",
        custom_headers=["workload", "method", "predicted [s]", "actual [s]", "relative error"],
        custom_rows=rows,
        notes=[
            f"mean absolute relative error: {float(np.mean(np.abs(errors))):.3f}"
            if errors
            else "no timings collected"
        ],
    )


# ---------------------------------------------------------------------- #
# Table 15: dimensionality sweep
# ---------------------------------------------------------------------- #
def table15(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 15: multidimensional joins on pareto-1.5, d in {1, 2, 4, 8}."""
    return _run_table(
        "Table 15",
        "dimensionality sweep on pareto-1.5, band width 0.05 per dimension",
        wl.table15_workloads(),
        scale,
        verify,
        seed=seed,
        include_recpart_symmetric=True,
    )


# ---------------------------------------------------------------------- #
# Table 16: theoretical termination condition on PTF data
# ---------------------------------------------------------------------- #
def table16(scale: float = 1.0, verify: str = "none", seed: int = 0) -> TableReproduction:
    """Table 16: RecPart with the theoretical termination condition on PTF-like data."""
    weights = LoadWeights()
    cost_model = default_running_time_model()
    config = RecPartConfig(termination="theoretical")
    partitioners = [
        RecPartPartitioner(config=config, cost_model=cost_model, weights=weights, seed=seed),
        CSIOPartitioner(weights=weights, seed=seed),
        OneBucketPartitioner(weights=weights, seed=seed),
        GridEpsilonPartitioner(weights=weights, seed=seed),
    ]
    return _run_table(
        "Table 16",
        "PTF celestial matching, RecPart with the theoretical termination condition",
        wl.table16_workloads(),
        scale,
        verify,
        partitioners=partitioners,
        weights=weights,
        cost_model=cost_model,
        seed=seed,
    )


#: All table functions keyed by their public identifier (used by the CLI).
ALL_TABLES = {
    "2a": table2a,
    "2b": table2b,
    "2c": table2c,
    "3": table3,
    "4a": table4a,
    "4b": table4b,
    "4c": table4c,
    "4d": table4d,
    "5": table5,
    "6": table6,
    "7": table7,
    "8": table8,
    "9": table9,
    "12": table12,
    "15": table15,
    "16": table16,
}
