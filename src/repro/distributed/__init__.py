"""Simulated distributed execution substrate.

The paper runs its band-joins as MapReduce jobs on an Amazon EMR cluster.
This subpackage provides the laptop-scale substitute: a deterministic
simulator of the map -> shuffle -> reduce pipeline of Figure 5 that

* routes every input tuple through the partitioning under test (map phase),
* accounts for the shuffle volume (total input including duplicates),
* executes one *real* local band-join per partition unit (reduce phase),
  attributing input, output and measured CPU time to the owning worker,
* verifies correctness (total output matches the single-machine join, no
  output pair produced twice).

The per-worker accounting feeds both the success measures of the paper
(`I`, `I_m`, `O_m`, max worker load, overheads vs. the lower bounds) and the
running-time model used to report estimated join times.

The reduce phase is pluggable: by default the local joins run sequentially
in the driver (the historical simulated path), but the executor accepts an
``engine`` choice that dispatches them to a real :mod:`repro.engine`
backend (``serial``, ``threads`` or ``processes``) while producing the same
:class:`~repro.distributed.stats.JobStats` accounting.
"""

from repro.distributed.stats import JobStats, WorkerStats
from repro.distributed.cluster import SimulatedCluster, Worker
from repro.distributed.shuffle import ShuffleStats, simulate_shuffle
from repro.distributed.scheduler import Scheduler, GreedyScheduler, HashScheduler
from repro.distributed.executor import DistributedBandJoinExecutor, ExecutionResult

__all__ = [
    "JobStats",
    "WorkerStats",
    "SimulatedCluster",
    "Worker",
    "ShuffleStats",
    "simulate_shuffle",
    "Scheduler",
    "GreedyScheduler",
    "HashScheduler",
    "DistributedBandJoinExecutor",
    "ExecutionResult",
]
