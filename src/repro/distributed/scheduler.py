"""Partition-unit scheduling policies.

Most partitioners in this library decide the unit -> worker mapping
themselves (RecPart and CSIO via LPT over estimated loads, 1-Bucket by
construction).  The scheduler abstraction exists for the cases where a
partitioning only defines *units* and leaves their placement open (Grid-eps
produces many more grid cells than workers) and for ablation experiments
that compare placement policies.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.assignment import lpt_assignment, round_robin_assignment
from repro.exceptions import ExecutionError


class Scheduler(abc.ABC):
    """Maps partition units to workers."""

    name = "scheduler"

    @abc.abstractmethod
    def assign(self, unit_loads: np.ndarray, workers: int, rng: np.random.Generator) -> np.ndarray:
        """Return the worker id of every unit."""

    def _check(self, unit_loads: np.ndarray, workers: int) -> np.ndarray:
        loads = np.asarray(unit_loads, dtype=float)
        if workers < 1:
            raise ExecutionError("workers must be at least 1")
        if np.any(loads < 0):
            raise ExecutionError("unit loads must be non-negative")
        return loads


class GreedyScheduler(Scheduler):
    """Longest-processing-time greedy placement (default)."""

    name = "greedy-lpt"

    def assign(self, unit_loads: np.ndarray, workers: int, rng: np.random.Generator) -> np.ndarray:
        loads = self._check(unit_loads, workers)
        return lpt_assignment(loads, workers)


class HashScheduler(Scheduler):
    """Pseudo-random (hash) placement, as used by default Hadoop partitioners."""

    name = "hash"

    def assign(self, unit_loads: np.ndarray, workers: int, rng: np.random.Generator) -> np.ndarray:
        loads = self._check(unit_loads, workers)
        return rng.integers(0, workers, size=loads.shape[0], dtype=np.int64)


class RoundRobinScheduler(Scheduler):
    """Round-robin placement (unit ``i`` on worker ``i mod w``)."""

    name = "round-robin"

    def assign(self, unit_loads: np.ndarray, workers: int, rng: np.random.Generator) -> np.ndarray:
        loads = self._check(unit_loads, workers)
        return round_robin_assignment(loads.shape[0], workers)
