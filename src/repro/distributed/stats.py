"""Per-worker and per-job accounting of the simulated execution."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import LoadWeights
from repro.exceptions import ExecutionError


@dataclass
class WorkerStats:
    """Accounting of one simulated worker.

    Attributes
    ----------
    worker_id:
        Worker index in ``[0, w)``.
    input_s / input_t:
        Number of S- / T-tuples received (including duplicates).
    output:
        Number of output pairs produced by the worker's local joins.
    units:
        Number of partition units executed on the worker.
    local_seconds:
        Measured wall-clock time spent in the worker's local joins (these run
        sequentially in the simulator, so the values are comparable across
        workers even though no real parallelism happens).
    """

    worker_id: int
    input_s: int = 0
    input_t: int = 0
    output: int = 0
    units: int = 0
    local_seconds: float = 0.0

    @property
    def input_total(self) -> int:
        """Return the total number of input tuples received by the worker."""
        return self.input_s + self.input_t

    def load(self, weights: LoadWeights) -> float:
        """Return the worker's load under the paper's linear load model."""
        return weights.load(self.input_total, self.output)


@dataclass
class JobStats:
    """Aggregated statistics of one simulated distributed band-join."""

    workers: list[WorkerStats] = field(default_factory=list)
    total_output: int = 0
    baseline_input: int = 0

    def __post_init__(self) -> None:
        if not self.workers:
            raise ExecutionError("JobStats needs at least one worker entry")

    # ------------------------------------------------------------------ #
    # Aggregates used throughout the paper's tables
    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        """Return the number of workers."""
        return len(self.workers)

    @property
    def total_input(self) -> int:
        """Return total input ``I`` including duplicates."""
        return sum(w.input_total for w in self.workers)

    @property
    def duplication(self) -> int:
        """Return the absolute number of duplicate input tuples created."""
        return self.total_input - self.baseline_input

    @property
    def duplication_ratio(self) -> float:
        """Return ``(I - (|S|+|T|)) / (|S|+|T|)`` — the paper's input-overhead measure."""
        if self.baseline_input <= 0:
            return 0.0
        return self.duplication / self.baseline_input

    def worker_loads(self, weights: LoadWeights) -> np.ndarray:
        """Return the per-worker loads under the given weights."""
        return np.array([w.load(weights) for w in self.workers], dtype=float)

    def most_loaded_worker(self, weights: LoadWeights) -> WorkerStats:
        """Return the statistics of the most loaded worker."""
        loads = self.worker_loads(weights)
        return self.workers[int(np.argmax(loads))]

    def max_worker_load(self, weights: LoadWeights) -> float:
        """Return ``L_m`` — the maximum per-worker load."""
        loads = self.worker_loads(weights)
        return float(loads.max()) if loads.size else 0.0

    def max_worker_input(self, weights: LoadWeights) -> int:
        """Return ``I_m`` — the input of the most loaded worker."""
        return self.most_loaded_worker(weights).input_total

    def max_worker_output(self, weights: LoadWeights) -> int:
        """Return ``O_m`` — the output of the most loaded worker."""
        return self.most_loaded_worker(weights).output

    def load_imbalance(self, weights: LoadWeights) -> float:
        """Return max/mean per-worker load (the "Imbalance" column of Table 14)."""
        loads = self.worker_loads(weights)
        mean = float(loads.mean()) if loads.size else 0.0
        if mean == 0:
            return 1.0
        return float(loads.max()) / mean

    @property
    def max_local_seconds(self) -> float:
        """Return the largest measured local-join time across workers."""
        return max((w.local_seconds for w in self.workers), default=0.0)

    @property
    def total_local_seconds(self) -> float:
        """Return the sum of measured local-join times across workers."""
        return sum(w.local_seconds for w in self.workers)

    def as_dict(self, weights: LoadWeights) -> dict:
        """Return a JSON-friendly summary of the job."""
        return {
            "workers": self.n_workers,
            "total_input": self.total_input,
            "baseline_input": self.baseline_input,
            "duplication_ratio": self.duplication_ratio,
            "total_output": self.total_output,
            "max_worker_load": self.max_worker_load(weights),
            "max_worker_input": self.max_worker_input(weights),
            "max_worker_output": self.max_worker_output(weights),
            "load_imbalance": self.load_imbalance(weights),
        }


def merge_job_stats(jobs: "list[JobStats]") -> JobStats:
    """Merge per-worker accounting of several executions into one JobStats.

    Used by the serving layer to report one consolidated accounting for a
    query answered by multiple engine dispatches (the cached base join plus
    one delta join per appended side).  Worker lists are aligned by worker
    id; the merged job spans the widest worker range of its parts.
    """
    if not jobs:
        raise ExecutionError("merge_job_stats needs at least one job")
    n_workers = max(job.n_workers for job in jobs)
    merged = [WorkerStats(worker_id=i) for i in range(n_workers)]
    for job in jobs:
        for worker in job.workers:
            into = merged[worker.worker_id]
            into.input_s += worker.input_s
            into.input_t += worker.input_t
            into.output += worker.output
            into.units += worker.units
            into.local_seconds += worker.local_seconds
    return JobStats(
        workers=merged,
        total_output=sum(job.total_output for job in jobs),
        baseline_input=max(job.baseline_input for job in jobs),
    )
