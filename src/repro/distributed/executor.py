"""End-to-end execution of a distributed band-join.

:class:`DistributedBandJoinExecutor` takes a concrete
:class:`~repro.core.partitioner.JoinPartitioning` and executes the full
map -> shuffle -> reduce pipeline of paper Figure 5:

1. **Map / partition** — every S- and T-tuple is routed to the partition
   units that must receive it (one vectorised batch-routing pass,
   :mod:`repro.engine.routing`).
2. **Shuffle** — the routed copies are grouped by unit and accounted per
   worker (:mod:`repro.distributed.shuffle`).
3. **Reduce / local joins** — each worker's units are executed for real.
   With the default ``engine="simulated"`` they run sequentially in the
   driver against a :class:`~repro.distributed.cluster.SimulatedCluster`
   (bit-for-bit the historical behaviour); with ``engine="serial"``,
   ``"threads"`` or ``"processes"`` the reduce phase is dispatched to a
   real :mod:`repro.engine` backend and genuinely runs in parallel.
4. **Verification** (optional) — the total output is compared against the
   single-machine join, and with ``verify="pairs"`` the result sets are
   compared pair by pair, which also proves that no output is produced twice.

Either way the per-worker statistics land in the same
:class:`~repro.distributed.stats.JobStats`, so every metric and report is
engine-agnostic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.config import EngineConfig, LoadWeights
from repro.core.partitioner import JoinPartitioning
from repro.cost.model import RunningTimeModel
from repro.data.relation import Relation
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.shuffle import ShuffleStats, simulate_shuffle
from repro.distributed.stats import JobStats
from repro.engine.backends import SIMULATED, ExecutionBackend, get_backend
from repro.engine.routing import (
    WorkerTask,
    build_worker_tasks,
    dedup_workers,
    gather_task_inputs,
    route_side,
    unit_offset_step,
)
from repro.exceptions import ExecutionError
from repro.geometry.band import BandCondition
from repro.local_join import get_local_algorithm
from repro.local_join.base import LocalJoinAlgorithm, canonical_pair_order
from repro.local_join.index_nested_loop import IndexNestedLoopJoin


@dataclass
class ExecutionResult:
    """Outcome of one distributed band-join execution."""

    partitioning: JoinPartitioning
    job: JobStats
    shuffle_s: ShuffleStats
    shuffle_t: ShuffleStats
    weights: LoadWeights
    exact_output: int | None = None
    predicted_join_time: float | None = None
    pairs: np.ndarray | None = None
    backend: str = SIMULATED
    engine_seconds: float | None = None

    # ------------------------------------------------------------------ #
    # Paper-style measures
    # ------------------------------------------------------------------ #
    @property
    def total_input(self) -> int:
        """Return ``I``: total input including duplicates."""
        return self.job.total_input

    @property
    def duplication_ratio(self) -> float:
        """Return the input-duplication overhead ``(I - (|S|+|T|)) / (|S|+|T|)``."""
        return self.job.duplication_ratio

    @property
    def max_worker_input(self) -> int:
        """Return ``I_m``: input of the most loaded worker."""
        return self.job.max_worker_input(self.weights)

    @property
    def max_worker_output(self) -> int:
        """Return ``O_m``: output of the most loaded worker."""
        return self.job.max_worker_output(self.weights)

    @property
    def max_worker_load(self) -> float:
        """Return ``L_m``: the maximum per-worker load."""
        return self.job.max_worker_load(self.weights)

    @property
    def total_output(self) -> int:
        """Return the total number of output pairs produced."""
        return self.job.total_output

    @property
    def optimization_seconds(self) -> float:
        """Return the optimization time of the partitioning under execution."""
        return self.partitioning.stats.optimization_seconds

    def summary(self) -> dict:
        """Return a JSON-friendly summary row (one table cell group of the paper)."""
        info = self.job.as_dict(self.weights)
        info.update(
            {
                "method": self.partitioning.method,
                "backend": self.backend,
                "engine_seconds": self.engine_seconds,
                "optimization_seconds": self.optimization_seconds,
                "predicted_join_time": self.predicted_join_time,
                "exact_output": self.exact_output,
                "max_local_seconds": self.job.max_local_seconds,
            }
        )
        return info


class DistributedBandJoinExecutor:
    """Executes a band-join under a given partitioning.

    Parameters
    ----------
    algorithm:
        Local join algorithm used by every worker — an instance or a
        registry name (``"index-nested-loop"``, ``"sort-sweep"``,
        ``"iejoin-local"``, ``"nested-loop"``, ``"auto"``).
    weights:
        Load weights used for the per-worker load measures.
    cost_model:
        Optional running-time model; when given, the predicted join time of
        the executed partitioning is attached to the result.
    engine:
        Execution mode of the reduce phase: ``"simulated"`` (default, the
        sequential in-driver path), a real backend name (``"serial"``,
        ``"threads"``, ``"processes"``), an
        :class:`~repro.engine.backends.ExecutionBackend` instance, or an
        :class:`~repro.config.EngineConfig` (which also carries the kernel
        memory budget and a default local algorithm).
    """

    def __init__(
        self,
        algorithm: LocalJoinAlgorithm | str | None = None,
        weights: LoadWeights | None = None,
        cost_model: RunningTimeModel | None = None,
        engine: str | EngineConfig | ExecutionBackend | None = None,
    ) -> None:
        budget = None
        if isinstance(engine, EngineConfig):
            if algorithm is None:
                algorithm = engine.local_algorithm
            # Bind the budget on the algorithm itself so the simulated
            # (in-driver) path honours it too; real backends re-bind their
            # per-task share on dispatch.
            budget = engine.kernel_memory_budget
        self.algorithm = get_local_algorithm(algorithm, memory_budget=budget)
        self.weights = weights if weights is not None else LoadWeights()
        self.cost_model = cost_model
        self._backend = self._resolve_engine(engine)

    @staticmethod
    def _resolve_engine(
        engine: str | EngineConfig | ExecutionBackend | None,
    ) -> ExecutionBackend | None:
        """Return the engine backend, or ``None`` for the simulated path."""
        if engine is None or engine == SIMULATED:
            return None
        if isinstance(engine, EngineConfig):
            if engine.is_simulated:
                return None
            return get_backend(
                engine.backend,
                max_workers=engine.max_parallelism,
                memory_budget=engine.kernel_memory_budget,
            )
        return get_backend(engine)

    @property
    def backend_name(self) -> str:
        """Return the name of the active execution mode."""
        return self._backend.name if self._backend is not None else SIMULATED

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        partitioning: JoinPartitioning,
        cluster: SimulatedCluster | None = None,
        verify: str = "none",
        materialize: bool = False,
    ) -> ExecutionResult:
        """Execute the band-join under ``partitioning`` and return the accounting.

        Parameters
        ----------
        verify:
            ``"none"`` (default), ``"count"`` (total output must match the
            single-machine join) or ``"pairs"`` (full pair-by-pair check,
            which also detects duplicated output; implies materialisation).
        materialize:
            Materialise the output pairs (as original S/T row indices) on the
            result object.
        """
        if verify not in ("none", "count", "pairs"):
            raise ExecutionError("verify must be 'none', 'count' or 'pairs'")
        materialize = materialize or verify == "pairs"
        cluster = cluster if cluster is not None else SimulatedCluster(
            partitioning.workers, algorithm=self.algorithm
        )
        if cluster.n_workers != partitioning.workers:
            raise ExecutionError(
                f"cluster size {cluster.n_workers} does not match partitioning "
                f"workers {partitioning.workers}"
            )
        cluster.reset()
        attrs = condition.attributes
        s_matrix = s.join_matrix(attrs)
        t_matrix = t.join_matrix(attrs)

        s_routed = route_side(partitioning, s_matrix, "S")
        t_routed = route_side(partitioning, t_matrix, "T")

        # Shuffle volume and per-worker input follow Definition 1: a tuple
        # shipped to a worker counts once per worker, even when the worker
        # holds it in several partition units.
        s_dedup_workers = dedup_workers(partitioning, s_routed)
        t_dedup_workers = dedup_workers(partitioning, t_routed)
        shuffle_s = simulate_shuffle(s_dedup_workers, len(s), cluster.n_workers, s.num_columns)
        shuffle_t = simulate_shuffle(t_dedup_workers, len(t), cluster.n_workers, t.num_columns)
        s_per_worker = np.bincount(s_dedup_workers, minlength=cluster.n_workers)
        t_per_worker = np.bincount(t_dedup_workers, minlength=cluster.n_workers)
        for worker in cluster.workers:
            worker.stats.input_s = int(s_per_worker[worker.worker_id])
            worker.stats.input_t = int(t_per_worker[worker.worker_id])

        offset_step = unit_offset_step(s_matrix, t_matrix, condition)
        tasks = build_worker_tasks(partitioning, s_routed, t_routed, offset_step)

        engine_seconds: float | None = None
        if self._backend is None:
            pairs = self._run_tasks_simulated(
                cluster, condition, tasks, s_matrix, t_matrix, materialize
            )
        else:
            pairs, engine_seconds = self._run_tasks_engine(
                cluster, condition, tasks, s_matrix, t_matrix, materialize
            )

        job = JobStats(
            workers=cluster.worker_stats(),
            total_output=sum(w.output for w in cluster.worker_stats()),
            baseline_input=len(s) + len(t),
        )
        exact_output = None
        if verify != "none":
            exact_output = self._verify(s_matrix, t_matrix, condition, job, pairs, verify)

        predicted = None
        if self.cost_model is not None:
            predicted = self.cost_model.predict(
                job.total_input,
                job.max_worker_input(self.weights),
                job.max_worker_output(self.weights),
            )
        return ExecutionResult(
            partitioning=partitioning,
            job=job,
            shuffle_s=shuffle_s,
            shuffle_t=shuffle_t,
            weights=self.weights,
            exact_output=exact_output,
            predicted_join_time=predicted,
            pairs=pairs if materialize else None,
            backend=self.backend_name,
            engine_seconds=engine_seconds,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _run_tasks_simulated(
        self,
        cluster: SimulatedCluster,
        condition: BandCondition,
        tasks: list[WorkerTask],
        s_matrix: np.ndarray,
        t_matrix: np.ndarray,
        materialize: bool,
    ) -> np.ndarray | None:
        """Run every worker's batched local join sequentially in the driver.

        Each task's work is attributed to its owning simulated worker, so
        the per-worker statistics are exactly what a parallel run would
        produce even though the units execute one after another.
        """
        all_pairs: list[np.ndarray] = []
        for task in tasks:
            worker = cluster.workers[task.worker_id]
            if task.s_rows.size == 0 or task.t_rows.size == 0:
                worker.stats.units += task.n_units
                continue
            worker_s, worker_t = gather_task_inputs(task, s_matrix, t_matrix)
            result = worker.execute_unit(
                worker_s, worker_t, condition, materialize=materialize, units=task.n_units
            )
            if materialize and isinstance(result, np.ndarray) and result.size:
                all_pairs.append(
                    np.column_stack(
                        [task.s_rows[result[:, 0]], task.t_rows[result[:, 1]]]
                    )
                )
        if not materialize:
            return None
        if not all_pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(all_pairs)

    def _run_tasks_engine(
        self,
        cluster: SimulatedCluster,
        condition: BandCondition,
        tasks: list[WorkerTask],
        s_matrix: np.ndarray,
        t_matrix: np.ndarray,
        materialize: bool,
    ) -> tuple[np.ndarray | None, float]:
        """Dispatch the worker tasks to the configured engine backend.

        The local join runs with the cluster's algorithm — the same one the
        simulated path executes through its workers — so a caller-supplied
        cluster with a custom algorithm behaves identically on every engine.
        """
        start = time.perf_counter()
        outcomes = self._backend.run(
            tasks, s_matrix, t_matrix, condition, cluster.algorithm, materialize
        )
        engine_seconds = time.perf_counter() - start
        all_pairs: list[np.ndarray] = []
        for outcome in outcomes:
            stats = cluster.workers[outcome.worker_id].stats
            stats.units += outcome.n_units
            stats.output += outcome.output
            stats.local_seconds += outcome.local_seconds
            if materialize and outcome.pairs is not None and outcome.pairs.size:
                all_pairs.append(outcome.pairs)
        if not materialize:
            return None, engine_seconds
        if not all_pairs:
            return np.empty((0, 2), dtype=np.int64), engine_seconds
        return np.concatenate(all_pairs), engine_seconds

    def _verify(
        self,
        s_matrix: np.ndarray,
        t_matrix: np.ndarray,
        condition: BandCondition,
        job: JobStats,
        pairs: np.ndarray | None,
        verify: str,
    ) -> int:
        """Check the distributed result against a single-machine reference join."""
        reference_algorithm = IndexNestedLoopJoin()
        if verify == "count":
            exact = reference_algorithm.count(s_matrix, t_matrix, condition)
            if exact != job.total_output:
                raise ExecutionError(
                    f"distributed output {job.total_output} does not match the "
                    f"single-machine join output {exact}"
                )
            return int(exact)
        reference = canonical_pair_order(
            reference_algorithm.join(s_matrix, t_matrix, condition)
        )
        if pairs is None:
            raise ExecutionError("pair verification requires materialised output")
        produced = canonical_pair_order(pairs)
        if produced.shape != reference.shape or not np.array_equal(produced, reference):
            raise ExecutionError(
                "distributed output pairs do not match the single-machine join "
                f"({produced.shape[0]} produced vs {reference.shape[0]} expected)"
            )
        return int(reference.shape[0])
