"""End-to-end simulated execution of a distributed band-join.

:class:`DistributedBandJoinExecutor` takes a concrete
:class:`~repro.core.partitioner.JoinPartitioning` and executes the full
map -> shuffle -> reduce pipeline of paper Figure 5 against a
:class:`~repro.distributed.cluster.SimulatedCluster`:

1. **Map / partition** — every S- and T-tuple is routed to the partition
   units that must receive it (calling the partitioning's ``route``).
2. **Shuffle** — the routed copies are grouped by unit and accounted per
   worker (:mod:`repro.distributed.shuffle`).
3. **Reduce / local joins** — each unit's band-join is executed for real on
   its owning worker; input, output and measured time accumulate in the
   worker statistics.
4. **Verification** (optional) — the total output is compared against the
   single-machine join, and with ``verify="pairs"`` the result sets are
   compared pair by pair, which also proves that no output is produced twice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LoadWeights
from repro.core.partitioner import JoinPartitioning
from repro.cost.model import RunningTimeModel
from repro.data.relation import Relation
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.shuffle import ShuffleStats, simulate_shuffle
from repro.distributed.stats import JobStats
from repro.exceptions import ExecutionError
from repro.geometry.band import BandCondition
from repro.local_join.base import LocalJoinAlgorithm, canonical_pair_order
from repro.local_join.index_nested_loop import IndexNestedLoopJoin


@dataclass
class ExecutionResult:
    """Outcome of one simulated distributed band-join execution."""

    partitioning: JoinPartitioning
    job: JobStats
    shuffle_s: ShuffleStats
    shuffle_t: ShuffleStats
    weights: LoadWeights
    exact_output: int | None = None
    predicted_join_time: float | None = None
    pairs: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Paper-style measures
    # ------------------------------------------------------------------ #
    @property
    def total_input(self) -> int:
        """Return ``I``: total input including duplicates."""
        return self.job.total_input

    @property
    def duplication_ratio(self) -> float:
        """Return the input-duplication overhead ``(I - (|S|+|T|)) / (|S|+|T|)``."""
        return self.job.duplication_ratio

    @property
    def max_worker_input(self) -> int:
        """Return ``I_m``: input of the most loaded worker."""
        return self.job.max_worker_input(self.weights)

    @property
    def max_worker_output(self) -> int:
        """Return ``O_m``: output of the most loaded worker."""
        return self.job.max_worker_output(self.weights)

    @property
    def max_worker_load(self) -> float:
        """Return ``L_m``: the maximum per-worker load."""
        return self.job.max_worker_load(self.weights)

    @property
    def total_output(self) -> int:
        """Return the total number of output pairs produced."""
        return self.job.total_output

    @property
    def optimization_seconds(self) -> float:
        """Return the optimization time of the partitioning under execution."""
        return self.partitioning.stats.optimization_seconds

    def summary(self) -> dict:
        """Return a JSON-friendly summary row (one table cell group of the paper)."""
        info = self.job.as_dict(self.weights)
        info.update(
            {
                "method": self.partitioning.method,
                "optimization_seconds": self.optimization_seconds,
                "predicted_join_time": self.predicted_join_time,
                "exact_output": self.exact_output,
                "max_local_seconds": self.job.max_local_seconds,
            }
        )
        return info


class DistributedBandJoinExecutor:
    """Simulates the distributed execution of a band-join under a given partitioning.

    Parameters
    ----------
    algorithm:
        Local join algorithm used by every worker.
    weights:
        Load weights used for the per-worker load measures.
    cost_model:
        Optional running-time model; when given, the predicted join time of
        the executed partitioning is attached to the result.
    """

    def __init__(
        self,
        algorithm: LocalJoinAlgorithm | None = None,
        weights: LoadWeights | None = None,
        cost_model: RunningTimeModel | None = None,
    ) -> None:
        self.algorithm = algorithm if algorithm is not None else IndexNestedLoopJoin()
        self.weights = weights if weights is not None else LoadWeights()
        self.cost_model = cost_model

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        partitioning: JoinPartitioning,
        cluster: SimulatedCluster | None = None,
        verify: str = "none",
        materialize: bool = False,
    ) -> ExecutionResult:
        """Execute the band-join under ``partitioning`` and return the accounting.

        Parameters
        ----------
        verify:
            ``"none"`` (default), ``"count"`` (total output must match the
            single-machine join) or ``"pairs"`` (full pair-by-pair check,
            which also detects duplicated output; implies materialisation).
        materialize:
            Materialise the output pairs (as original S/T row indices) on the
            result object.
        """
        if verify not in ("none", "count", "pairs"):
            raise ExecutionError("verify must be 'none', 'count' or 'pairs'")
        materialize = materialize or verify == "pairs"
        cluster = cluster if cluster is not None else SimulatedCluster(
            partitioning.workers, algorithm=self.algorithm
        )
        if cluster.n_workers != partitioning.workers:
            raise ExecutionError(
                f"cluster size {cluster.n_workers} does not match partitioning "
                f"workers {partitioning.workers}"
            )
        cluster.reset()
        attrs = condition.attributes
        s_matrix = s.join_matrix(attrs)
        t_matrix = t.join_matrix(attrs)

        s_rows, s_units = partitioning.route(s_matrix, "S")
        t_rows, t_units = partitioning.route(t_matrix, "T")
        self._check_routing(s_rows, len(s), "S", partitioning)
        self._check_routing(t_rows, len(t), "T", partitioning)

        owners = partitioning.unit_workers()
        # Shuffle volume and per-worker input follow Definition 1: a tuple
        # shipped to a worker counts once per worker, even when the worker
        # holds it in several partition units.
        s_dedup_workers = self._dedup_worker_copies(s_rows, owners[s_units], cluster.n_workers)
        t_dedup_workers = self._dedup_worker_copies(t_rows, owners[t_units], cluster.n_workers)
        shuffle_s = simulate_shuffle(s_dedup_workers, len(s), cluster.n_workers, s.num_columns)
        shuffle_t = simulate_shuffle(t_dedup_workers, len(t), cluster.n_workers, t.num_columns)
        s_per_worker = np.bincount(s_dedup_workers, minlength=cluster.n_workers)
        t_per_worker = np.bincount(t_dedup_workers, minlength=cluster.n_workers)
        for worker in cluster.workers:
            worker.stats.input_s = int(s_per_worker[worker.worker_id])
            worker.stats.input_t = int(t_per_worker[worker.worker_id])

        pairs = self._run_units(
            cluster,
            condition,
            partitioning,
            s_matrix,
            t_matrix,
            s_rows,
            s_units,
            t_rows,
            t_units,
            materialize,
        )

        job = JobStats(
            workers=cluster.worker_stats(),
            total_output=sum(w.output for w in cluster.worker_stats()),
            baseline_input=len(s) + len(t),
        )
        exact_output = None
        if verify != "none":
            exact_output = self._verify(s_matrix, t_matrix, condition, job, pairs, verify)

        predicted = None
        if self.cost_model is not None:
            predicted = self.cost_model.predict(
                job.total_input,
                job.max_worker_input(self.weights),
                job.max_worker_output(self.weights),
            )
        return ExecutionResult(
            partitioning=partitioning,
            job=job,
            shuffle_s=shuffle_s,
            shuffle_t=shuffle_t,
            weights=self.weights,
            exact_output=exact_output,
            predicted_join_time=predicted,
            pairs=pairs if materialize else None,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_routing(
        rows: np.ndarray, n_original: int, side: str, partitioning: JoinPartitioning
    ) -> None:
        """Every original tuple must reach at least one unit."""
        if n_original == 0:
            return
        covered = np.zeros(n_original, dtype=bool)
        covered[rows] = True
        if not covered.all():
            missing = int(np.count_nonzero(~covered))
            raise ExecutionError(
                f"{missing} {side}-tuples were not routed to any unit by "
                f"{partitioning.method!r}"
            )

    @staticmethod
    def _dedup_worker_copies(rows: np.ndarray, workers_per_copy: np.ndarray, n_workers: int) -> np.ndarray:
        """Collapse (tuple, worker) copies so each tuple counts once per worker.

        Returns the worker id of every retained copy (suitable for bincount).
        """
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        combined = rows.astype(np.int64) * n_workers + workers_per_copy.astype(np.int64)
        unique = np.unique(combined)
        return (unique % n_workers).astype(np.int64)

    @staticmethod
    def _group_by_unit(rows: np.ndarray, units: np.ndarray, n_units: int):
        """Group routed row indices by unit id; returns (sorted_rows, boundaries)."""
        order = np.argsort(units, kind="stable")
        sorted_units = units[order]
        sorted_rows = rows[order]
        boundaries = np.searchsorted(sorted_units, np.arange(n_units + 1))
        return sorted_rows, boundaries

    def _run_units(
        self,
        cluster: SimulatedCluster,
        condition: BandCondition,
        partitioning: JoinPartitioning,
        s_matrix: np.ndarray,
        t_matrix: np.ndarray,
        s_rows: np.ndarray,
        s_units: np.ndarray,
        t_rows: np.ndarray,
        t_units: np.ndarray,
        materialize: bool,
    ) -> np.ndarray | None:
        """Execute every partition unit's local join on its owning worker.

        All units owned by one worker are executed in a single batched local
        join: each unit's tuples are shifted by a per-unit offset in the first
        join dimension that is larger than the data spread plus the band
        width, so tuples from different units can never join while pairs
        inside a unit are unaffected.  This is numerically equivalent to
        running one local join per unit but avoids per-unit call overhead
        (grid partitionings can produce hundreds of thousands of tiny units).
        """
        n_units = partitioning.n_units
        owners = partitioning.unit_workers()
        s_sorted, s_bounds = self._group_by_unit(s_rows, s_units, n_units)
        t_sorted, t_bounds = self._group_by_unit(t_rows, t_units, n_units)
        offset_step = self._unit_offset_step(s_matrix, t_matrix, condition)

        all_pairs: list[np.ndarray] = []
        for worker in cluster.workers:
            unit_ids = np.nonzero(owners == worker.worker_id)[0]
            if unit_ids.size == 0:
                continue
            worker.stats.units += int(unit_ids.size)
            worker_s_rows, s_offsets = self._gather_worker_side(
                unit_ids, s_sorted, s_bounds, offset_step
            )
            worker_t_rows, t_offsets = self._gather_worker_side(
                unit_ids, t_sorted, t_bounds, offset_step
            )
            if worker_s_rows.size == 0 or worker_t_rows.size == 0:
                continue
            worker_s = s_matrix[worker_s_rows].copy()
            worker_t = t_matrix[worker_t_rows].copy()
            worker_s[:, 0] += s_offsets
            worker_t[:, 0] += t_offsets
            result = worker.execute_unit(worker_s, worker_t, condition, materialize=materialize)
            if materialize and isinstance(result, np.ndarray) and result.size:
                all_pairs.append(
                    np.column_stack(
                        [worker_s_rows[result[:, 0]], worker_t_rows[result[:, 1]]]
                    )
                )
        if not materialize:
            return None
        if not all_pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(all_pairs)

    @staticmethod
    def _unit_offset_step(
        s_matrix: np.ndarray, t_matrix: np.ndarray, condition: BandCondition
    ) -> float:
        """Return a per-unit shift of the first join dimension that no band can bridge."""
        predicate = condition.predicates[0]
        spreads = []
        for matrix in (s_matrix, t_matrix):
            if matrix.shape[0]:
                spreads.append(float(matrix[:, 0].max() - matrix[:, 0].min()))
        spread = max(spreads) if spreads else 1.0
        return spread + predicate.eps_left + predicate.eps_right + 1.0

    @staticmethod
    def _gather_worker_side(
        unit_ids: np.ndarray,
        sorted_rows: np.ndarray,
        bounds: np.ndarray,
        offset_step: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Collect one relation side of a worker's units plus per-tuple unit offsets."""
        lengths = bounds[unit_ids + 1] - bounds[unit_ids]
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        pieces = [
            sorted_rows[bounds[unit] : bounds[unit + 1]]
            for unit, length in zip(unit_ids, lengths)
            if length
        ]
        rows = np.concatenate(pieces)
        local_index = np.repeat(np.arange(unit_ids.size), lengths)
        return rows, local_index.astype(float) * offset_step

    def _verify(
        self,
        s_matrix: np.ndarray,
        t_matrix: np.ndarray,
        condition: BandCondition,
        job: JobStats,
        pairs: np.ndarray | None,
        verify: str,
    ) -> int:
        """Check the distributed result against a single-machine reference join."""
        reference_algorithm = IndexNestedLoopJoin()
        if verify == "count":
            exact = reference_algorithm.count(s_matrix, t_matrix, condition)
            if exact != job.total_output:
                raise ExecutionError(
                    f"distributed output {job.total_output} does not match the "
                    f"single-machine join output {exact}"
                )
            return int(exact)
        reference = canonical_pair_order(
            reference_algorithm.join(s_matrix, t_matrix, condition)
        )
        if pairs is None:
            raise ExecutionError("pair verification requires materialised output")
        produced = canonical_pair_order(pairs)
        if produced.shape != reference.shape or not np.array_equal(produced, reference):
            raise ExecutionError(
                "distributed output pairs do not match the single-machine join "
                f"({produced.shape[0]} produced vs {reference.shape[0]} expected)"
            )
        return int(reference.shape[0])
