"""Shuffle simulation.

In the MapReduce pipeline of Figure 5 the map phase reads the whole input
and the shuffle moves every (possibly duplicated) tuple to the worker that
owns its partition unit.  The simulator does not move bytes over a network,
but it accounts for exactly the quantities that determine shuffle time in
the paper's model: the number of tuples (and estimated bytes) each worker
receives, and the total volume ``I``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExecutionError

#: Assumed on-the-wire size of one tuple in bytes (one double per column plus
#: framing overhead); only used for reporting, never for decisions.
BYTES_PER_VALUE: float = 8.0
TUPLE_OVERHEAD_BYTES: float = 16.0


@dataclass(frozen=True)
class ShuffleStats:
    """Volume of one relation side's shuffle.

    Attributes
    ----------
    tuples_per_worker:
        Number of tuples (including duplicates) received per worker.
    total_tuples:
        Total number of shuffled tuples of this side.
    total_bytes:
        Estimated shuffled bytes of this side.
    replication_factor:
        ``total_tuples / original_tuples`` (1.0 means no duplication).
    """

    tuples_per_worker: np.ndarray
    total_tuples: int
    total_bytes: float
    replication_factor: float

    @property
    def max_tuples_on_worker(self) -> int:
        """Return the largest per-worker tuple count."""
        return int(self.tuples_per_worker.max()) if self.tuples_per_worker.size else 0


def simulate_shuffle(
    worker_ids: np.ndarray,
    n_original: int,
    workers: int,
    n_columns: int,
) -> ShuffleStats:
    """Aggregate a routed relation side into shuffle statistics.

    Parameters
    ----------
    worker_ids:
        Destination worker of every shuffled tuple copy (one entry per copy).
    n_original:
        Number of tuples of the side before duplication.
    workers:
        Number of workers.
    n_columns:
        Number of columns shipped per tuple (for the byte estimate).
    """
    if workers < 1:
        raise ExecutionError("workers must be at least 1")
    if n_original < 0:
        raise ExecutionError("n_original must be non-negative")
    worker_ids = np.asarray(worker_ids)
    if worker_ids.size and (worker_ids.min() < 0 or worker_ids.max() >= workers):
        raise ExecutionError("worker ids out of range during shuffle")
    per_worker = np.bincount(worker_ids, minlength=workers)
    total = int(per_worker.sum())
    bytes_per_tuple = n_columns * BYTES_PER_VALUE + TUPLE_OVERHEAD_BYTES
    replication = total / n_original if n_original > 0 else 1.0
    return ShuffleStats(
        tuples_per_worker=per_worker,
        total_tuples=total,
        total_bytes=float(total * bytes_per_tuple),
        replication_factor=float(replication),
    )
