"""Simulated cluster and workers.

A :class:`SimulatedCluster` is a collection of :class:`Worker` objects that
execute the local joins of the partition units assigned to them and keep the
same accounting a real worker would report (input received per relation,
output produced, measured local CPU time).

The simulation is sequential — units run one after another in the driver
process — but because each unit's work is attributed to its owning worker the
per-worker statistics are exactly what a parallel run would produce, and the
maximum per-worker measured time is the simulator's stand-in for the reduce
phase's wall-clock duration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.distributed.stats import WorkerStats
from repro.exceptions import ExecutionError
from repro.geometry.band import BandCondition
from repro.local_join.base import LocalJoinAlgorithm
from repro.local_join.index_nested_loop import IndexNestedLoopJoin


@dataclass
class Worker:
    """One simulated worker machine."""

    worker_id: int
    algorithm: LocalJoinAlgorithm = field(default_factory=IndexNestedLoopJoin)
    stats: WorkerStats = field(init=False)

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ExecutionError("worker_id must be non-negative")
        self.stats = WorkerStats(worker_id=self.worker_id)

    def execute_unit(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
        materialize: bool = False,
        units: int = 1,
    ) -> int | np.ndarray:
        """Run the local band-join of one partition unit on this worker.

        Returns the output count (default) or the materialised pairs.  Output
        and elapsed time are added to the worker's statistics; input counts
        are accounted separately by the executor (per Definition 1 a tuple
        shipped to a worker counts once, even when the worker processes it in
        several of its partition units).  ``units`` is the number of
        partition units batched into this call (the executor batches every
        unit of a worker into one offset-shifted local join).
        """
        start = time.perf_counter()
        if materialize:
            result = self.algorithm.join(s_values, t_values, condition)
            produced = int(result.shape[0])
        else:
            result = self.algorithm.count(s_values, t_values, condition)
            produced = int(result)
        elapsed = time.perf_counter() - start

        self.stats.output += produced
        self.stats.units += units
        self.stats.local_seconds += elapsed
        return result

    def reset(self) -> None:
        """Clear the worker's accumulated statistics."""
        self.stats = WorkerStats(worker_id=self.worker_id)


class SimulatedCluster:
    """A fixed-size pool of simulated workers.

    Parameters
    ----------
    n_workers:
        Cluster size ``w``.
    algorithm:
        Local join algorithm every worker runs (the paper's index-nested-loop
        join by default).
    """

    def __init__(self, n_workers: int, algorithm: LocalJoinAlgorithm | None = None) -> None:
        if n_workers < 1:
            raise ExecutionError("a cluster needs at least one worker")
        algorithm = algorithm if algorithm is not None else IndexNestedLoopJoin()
        self.algorithm = algorithm
        self.workers = [Worker(worker_id=i, algorithm=algorithm) for i in range(n_workers)]

    @property
    def n_workers(self) -> int:
        """Return the cluster size."""
        return len(self.workers)

    def worker(self, worker_id: int) -> Worker:
        """Return one worker by id."""
        if not 0 <= worker_id < self.n_workers:
            raise ExecutionError(f"worker id {worker_id} out of range")
        return self.workers[worker_id]

    def reset(self) -> None:
        """Clear the statistics of every worker (between jobs)."""
        for worker in self.workers:
            worker.reset()

    def worker_stats(self) -> list[WorkerStats]:
        """Return the current statistics of every worker."""
        return [w.stats for w in self.workers]

    def __repr__(self) -> str:
        return f"SimulatedCluster(n_workers={self.n_workers}, algorithm={self.algorithm.name})"
