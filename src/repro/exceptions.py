"""Exception hierarchy for the band-join reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the library with a single ``except`` clause
while still being able to distinguish configuration problems from data
problems or optimizer failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SchemaError(ReproError):
    """A relation or band condition refers to attributes that do not exist,
    or two relations that must be join-compatible are not."""


class BandConditionError(ReproError):
    """A band condition is malformed (negative width, wrong dimensionality,
    unknown attribute)."""


class PartitioningError(ReproError):
    """A partitioner produced an invalid partitioning (e.g. a tuple routed to
    no worker, or an output pair covered by zero or more than one worker)."""


class OptimizationError(ReproError):
    """The optimization phase of a partitioner failed to converge or was
    given parameters it cannot work with (e.g. zero workers)."""


class SamplingError(ReproError):
    """A sampler was asked for an impossible sample (e.g. output sample from
    an empty join) or its rejection loop failed to make progress."""


class CostModelError(ReproError):
    """The running-time model is used before calibration or calibrated with
    degenerate training data."""


class ExecutionError(ReproError):
    """The simulated distributed execution detected an inconsistency, e.g.
    duplicate output pairs produced by two different workers."""


class WorkloadError(ReproError):
    """An experiment workload definition is inconsistent."""


class ServiceError(ReproError):
    """The band-join serving layer was used incorrectly (unknown relation or
    prepared query, malformed request, operation on a closed service)."""


class ServiceOverloadError(ServiceError):
    """The query scheduler rejected a request because the admission-control
    limit on pending queries was reached; retry after in-flight work drains."""


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before its execution finished; the
    caller set a per-request (or service-default) deadline and the scheduler
    or an execution backend gave up rather than tie up a worker."""


class CorruptSegmentError(ReproError):
    """An on-disk column segment failed validation on open (missing file,
    truncated payload, row-count or checksum mismatch).  Raised instead of
    silently serving wrong data; the writer path recovers by rewriting."""
