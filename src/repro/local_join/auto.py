"""Adaptive local-join kernel selection.

No single local kernel wins everywhere: the chunked interval kernel
(sort-sweep / IEJoin) is far ahead when the band is narrow relative to the
data spread, but when nearly everything joins with everything the sorting
and window bookkeeping is pure overhead over the blocked all-pairs mask —
and for tiny inputs a single vectorized block beats both.

:class:`AutoJoin` prices these regimes with the sampled per-dimension window
fractions of :mod:`repro.sampling.selectivity` (one ``searchsorted`` pair
over a small deterministic subsample per dimension) and dispatches:

* **tiny** (``|S| * |T|`` at or below ``tiny_pairs``) — blocked nested loop,
  one mask evaluation covers the whole cross product;
* **dense** (best window fraction at or above ``dense_fraction``) — blocked
  nested loop, the windows would cover most of the other side anyway;
* otherwise — the chunked interval kernel swept on the *most selective*
  dimension (the smallest window fraction).

The selection is observable through :meth:`select` and :attr:`last_choice`
so experiments and benchmarks can report which kernel actually ran.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.band import BandCondition
from repro.local_join import kernels
from repro.local_join.base import LocalJoinAlgorithm, as_matrix
from repro.local_join.nested_loop import NestedLoopJoin
from repro.local_join.sort_band import SortSweepJoin

#: Below this many candidate pairs the blocked all-pairs mask is one numpy
#: call and always competitive — skip the selectivity probe entirely.
DEFAULT_TINY_PAIRS: int = 16_384

#: Window fraction past which the interval windows stop being selective and
#: the blocked nested loop's simpler memory traffic wins.
DEFAULT_DENSE_FRACTION: float = 0.5


class AutoJoin(LocalJoinAlgorithm):
    """Selectivity-driven dispatch over the local band-join kernels.

    Parameters
    ----------
    memory_budget:
        Byte budget handed to the chosen interval kernel.
    sample_size:
        Per-side subsample size of the selectivity probe.
    tiny_pairs / dense_fraction:
        Regime thresholds (see module docstring).
    """

    name = "auto"

    def __init__(
        self,
        memory_budget: int = kernels.DEFAULT_MEMORY_BUDGET,
        sample_size: int | None = None,
        tiny_pairs: int = DEFAULT_TINY_PAIRS,
        dense_fraction: float = DEFAULT_DENSE_FRACTION,
    ) -> None:
        if memory_budget < 1:
            raise ValueError("memory_budget must be positive")
        if tiny_pairs < 0:
            raise ValueError("tiny_pairs must be non-negative")
        if not 0 < dense_fraction <= 1:
            raise ValueError("dense_fraction must be in (0, 1]")
        self.memory_budget = memory_budget
        self.sample_size = sample_size
        self.tiny_pairs = tiny_pairs
        self.dense_fraction = dense_fraction
        #: Name of the kernel chosen by the most recent join()/count() call.
        self.last_choice: str | None = None

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def select(
        self,
        s_arr: np.ndarray,
        t_arr: np.ndarray,
        condition: BandCondition,
    ) -> LocalJoinAlgorithm:
        """Return the kernel this input would run on (without running it)."""
        kernel, _ = self.decision(s_arr, t_arr, condition)
        return kernel

    def decision(
        self,
        s_arr: np.ndarray,
        t_arr: np.ndarray,
        condition: BandCondition,
    ) -> tuple[LocalJoinAlgorithm, dict]:
        """Return ``(kernel, decision info)`` without running anything.

        The info dict is the EXPLAIN surface of the selector: the regime
        that fired, the thresholds it was priced against, the sampled
        per-dimension window fractions (``None`` in the tiny regime, which
        skips the probe) and one entry per *rejected* alternative with the
        reason it lost.
        """
        from repro.sampling.selectivity import (
            DEFAULT_SELECTIVITY_SAMPLE,
            window_fractions,
        )

        n_pairs = s_arr.shape[0] * t_arr.shape[0]
        info: dict = {
            "n_pairs": int(n_pairs),
            "tiny_pairs": self.tiny_pairs,
            "dense_fraction": self.dense_fraction,
            "window_fractions": None,
            "sweep_dimension": None,
        }
        if n_pairs <= self.tiny_pairs:
            info.update(
                chosen="nested-loop",
                regime="tiny",
                rejected=[
                    {
                        "kernel": "sort-sweep",
                        "reason": f"cross product of {n_pairs} pairs is at or below "
                        f"tiny_pairs={self.tiny_pairs}; one blocked mask wins",
                    }
                ],
            )
            return NestedLoopJoin(), info
        sample_size = (
            self.sample_size if self.sample_size is not None else DEFAULT_SELECTIVITY_SAMPLE
        )
        fractions = window_fractions(s_arr, t_arr, condition, sample_size)
        best_dim = int(np.argmin(fractions))
        best = float(fractions[best_dim])
        info["window_fractions"] = [float(f) for f in fractions]
        if best >= self.dense_fraction:
            info.update(
                chosen="nested-loop",
                regime="dense",
                rejected=[
                    {
                        "kernel": "sort-sweep",
                        "reason": f"best window fraction {best:.3f} is at or above "
                        f"dense_fraction={self.dense_fraction}; windows are not selective",
                    }
                ],
            )
            return NestedLoopJoin(), info
        info.update(
            chosen="sort-sweep",
            regime="selective",
            sweep_dimension=best_dim,
            rejected=[
                {
                    "kernel": "nested-loop",
                    "reason": f"best window fraction {best:.3f} on dimension {best_dim} "
                    f"is below dense_fraction={self.dense_fraction}",
                }
            ],
        )
        return (
            SortSweepJoin(sweep_dimension=best_dim, memory_budget=self.memory_budget),
            info,
        )

    def _dispatch(self, s_values, t_values, condition) -> tuple:
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        chosen = self.select(s_arr, t_arr, condition)
        self.last_choice = chosen.name
        return s_arr, t_arr, chosen

    # ------------------------------------------------------------------ #
    # LocalJoinAlgorithm API
    # ------------------------------------------------------------------ #
    def join(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> np.ndarray:
        s_arr, t_arr, chosen = self._dispatch(s_values, t_values, condition)
        return chosen.join(s_arr, t_arr, condition)

    def count(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> int:
        s_arr, t_arr, chosen = self._dispatch(s_values, t_values, condition)
        return chosen.count(s_arr, t_arr, condition)

    def __repr__(self) -> str:
        return (
            f"AutoJoin(memory_budget={self.memory_budget}, "
            f"tiny_pairs={self.tiny_pairs}, dense_fraction={self.dense_fraction})"
        )
