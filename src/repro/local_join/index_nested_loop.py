"""Index-nested-loop band join (the paper's local algorithm).

Section 6.1 of the paper describes the local algorithm used on every worker:
range-partition (sort) T on the most selective join dimension ``A1``, then
for each ``s`` use binary search to find the T-range containing ``s`` and
check the full band condition only against T-tuples in the adjacent ranges.

The implementation below is the vectorised equivalent, built on the shared
chunked interval kernel (:mod:`repro.local_join.kernels`): T is sorted on
the index dimension once, the candidate window of every S-tuple comes from
one ``searchsorted`` pair, and S is processed in chunks sized by a memory
budget so the candidate-pair buffer stays bounded.  The remaining dimensions
are verified with a vectorised filter over each candidate chunk.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.band import BandCondition
from repro.local_join import kernels
from repro.local_join.base import LocalJoinAlgorithm, as_matrix, empty_pairs


class IndexNestedLoopJoin(LocalJoinAlgorithm):
    """Sorted-index candidate lookup on one dimension plus residual filtering.

    Parameters
    ----------
    index_dimension:
        Dimension used for the sorted index.  ``None`` picks the dimension
        with the largest spread-to-band-width ratio (the most selective one),
        mirroring the paper's "A1 is the most selective dimension" choice.
    max_candidates_per_chunk:
        Upper bound on the number of candidate pairs buffered at once.
    memory_budget:
        Alternative byte-denominated bound; when set it overrides
        ``max_candidates_per_chunk`` (this is what execution backends tune
        when several kernels share a machine).
    """

    name = "index-nested-loop"

    def __init__(
        self,
        index_dimension: int | None = None,
        max_candidates_per_chunk: int = 4_000_000,
        memory_budget: int | None = None,
    ) -> None:
        if max_candidates_per_chunk < 1:
            raise ValueError("max_candidates_per_chunk must be positive")
        if memory_budget is not None and memory_budget < 1:
            raise ValueError("memory_budget must be positive")
        self.index_dimension = index_dimension
        self.max_candidates_per_chunk = max_candidates_per_chunk
        self.memory_budget = memory_budget

    def _kernel_budget(self) -> int:
        """Return the byte budget (the legacy candidate knob converts at
        :data:`~repro.local_join.kernels.CANDIDATE_BYTES` per candidate)."""
        if self.memory_budget is not None:
            return self.memory_budget
        return self.max_candidates_per_chunk * kernels.CANDIDATE_BYTES

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def join(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> np.ndarray:
        return self._run(s_values, t_values, condition, materialize=True)

    def count(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> int:
        return self._run(s_values, t_values, condition, materialize=False)

    # ------------------------------------------------------------------ #
    # Implementation
    # ------------------------------------------------------------------ #
    def select_index_dimension(
        self, s_arr: np.ndarray, t_arr: np.ndarray, condition: BandCondition
    ) -> int:
        """Pick the most selective index dimension.

        Selectivity of dimension ``i`` is approximated by the ratio of the
        combined value spread to the band width; zero-width (equality)
        dimensions are maximally selective.
        """
        if self.index_dimension is not None:
            dim = self.index_dimension
            if not 0 <= dim < condition.dimensionality:
                raise ValueError(f"index_dimension {dim} out of range")
            return dim
        best_dim = 0
        best_score = -np.inf
        for i, pred in enumerate(condition.predicates):
            combined = np.concatenate([s_arr[:, i], t_arr[:, i]])
            spread = float(combined.max() - combined.min()) if combined.size else 0.0
            width = pred.width
            score = np.inf if width == 0 else spread / width
            if score > best_score:
                best_score = score
                best_dim = i
        return best_dim

    def _run(self, s_values, t_values, condition, materialize: bool):
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        if s_arr.shape[0] == 0 or t_arr.shape[0] == 0:
            return empty_pairs() if materialize else 0

        dim = self.select_index_dimension(s_arr, t_arr, condition)
        if materialize:
            return kernels.interval_join(
                s_arr,
                t_arr,
                condition,
                dim,
                probe_is_s=True,
                memory_budget=self._kernel_budget(),
            )
        return kernels.interval_count(
            s_arr,
            t_arr,
            condition,
            dim,
            probe_is_s=True,
            memory_budget=self._kernel_budget(),
        )
