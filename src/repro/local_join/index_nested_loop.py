"""Index-nested-loop band join (the paper's local algorithm).

Section 6.1 of the paper describes the local algorithm used on every worker:
range-partition (sort) T on the most selective join dimension ``A1``, then
for each ``s`` use binary search to find the T-range containing ``s`` and
check the full band condition only against T-tuples in the adjacent ranges.

The implementation below is the vectorised equivalent: T is sorted on the
index dimension once, the candidate window of every S-tuple is found with two
``searchsorted`` calls, and the remaining dimensions are verified with a
vectorised filter over the candidate pairs.  S is processed in chunks so the
candidate-pair buffer stays bounded.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.band import BandCondition
from repro.local_join.base import LocalJoinAlgorithm, as_matrix, empty_pairs


class IndexNestedLoopJoin(LocalJoinAlgorithm):
    """Sorted-index candidate lookup on one dimension plus residual filtering.

    Parameters
    ----------
    index_dimension:
        Dimension used for the sorted index.  ``None`` picks the dimension
        with the largest spread-to-band-width ratio (the most selective one),
        mirroring the paper's "A1 is the most selective dimension" choice.
    max_candidates_per_chunk:
        Upper bound on the number of candidate pairs buffered at once.
    """

    name = "index-nested-loop"

    def __init__(
        self,
        index_dimension: int | None = None,
        max_candidates_per_chunk: int = 4_000_000,
    ) -> None:
        if max_candidates_per_chunk < 1:
            raise ValueError("max_candidates_per_chunk must be positive")
        self.index_dimension = index_dimension
        self.max_candidates_per_chunk = max_candidates_per_chunk

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def join(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> np.ndarray:
        return self._run(s_values, t_values, condition, materialize=True)

    def count(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> int:
        return self._run(s_values, t_values, condition, materialize=False)

    # ------------------------------------------------------------------ #
    # Implementation
    # ------------------------------------------------------------------ #
    def select_index_dimension(
        self, s_arr: np.ndarray, t_arr: np.ndarray, condition: BandCondition
    ) -> int:
        """Pick the most selective index dimension.

        Selectivity of dimension ``i`` is approximated by the ratio of the
        combined value spread to the band width; zero-width (equality)
        dimensions are maximally selective.
        """
        if self.index_dimension is not None:
            dim = self.index_dimension
            if not 0 <= dim < condition.dimensionality:
                raise ValueError(f"index_dimension {dim} out of range")
            return dim
        best_dim = 0
        best_score = -np.inf
        for i, pred in enumerate(condition.predicates):
            combined = np.concatenate([s_arr[:, i], t_arr[:, i]])
            spread = float(combined.max() - combined.min()) if combined.size else 0.0
            width = pred.width
            score = np.inf if width == 0 else spread / width
            if score > best_score:
                best_score = score
                best_dim = i
        return best_dim

    def _run(self, s_values, t_values, condition, materialize: bool):
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        if s_arr.shape[0] == 0 or t_arr.shape[0] == 0:
            return empty_pairs() if materialize else 0

        dim = self.select_index_dimension(s_arr, t_arr, condition)
        pred = condition.predicates[dim]

        order = np.argsort(t_arr[:, dim], kind="stable")
        t_sorted = t_arr[order]
        t_keys = t_sorted[:, dim]

        # Candidate window per s: t.A_dim in [s.A_dim - eps_left, s.A_dim + eps_right].
        lows = np.searchsorted(t_keys, s_arr[:, dim] - pred.eps_left, side="left")
        highs = np.searchsorted(t_keys, s_arr[:, dim] + pred.eps_right, side="right")
        counts = highs - lows

        other_dims = [i for i in range(d) if i != dim]
        if not other_dims and not materialize:
            return int(counts.sum())

        pair_chunks: list[np.ndarray] = []
        total = 0
        n_s = s_arr.shape[0]
        start = 0
        while start < n_s:
            stop = self._chunk_end(counts, start)
            chunk_counts = counts[start:stop]
            chunk_total = int(chunk_counts.sum())
            if chunk_total == 0:
                start = stop
                continue
            s_idx = np.repeat(np.arange(start, stop), chunk_counts)
            offsets = np.repeat(np.cumsum(chunk_counts) - chunk_counts, chunk_counts)
            within = np.arange(chunk_total) - offsets
            t_pos = np.repeat(lows[start:stop], chunk_counts) + within

            # Verify the remaining dimensions one at a time, compressing the
            # candidate arrays after each dimension: for selective conditions
            # this quickly shrinks the work instead of evaluating every
            # dimension over the full candidate set.
            for i in other_dims:
                if s_idx.size == 0:
                    break
                other_pred = condition.predicates[i]
                diff = t_sorted[t_pos, i] - s_arr[s_idx, i]
                keep = (diff >= -other_pred.eps_left) & (diff <= other_pred.eps_right)
                s_idx = s_idx[keep]
                t_pos = t_pos[keep]

            if materialize:
                if s_idx.size:
                    pair_chunks.append(
                        np.column_stack([s_idx, order[t_pos]]).astype(np.int64)
                    )
            else:
                total += int(s_idx.size)
            start = stop

        if materialize:
            if not pair_chunks:
                return empty_pairs()
            return np.concatenate(pair_chunks)
        return total

    def _chunk_end(self, counts: np.ndarray, start: int) -> int:
        """Return the exclusive end index of the S-chunk starting at ``start``
        whose total candidate count stays below the per-chunk budget."""
        budget = self.max_candidates_per_chunk
        running = 0
        stop = start
        n = counts.shape[0]
        while stop < n:
            running += int(counts[stop])
            stop += 1
            if running >= budget:
                break
        return max(stop, start + 1)
