"""Blocked nested-loop band join.

The reference implementation: every (s, t) pair is tested against the band
condition.  It is quadratic but fully vectorised block by block, so it is
fast enough to serve as ground truth in tests and as the fallback inside
small partitions where everything joins with everything anyway.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.band import BandCondition
from repro.local_join.base import LocalJoinAlgorithm, as_matrix, empty_pairs


class NestedLoopJoin(LocalJoinAlgorithm):
    """Exhaustive blocked all-pairs band join.

    Parameters
    ----------
    block_size:
        Number of S-rows processed per vectorised block.  Memory use per
        block is ``block_size * len(T)`` booleans.
    """

    name = "nested-loop"

    def __init__(self, block_size: int = 2048) -> None:
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = block_size

    def join(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> np.ndarray:
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        if s_arr.shape[0] == 0 or t_arr.shape[0] == 0:
            return empty_pairs()

        results: list[np.ndarray] = []
        for start in range(0, s_arr.shape[0], self.block_size):
            stop = min(start + self.block_size, s_arr.shape[0])
            block = s_arr[start:stop]
            mask = self._block_mask(block, t_arr, condition)
            s_idx, t_idx = np.nonzero(mask)
            if s_idx.size:
                results.append(np.column_stack([s_idx + start, t_idx]))
        if not results:
            return empty_pairs()
        return np.concatenate(results).astype(np.int64)

    def count(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> int:
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        if s_arr.shape[0] == 0 or t_arr.shape[0] == 0:
            return 0
        total = 0
        for start in range(0, s_arr.shape[0], self.block_size):
            stop = min(start + self.block_size, s_arr.shape[0])
            mask = self._block_mask(s_arr[start:stop], t_arr, condition)
            total += int(mask.sum())
        return total

    @staticmethod
    def _block_mask(
        s_block: np.ndarray, t_arr: np.ndarray, condition: BandCondition
    ) -> np.ndarray:
        """Return the boolean match matrix for one block of S against all of T."""
        mask = np.ones((s_block.shape[0], t_arr.shape[0]), dtype=bool)
        for i, pred in enumerate(condition.predicates):
            diff = t_arr[None, :, i] - s_block[:, None, i]
            mask &= (diff >= -pred.eps_left) & (diff <= pred.eps_right)
        return mask
