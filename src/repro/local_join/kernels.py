"""Vectorized primitives shared by the local band-join kernels.

Every fast local algorithm in this package reduces to the same three steps:

1. **Windows** — sort one side on a chosen dimension and compute, with one
   ``np.searchsorted`` pair, the contiguous ``[lo, hi)`` window of that side
   that can still satisfy the band predicate of each probe tuple.
2. **Chunked expansion** — consecutive probe rows are grouped so the summed
   window sizes stay under a configurable *memory budget*; each chunk's
   candidate pairs are expanded with ``np.repeat``/``np.arange`` (never the
   full candidate set at once).
3. **Residual filtering** — the remaining band dimensions are verified with
   vectorized masks over the candidate chunk.

Counting never materializes pairs: a one-dimensional condition is answered
purely from the window arithmetic (``sum(hi - lo)``, no per-row allocation at
all), and multi-dimensional counts accumulate ``mask.sum()`` chunk by chunk,
so the transient allocation is bounded by the memory budget rather than by
the output size.

The functions here are deliberately orientation-agnostic: the *probe* side
may be S (sort-sweep's view: for each s, a window of T) or T (IEJoin's view:
for each t, a rank interval of S) — only the asymmetric epsilon widths swap.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

import numpy as np

from repro import faults
from repro.data.storage import block_spans, madvise_dontneed
from repro.geometry.band import BandCondition
from repro.local_join.base import empty_pairs
from repro.obs.kernelprof import kernel_profile_start, publish_kernel_profile

__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "CANDIDATE_BYTES",
    "max_candidates",
    "window_bounds",
    "chunk_spans",
    "iter_window_candidates",
    "residual_mask",
    "interval_join",
    "interval_count",
    "kernel_scratch",
]

#: Default candidate-buffer budget (bytes) of one kernel invocation.  Chosen
#: so a single worker's transient expansion stays far below typical per-core
#: memory while chunks stay large enough to amortize numpy call overhead.
DEFAULT_MEMORY_BUDGET: int = 64 * 1024 * 1024

#: Approximate bytes held per candidate pair during expansion + filtering
#: (two int64 position arrays, one float64 diff, one bool mask, slack).
CANDIDATE_BYTES: int = 32


def max_candidates(memory_budget: int) -> int:
    """Translate a byte budget into the per-chunk candidate-pair cap."""
    if memory_budget < 1:
        raise ValueError("memory_budget must be positive")
    return max(1, int(memory_budget) // CANDIDATE_BYTES)


# --------------------------------------------------------------------- #
# Out-of-core scratch context
# --------------------------------------------------------------------- #

_SCRATCH = threading.local()


@contextmanager
def kernel_scratch(arena, threshold_bytes: int):
    """Let kernels on this thread spill large permuted copies to ``arena``.

    The kernels sort each side with one permutation gather
    (``arr[order]``); inside an active scratch context, gathers larger than
    ``threshold_bytes`` land in scratch memory maps filled block by block
    (resident pages recycled as they go) instead of on the heap.  The chunk
    loop then reads slices of the mmap exactly as it reads slices of an
    in-memory array — the byte-budget chunking is unchanged.
    """
    previous = getattr(_SCRATCH, "ctx", None)
    _SCRATCH.ctx = (arena, int(threshold_bytes))
    try:
        yield
    finally:
        _SCRATCH.ctx = previous


def _permuted(arr: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Return ``arr[order]``, spilled to scratch when large and allowed."""
    ctx = getattr(_SCRATCH, "ctx", None)
    if ctx is None or arr.nbytes <= ctx[1]:
        return arr[order]
    arena, _ = ctx
    out = arena.empty_matrix(arr.dtype, arr.shape[0], arr.shape[1], prefix="sorted")
    block_rows = max(1, (4 * 1024 * 1024) // max(1, arr.shape[1] * arr.itemsize))
    for index, (b0, b1) in enumerate(block_spans(arr.shape[0], block_rows)):
        out[b0:b1] = arr[order[b0:b1]]
        if index % 4 == 3:
            madvise_dontneed(out)
            madvise_dontneed(arr)
    madvise_dontneed(arr)
    return out


def _recycle(*arrays: np.ndarray) -> None:
    """Drop resident pages of any memory-mapped operands (no-op otherwise)."""
    for arr in arrays:
        if isinstance(arr, np.memmap):
            madvise_dontneed(arr)


def window_bounds(
    sorted_keys: np.ndarray,
    probe_keys: np.ndarray,
    below: float,
    above: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Return per-probe ``[lo, hi)`` windows of ``sorted_keys`` in
    ``[probe - below, probe + above]`` (one ``np.searchsorted`` pair total)."""
    lows = np.searchsorted(sorted_keys, probe_keys - below, side="left")
    highs = np.searchsorted(sorted_keys, probe_keys + above, side="right")
    # Non-negative widths make hi >= lo already; guard against pathological
    # float rounding when probe +- eps collapses.
    return lows, np.maximum(highs, lows)


def chunk_spans(counts: np.ndarray, candidate_cap: int) -> Iterator[tuple[int, int]]:
    """Yield consecutive ``(start, stop)`` probe-row spans whose summed
    window sizes stay within ``candidate_cap``.

    Each span holds at least one row, so a single window larger than the cap
    forms its own span (``iter_window_candidates`` slices those further).
    The span boundaries are found with ``searchsorted`` over the running sum
    — no per-row Python loop.
    """
    n = int(counts.shape[0])
    if n == 0:
        return
    cumulative = np.cumsum(counts, dtype=np.int64)
    start = 0
    while start < n:
        consumed = int(cumulative[start - 1]) if start else 0
        stop = int(np.searchsorted(cumulative, consumed + candidate_cap, side="right"))
        stop = min(max(stop, start + 1), n)
        # Chaos hook: a fired ``task_slow`` point stalls this chunk,
        # simulating a straggling worker mid-kernel.
        faults.maybe_slow()
        yield start, stop
        start = stop


def iter_window_candidates(
    lows: np.ndarray, counts: np.ndarray, candidate_cap: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(probe_pos, window_pos)`` candidate chunks of at most
    ``candidate_cap`` pairs each, expanded with ``repeat``/``arange``.

    ``probe_pos`` indexes the probe rows, ``window_pos`` the sorted side.
    Oversized single windows are emitted in slices so the cap holds for
    *every* chunk, keeping peak transient memory bounded.
    """
    for start, stop in chunk_spans(counts, candidate_cap):
        if stop == start + 1 and counts[start] > candidate_cap:
            lo = int(lows[start])
            hi = lo + int(counts[start])
            for piece in range(lo, hi, candidate_cap):
                window_pos = np.arange(piece, min(piece + candidate_cap, hi), dtype=np.int64)
                probe_pos = np.full(window_pos.size, start, dtype=np.int64)
                yield probe_pos, window_pos
            continue
        chunk_counts = counts[start:stop]
        total = int(chunk_counts.sum())
        if total == 0:
            continue
        probe_pos = np.repeat(np.arange(start, stop, dtype=np.int64), chunk_counts)
        # One fused repeat: each row contributes lows[row] - (elements emitted
        # before it), so adding arange(total) walks its window left to right.
        shifts = lows[start:stop] - (np.cumsum(chunk_counts) - chunk_counts)
        yield probe_pos, np.repeat(shifts, chunk_counts) + np.arange(total, dtype=np.int64)


def residual_mask(
    s_arr: np.ndarray,
    s_pos: np.ndarray,
    t_arr: np.ndarray,
    t_pos: np.ndarray,
    eps_left: np.ndarray,
    eps_right: np.ndarray,
    skip_dim: int,
) -> np.ndarray:
    """Return the boolean mask of candidates satisfying every dimension but
    ``skip_dim`` (already decided by the window), testing ``t - s`` against
    the asymmetric widths exactly like the reference nested loop."""
    keep = np.ones(s_pos.size, dtype=bool)
    for i in range(s_arr.shape[1]):
        if i == skip_dim:
            continue
        diff = t_arr[t_pos, i] - s_arr[s_pos, i]
        keep &= (diff >= -eps_left[i]) & (diff <= eps_right[i])
    return keep


def _oriented(condition: BandCondition, dim: int, probe_is_s: bool) -> tuple[float, float]:
    """:func:`_oriented_widths` on the condition's cached epsilon vectors."""
    eps_left, eps_right = condition.eps_arrays()
    return _oriented_widths(eps_left, eps_right, dim, probe_is_s)


def _iter_matches(
    probe_side: np.ndarray,
    sorted_side: np.ndarray,
    lows: np.ndarray,
    counts: np.ndarray,
    condition: BandCondition,
    dim: int,
    probe_is_s: bool,
    candidate_cap: int,
    profile: dict | None = None,
):
    """Yield fully verified ``(probe_pos, window_pos)`` chunks.

    ``probe_side`` must be sorted on ``dim`` (so the ``[lo, hi)`` windows are
    monotone and each chunk's windows union into one contiguous slice of the
    sorted side).  Beyond the plain expand-then-mask plan, each chunk picks
    its *expansion dimension* adaptively: the chunk's window slice is
    re-sorted on each residual dimension (one ``argsort`` of the slice, one
    ``searchsorted`` pair for the chunk's probes) and the dimension with the
    fewest candidates wins.  When another dimension is locally much more
    selective than the sweep dimension — common for skewed data where a
    single-dimension window covers a large value cluster — this cuts the
    expanded candidate count by orders of magnitude; the skipped dimension is
    recovered by the residual mask, which always verifies every dimension
    except the expanded one.
    """
    d = probe_side.shape[1]
    eps_left, eps_right = condition.eps_arrays()
    highs = lows + counts
    for start, stop in chunk_spans(counts, candidate_cap):
        chunk_counts = counts[start:stop]
        total0 = int(chunk_counts.sum())
        if total0 == 0:
            continue
        nonzero = np.nonzero(chunk_counts)[0]
        lo = int(lows[start + nonzero[0]])
        hi = int(highs[start + nonzero[-1]])

        expand_dim = dim
        window_lows = lows[start:stop]
        window_counts = chunk_counts
        slice_map: np.ndarray | None = None
        # Probing the residual dimensions costs one slice argsort each; only
        # worthwhile when the slice is smaller than the pending expansion.
        if d > 1 and hi - lo < total0:
            best_total = total0
            for i in range(d):
                if i == dim:
                    continue
                if profile is not None:
                    profile["resort_probes"] += 1
                sort_idx = np.argsort(sorted_side[lo:hi, i], kind="stable")
                column = sorted_side[lo:hi, i][sort_idx]
                below, above = _oriented_widths(eps_left, eps_right, i, probe_is_s)
                alt_lows = np.searchsorted(
                    column, probe_side[start:stop, i] - below, side="left"
                )
                alt_highs = np.searchsorted(
                    column, probe_side[start:stop, i] + above, side="right"
                )
                alt_counts = np.maximum(alt_highs, alt_lows) - alt_lows
                alt_total = int(alt_counts.sum())
                if alt_total < best_total:
                    best_total = alt_total
                    expand_dim = i
                    window_lows = alt_lows
                    window_counts = alt_counts
                    slice_map = sort_idx
        if profile is not None and slice_map is not None:
            profile["resort_wins"] += 1
        for probe_local, window_local in iter_window_candidates(
            window_lows, window_counts, candidate_cap
        ):
            if profile is not None:
                profile["chunks"] += 1
                profile["candidates"] += int(probe_local.size)
                if probe_local.size > profile["max_chunk"]:
                    profile["max_chunk"] = int(probe_local.size)
            probe_pos = probe_local + start
            if slice_map is not None:
                window_pos = slice_map[window_local] + lo
            else:
                window_pos = window_local
            if d > 1:
                if probe_is_s:
                    keep = residual_mask(
                        probe_side, probe_pos, sorted_side, window_pos,
                        eps_left, eps_right, expand_dim,
                    )
                else:
                    keep = residual_mask(
                        sorted_side, window_pos, probe_side, probe_pos,
                        eps_left, eps_right, expand_dim,
                    )
                probe_pos = probe_pos[keep]
                window_pos = window_pos[keep]
                if probe_pos.size == 0:
                    continue
            if profile is not None:
                profile["pairs"] += int(probe_pos.size)
            yield probe_pos, window_pos
        # Memory-mapped sides: drop the pages this chunk touched before
        # moving on, so a full pass stays within a bounded resident set.
        _recycle(probe_side, sorted_side)


def _oriented_widths(
    eps_left: np.ndarray, eps_right: np.ndarray, dim: int, probe_is_s: bool
) -> tuple[float, float]:
    """Return the (below, above) window widths of the probe side on ``dim``.

    The band predicate reads ``-eps_left <= t - s <= eps_right``; probing
    with s means t in ``[s - eps_left, s + eps_right]``, probing with t means
    s in ``[t - eps_right, t + eps_left]``.
    """
    if probe_is_s:
        return float(eps_left[dim]), float(eps_right[dim])
    return float(eps_right[dim]), float(eps_left[dim])


def interval_count(
    s_arr: np.ndarray,
    t_arr: np.ndarray,
    condition: BandCondition,
    dim: int,
    probe_is_s: bool = True,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
) -> int:
    """Count band-join pairs without materializing any of them.

    One-dimensional conditions are pure window arithmetic: sort the indexed
    side's keys, one ``searchsorted`` pair, ``sum(hi - lo)`` — no boolean
    masks, no candidate expansion, no O(output) allocation.  Further
    dimensions fall back to chunk-wise expansion + masked counting under the
    memory budget.
    """
    probe_arr, sorted_arr = (s_arr, t_arr) if probe_is_s else (t_arr, s_arr)
    if probe_arr.shape[0] == 0 or sorted_arr.shape[0] == 0:
        return 0
    profile = kernel_profile_start()
    if profile is not None:
        wall, t0 = time.time(), time.perf_counter()
    below, above = _oriented(condition, dim, probe_is_s)
    if condition.dimensionality == 1:
        keys = np.sort(sorted_arr[:, dim])
        # Sorted probes keep the binary searches cache-local (~5x faster).
        lows, highs = window_bounds(keys, np.sort(probe_arr[:, dim]), below, above)
        total = int((highs - lows).sum())
        if profile is not None:
            profile["pairs"] = total
            publish_kernel_profile(
                profile, "count", 1, max_candidates(memory_budget),
                time.perf_counter() - t0, start=wall,
            )
        return total

    sorted_order = np.argsort(sorted_arr[:, dim], kind="stable")
    sorted_side = _permuted(sorted_arr, sorted_order)
    # Sorting the probe side makes the chunk windows monotone (a requirement
    # of the adaptive chunk driver) and keeps every gather slice-local.
    probe_side = _permuted(probe_arr, np.argsort(probe_arr[:, dim], kind="stable"))
    lows, highs = window_bounds(sorted_side[:, dim], probe_side[:, dim], below, above)
    _recycle(probe_side, sorted_side)
    total = 0
    for probe_pos, _ in _iter_matches(
        probe_side,
        sorted_side,
        lows,
        highs - lows,
        condition,
        dim,
        probe_is_s,
        max_candidates(memory_budget),
        profile=profile,
    ):
        total += int(probe_pos.size)
    if profile is not None:
        publish_kernel_profile(
            profile, "count", int(probe_arr.shape[1]),
            max_candidates(memory_budget), time.perf_counter() - t0, start=wall,
        )
    return total


def interval_join(
    s_arr: np.ndarray,
    t_arr: np.ndarray,
    condition: BandCondition,
    dim: int,
    probe_is_s: bool = True,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
) -> np.ndarray:
    """Materialize the band-join pairs through the chunked interval kernel.

    Returns ``(m, 2)`` ``(s_index, t_index)`` pairs in implementation order.
    Multi-dimensional inputs sort the probe side on ``dim`` as well, so each
    chunk's windows union into one contiguous slice of the sorted side (the
    monotonicity the adaptive chunk driver relies on, and cache-local
    gathers for free).
    """
    probe_arr, sorted_arr = (s_arr, t_arr) if probe_is_s else (t_arr, s_arr)
    if probe_arr.shape[0] == 0 or sorted_arr.shape[0] == 0:
        return empty_pairs()
    profile = kernel_profile_start()
    if profile is not None:
        wall, t0 = time.time(), time.perf_counter()
    below, above = _oriented(condition, dim, probe_is_s)

    sorted_order = np.argsort(sorted_arr[:, dim], kind="stable")
    sorted_side = _permuted(sorted_arr, sorted_order)

    if condition.dimensionality == 1:
        # Every candidate is a result: expand straight into the output array
        # (the transients are output-sized, which materialization implies
        # anyway).  Probes are sorted for cache-local binary searches; the
        # original row ids come back through one fused repeat.
        probe_order = np.argsort(probe_arr[:, dim], kind="stable")
        lows, highs = window_bounds(
            sorted_side[:, dim], probe_arr[probe_order, dim], below, above
        )
        counts = highs - lows
        total = int(counts.sum())
        if total == 0:
            pairs = empty_pairs()
        else:
            shifts = lows - (np.cumsum(counts) - counts)
            window_pos = np.repeat(shifts, counts) + np.arange(
                total, dtype=np.int64
            )
            pairs = np.empty((total, 2), dtype=np.int64)
            pairs[:, 0 if probe_is_s else 1] = np.repeat(probe_order, counts)
            pairs[:, 1 if probe_is_s else 0] = sorted_order[window_pos]
        if profile is not None:
            profile["chunks"] = 1 if total else 0
            profile["candidates"] = total
            profile["pairs"] = total
            profile["max_chunk"] = total
            publish_kernel_profile(
                profile, "join", 1, max_candidates(memory_budget),
                time.perf_counter() - t0, start=wall,
            )
        return pairs

    probe_order = np.argsort(probe_arr[:, dim], kind="stable")
    probe_side = _permuted(probe_arr, probe_order)
    lows, highs = window_bounds(sorted_side[:, dim], probe_side[:, dim], below, above)
    _recycle(probe_side, sorted_side)

    chunks: list[np.ndarray] = []
    for probe_pos, window_pos in _iter_matches(
        probe_side,
        sorted_side,
        lows,
        highs - lows,
        condition,
        dim,
        probe_is_s,
        max_candidates(memory_budget),
        profile=profile,
    ):
        probe_idx = probe_order[probe_pos]
        window_idx = sorted_order[window_pos]
        if probe_is_s:
            chunks.append(np.column_stack([probe_idx, window_idx]))
        else:
            chunks.append(np.column_stack([window_idx, probe_idx]))
    if chunks:
        pairs = np.concatenate(chunks).astype(np.int64, copy=False)
    else:
        pairs = empty_pairs()
    if profile is not None:
        publish_kernel_profile(
            profile, "join", int(probe_arr.shape[1]),
            max_candidates(memory_budget), time.perf_counter() - t0, start=wall,
        )
    return pairs
