"""Common interface of local band-join algorithms.

A local algorithm receives the join-attribute matrices of the S- and
T-tuples assigned to one worker (shape ``(n_s, d)`` and ``(n_t, d)``, columns
in band-condition attribute order) and either materialises the matching
``(s_index, t_index)`` pairs or merely counts them.

Counting without materialisation matters: several experiments only need the
per-worker output cardinality ``O_i``, and materialising hundreds of millions
of pairs for that would dominate the running time of the whole benchmark.
"""

from __future__ import annotations

import abc
import copy

import numpy as np

from repro.geometry.band import BandCondition


class LocalJoinAlgorithm(abc.ABC):
    """Interface of a single-worker band-join algorithm."""

    #: Human-readable algorithm name used in reports.
    name: str = "local-join"

    def with_memory_budget(self, memory_budget: int | None) -> "LocalJoinAlgorithm":
        """Return this algorithm bound to a kernel memory budget (bytes).

        Execution backends use this to split one machine-wide budget across
        concurrently running kernels.  Algorithms without a budgeted kernel
        (no ``memory_budget`` attribute) return themselves unchanged, as does
        a ``None`` or unchanged budget; otherwise a shallow copy is returned
        so a shared algorithm instance is never mutated across tasks.
        """
        if memory_budget is None or not hasattr(self, "memory_budget"):
            return self
        if getattr(self, "memory_budget") == memory_budget:
            return self
        clone = copy.copy(self)
        clone.memory_budget = memory_budget
        return clone

    @abc.abstractmethod
    def join(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> np.ndarray:
        """Return the matching pairs as an ``(m, 2)`` array of (s_index, t_index).

        Indices refer to row positions of ``s_values`` / ``t_values``.
        The result order is implementation-defined.
        """

    def count(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> int:
        """Return only the number of matching pairs.

        The default implementation materialises the pairs; subclasses
        override it with cheaper counting where possible.
        """
        return int(self.join(s_values, t_values, condition).shape[0])

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def as_matrix(values: np.ndarray, dimensionality: int) -> np.ndarray:
    """Normalise input to a float ``(n, d)`` matrix (handling the empty case)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr.reshape(0, dimensionality)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return arr


def empty_pairs() -> np.ndarray:
    """Return an empty ``(0, 2)`` integer pair array."""
    return np.empty((0, 2), dtype=np.int64)


def canonical_pair_order(pairs: np.ndarray) -> np.ndarray:
    """Return pairs sorted lexicographically (s_index, then t_index).

    Used by tests to compare the output of different algorithms.
    """
    if pairs.shape[0] == 0:
        return pairs
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]


def join_pair_count(
    s_values: np.ndarray,
    t_values: np.ndarray,
    condition: BandCondition,
    algorithm: LocalJoinAlgorithm | None = None,
) -> int:
    """Count band-join pairs between two join-attribute matrices.

    Convenience wrapper used throughout the library (metrics, lower bounds,
    experiment harness) so call sites do not need to instantiate algorithms.
    """
    from repro.local_join.index_nested_loop import IndexNestedLoopJoin

    algo = algorithm if algorithm is not None else IndexNestedLoopJoin()
    return algo.count(s_values, t_values, condition)
