"""Sort-based sweep band join (vectorized).

Both inputs are conceptually sorted on the sweep dimension and a window of
T-tuples whose sweep value can still join with the current S-tuple is
maintained while sweeping S in ascending order — the classic plane-sweep
formulation of a band join.  The historical implementation advanced the
window with a per-S-row Python loop; this one expresses the identical sweep
with the chunked ``searchsorted`` interval kernel of
:mod:`repro.local_join.kernels`: all windows come from one ``searchsorted``
pair, candidate pairs are expanded chunk-wise with ``repeat``/``arange``
under a configurable memory budget, and the remaining dimensions are
verified with vectorized masks.

``count()`` never materializes pairs.  For a one-dimensional condition the
answer is pure window arithmetic (``sum(hi - lo)`` — no per-row boolean
mask, no O(output) allocation); multi-dimensional counts filter chunk by
chunk and only accumulate mask sums.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.band import BandCondition
from repro.local_join import kernels
from repro.local_join.base import LocalJoinAlgorithm, as_matrix, empty_pairs


class SortSweepJoin(LocalJoinAlgorithm):
    """Plane-sweep band join on the first (or chosen) dimension.

    Parameters
    ----------
    sweep_dimension:
        Dimension swept (windows are computed on it).
    memory_budget:
        Byte budget of the transient candidate buffers (see
        :mod:`repro.local_join.kernels`); execution backends shrink it when
        several kernels run concurrently.
    """

    name = "sort-sweep"

    def __init__(
        self,
        sweep_dimension: int = 0,
        memory_budget: int = kernels.DEFAULT_MEMORY_BUDGET,
    ) -> None:
        if sweep_dimension < 0:
            raise ValueError("sweep_dimension must be non-negative")
        if memory_budget < 1:
            raise ValueError("memory_budget must be positive")
        self.sweep_dimension = sweep_dimension
        self.memory_budget = memory_budget

    def _check(self, condition: BandCondition) -> int:
        dim = self.sweep_dimension
        if dim >= condition.dimensionality:
            raise ValueError(
                f"sweep_dimension {dim} out of range for "
                f"{condition.dimensionality}-dimensional join"
            )
        return dim

    def join(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> np.ndarray:
        dim = self._check(condition)
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        if s_arr.shape[0] == 0 or t_arr.shape[0] == 0:
            return empty_pairs()
        return kernels.interval_join(
            s_arr,
            t_arr,
            condition,
            dim,
            probe_is_s=True,
            memory_budget=self.memory_budget,
        )

    def count(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> int:
        dim = self._check(condition)
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        return kernels.interval_count(
            s_arr,
            t_arr,
            condition,
            dim,
            probe_is_s=True,
            memory_budget=self.memory_budget,
        )
