"""Sort-based sweep band join.

Both inputs are sorted on the sweep dimension; a window of T-tuples whose
sweep value can still join with the current S-tuple is maintained while
sweeping S in ascending order.  The remaining dimensions are verified against
the window.  This is the classic plane-sweep formulation of a band join and
serves as an alternative local algorithm with different input/output cost
balance (cheaper when the band is narrow relative to the data spread).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.band import BandCondition
from repro.local_join.base import LocalJoinAlgorithm, as_matrix, empty_pairs


class SortSweepJoin(LocalJoinAlgorithm):
    """Plane-sweep band join on the first (or chosen) dimension."""

    name = "sort-sweep"

    def __init__(self, sweep_dimension: int = 0) -> None:
        if sweep_dimension < 0:
            raise ValueError("sweep_dimension must be non-negative")
        self.sweep_dimension = sweep_dimension

    def join(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> np.ndarray:
        pairs, _ = self._sweep(s_values, t_values, condition, materialize=True)
        return pairs

    def count(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> int:
        _, total = self._sweep(s_values, t_values, condition, materialize=False)
        return total

    def _sweep(self, s_values, t_values, condition, materialize: bool):
        d = condition.dimensionality
        dim = self.sweep_dimension
        if dim >= d:
            raise ValueError(f"sweep_dimension {dim} out of range for {d}-dimensional join")
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        if s_arr.shape[0] == 0 or t_arr.shape[0] == 0:
            return empty_pairs(), 0

        pred = condition.predicates[dim]
        s_order = np.argsort(s_arr[:, dim], kind="stable")
        t_order = np.argsort(t_arr[:, dim], kind="stable")
        s_sorted = s_arr[s_order]
        t_sorted = t_arr[t_order]
        t_keys = t_sorted[:, dim]
        other_dims = [i for i in range(d) if i != dim]

        chunks: list[np.ndarray] = []
        total = 0
        window_lo = 0
        window_hi = 0
        n_t = t_sorted.shape[0]
        for pos, s_row in enumerate(s_sorted):
            sweep_value = s_row[dim]
            low_bound = sweep_value - pred.eps_left
            high_bound = sweep_value + pred.eps_right
            while window_lo < n_t and t_keys[window_lo] < low_bound:
                window_lo += 1
            if window_hi < window_lo:
                window_hi = window_lo
            while window_hi < n_t and t_keys[window_hi] <= high_bound:
                window_hi += 1
            if window_lo >= window_hi:
                continue
            window = slice(window_lo, window_hi)
            keep = np.ones(window_hi - window_lo, dtype=bool)
            for i in other_dims:
                other_pred = condition.predicates[i]
                diff = t_sorted[window, i] - s_row[i]
                keep &= (diff >= -other_pred.eps_left) & (diff <= other_pred.eps_right)
            matched = np.nonzero(keep)[0]
            if matched.size == 0:
                continue
            if materialize:
                s_idx = np.full(matched.size, s_order[pos], dtype=np.int64)
                t_idx = t_order[window_lo + matched]
                chunks.append(np.column_stack([s_idx, t_idx]))
            else:
                total += int(matched.size)

        if materialize:
            if not chunks:
                return empty_pairs(), 0
            pairs = np.concatenate(chunks)
            return pairs, int(pairs.shape[0])
        return empty_pairs(), total
