"""In-memory IEJoin for band conditions (vectorized).

IEJoin (Khayyat et al., VLDBJ 2017) handles joins with two inequality
predicates through sorted arrays, a permutation array between the two sort
orders, offset arrays and a bit array.  A band predicate
``|s.A - t.A| <= eps`` decomposes into exactly two inequalities

* ``s.A <= t.A + eps_left``  (s is not too far to the right of t), and
* ``s.A >= t.A - eps_right`` (s is not too far to the left of t),

so IEJoin applies directly to the first band dimension; any further band
dimensions are verified with a residual filter, exactly like the adaptation
the paper mentions for local processing on each worker.

The historical implementation swept T in first-attribute order and, per
T-tuple, populated a bit array over the second sort order and scanned its
prefix — a per-tuple Python loop.  For *band* predicates both inequality
attributes are the same column, which collapses the structure: the set of
S-tuples inserted by the sweep (``s.A <= t.A + eps_left``, the offset array
into L1) and the set selected by the bit-array prefix scan
(``s.A >= t.A - eps_right``, the offset array into L2) are both value
prefixes of the *same* sorted order, so their intersection is the contiguous
rank interval ``[lo_k, hi_k)`` in X-sorted order.  Both offset arrays are
exactly what ``np.searchsorted`` computes, and the per-T scan becomes the
chunked interval kernel of :mod:`repro.local_join.kernels` — identical pair
set, no interpreted inner loop, memory bounded by the kernel budget.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.band import BandCondition
from repro.local_join import kernels
from repro.local_join.base import LocalJoinAlgorithm, as_matrix, empty_pairs


class IEJoinLocal(LocalJoinAlgorithm):
    """IEJoin over the first band dimension with residual filtering.

    Parameters
    ----------
    primary_dimension:
        Band dimension whose two inequalities drive the IEJoin structure.
    memory_budget:
        Byte budget of the transient candidate buffers (see
        :mod:`repro.local_join.kernels`).
    """

    name = "iejoin-local"

    def __init__(
        self,
        primary_dimension: int = 0,
        memory_budget: int = kernels.DEFAULT_MEMORY_BUDGET,
    ) -> None:
        if primary_dimension < 0:
            raise ValueError("primary_dimension must be non-negative")
        if memory_budget < 1:
            raise ValueError("memory_budget must be positive")
        self.primary_dimension = primary_dimension
        self.memory_budget = memory_budget

    def _check(self, condition: BandCondition) -> int:
        dim = self.primary_dimension
        if dim >= condition.dimensionality:
            raise ValueError(
                f"primary_dimension {dim} out of range for "
                f"{condition.dimensionality}-dimensional join"
            )
        return dim

    def join(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> np.ndarray:
        dim = self._check(condition)
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        if s_arr.shape[0] == 0 or t_arr.shape[0] == 0:
            return empty_pairs()
        # T probes the X-sorted S order: window [lo, hi) per t is the
        # intersection of the two inequality prefixes described above.
        return kernels.interval_join(
            s_arr,
            t_arr,
            condition,
            dim,
            probe_is_s=False,
            memory_budget=self.memory_budget,
        )

    def count(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> int:
        dim = self._check(condition)
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        # 1-D: the two offset arrays alone give the count (sum of rank-interval
        # widths) — no bit array, no pair expansion, no O(output) allocation.
        return kernels.interval_count(
            s_arr,
            t_arr,
            condition,
            dim,
            probe_is_s=False,
            memory_budget=self.memory_budget,
        )
