"""In-memory IEJoin for band conditions.

IEJoin (Khayyat et al., VLDBJ 2017) is an in-memory algorithm for joins with
two inequality predicates, built from sorted arrays, a permutation array
between the two sort orders, offset arrays and a bit array.  A band predicate
``|s.A - t.A| <= eps`` decomposes into exactly two inequalities

* ``s.A <= t.A + eps_left``  (s is not too far to the right of t), and
* ``s.A >= t.A - eps_right`` (s is not too far to the left of t),

so IEJoin applies directly to the first band dimension; any further band
dimensions are verified with a residual filter, exactly like the adaptation
the paper mentions for local processing on each worker.

The implementation keeps IEJoin's signature data structures: S sorted on the
first inequality attribute, a permutation mapping to the order of the second
inequality attribute, and a bit array over T in second-attribute order that
is populated as a sweep advances over the first attribute.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.band import BandCondition
from repro.local_join.base import LocalJoinAlgorithm, as_matrix, empty_pairs


class IEJoinLocal(LocalJoinAlgorithm):
    """IEJoin over the first band dimension with residual filtering.

    Parameters
    ----------
    primary_dimension:
        Band dimension whose two inequalities drive the IEJoin structure.
    """

    name = "iejoin-local"

    def __init__(self, primary_dimension: int = 0) -> None:
        if primary_dimension < 0:
            raise ValueError("primary_dimension must be non-negative")
        self.primary_dimension = primary_dimension

    def join(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> np.ndarray:
        pairs, _ = self._iejoin(s_values, t_values, condition, materialize=True)
        return pairs

    def count(
        self,
        s_values: np.ndarray,
        t_values: np.ndarray,
        condition: BandCondition,
    ) -> int:
        _, total = self._iejoin(s_values, t_values, condition, materialize=False)
        return total

    # ------------------------------------------------------------------ #
    # Core algorithm
    # ------------------------------------------------------------------ #
    def _iejoin(self, s_values, t_values, condition, materialize: bool):
        d = condition.dimensionality
        dim = self.primary_dimension
        if dim >= d:
            raise ValueError(
                f"primary_dimension {dim} out of range for {d}-dimensional join"
            )
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        n_s, n_t = s_arr.shape[0], t_arr.shape[0]
        if n_s == 0 or n_t == 0:
            return empty_pairs(), 0

        pred = condition.predicates[dim]
        other_dims = [i for i in range(d) if i != dim]

        # Derived inequality attributes.  Predicate 1: s.X <= x_t where
        # x_t = t.A + eps_left.  Predicate 2: s.Y >= y_t where y_t = t.A - eps_right.
        s_x = s_arr[:, dim]
        t_x = t_arr[:, dim] + pred.eps_left
        s_y = s_arr[:, dim]
        t_y = t_arr[:, dim] - pred.eps_right

        # L1: S sorted ascending on X (sweep order for predicate 1).
        s_by_x = np.argsort(s_x, kind="stable")
        # L2: S positions ranked by Y descending (bit-array order for predicate 2).
        s_by_y_desc = np.argsort(-s_y, kind="stable")
        # Permutation array: for each S tuple (original index) its rank in L2.
        y_rank_of_s = np.empty(n_s, dtype=np.int64)
        y_rank_of_s[s_by_y_desc] = np.arange(n_s)
        s_y_desc_values = s_y[s_by_y_desc]

        # T processed in ascending X order so the set {s : s.X <= t.X'} grows
        # monotonically; offsets into L1 computed with searchsorted.
        t_by_x = np.argsort(t_x, kind="stable")
        s_x_sorted = s_x[s_by_x]
        insert_limits = np.searchsorted(s_x_sorted, t_x[t_by_x], side="right")

        # Offset array for predicate 2: number of leading L2 positions whose
        # Y value still satisfies s.Y >= t.Y (L2 is sorted descending, so this
        # is a searchsorted over the negated values).
        scan_limits = np.searchsorted(-s_y_desc_values, -t_y[t_by_x], side="right")

        bit_array = np.zeros(n_s, dtype=bool)
        inserted = 0
        chunks: list[np.ndarray] = []
        total = 0

        for k in range(n_t):
            t_original = t_by_x[k]
            limit = insert_limits[k]
            while inserted < limit:
                s_original = s_by_x[inserted]
                bit_array[y_rank_of_s[s_original]] = True
                inserted += 1
            scan = scan_limits[k]
            if scan == 0:
                continue
            hits = np.nonzero(bit_array[:scan])[0]
            if hits.size == 0:
                continue
            s_candidates = s_by_y_desc[hits]
            if other_dims:
                keep = np.ones(s_candidates.size, dtype=bool)
                for i in other_dims:
                    other_pred = condition.predicates[i]
                    diff = t_arr[t_original, i] - s_arr[s_candidates, i]
                    keep &= (diff >= -other_pred.eps_left) & (diff <= other_pred.eps_right)
                s_candidates = s_candidates[keep]
                if s_candidates.size == 0:
                    continue
            if materialize:
                t_column = np.full(s_candidates.size, t_original, dtype=np.int64)
                chunks.append(np.column_stack([s_candidates.astype(np.int64), t_column]))
            else:
                total += int(s_candidates.size)

        if materialize:
            if not chunks:
                return empty_pairs(), 0
            pairs = np.concatenate(chunks)
            return pairs, int(pairs.shape[0])
        return empty_pairs(), total
