"""Local (single-worker) band-join algorithms.

After the optimization phase has assigned input tuples to workers, each
worker computes the band-join on its local input.  The paper points out that
the choice of local algorithm is orthogonal to the partitioning problem; it
only shifts the relative weight of input versus output work (the
``beta2/beta3`` ratio).  This subpackage provides several interchangeable
local algorithms, all built on the shared vectorized kernel layer
(:mod:`repro.local_join.kernels`):

* :class:`NestedLoopJoin` — reference implementation (blocked all-pairs).
* :class:`IndexNestedLoopJoin` — the paper's default: range-index on the
  most selective dimension plus binary search.
* :class:`SortSweepJoin` — sort-based sweep, expressed as the chunked
  ``searchsorted`` interval kernel.
* :class:`IEJoinLocal` — IEJoin's offset/bit-array structure for the two
  inequalities of the first band predicate, collapsed (for band conditions)
  into precomputed ``searchsorted`` rank intervals.
* :class:`AutoJoin` — adaptive dispatch over the above, driven by sampled
  band-selectivity estimates.

Counting is always cheaper than joining here: every kernel answers
``count()`` without materializing pairs (pure window arithmetic in one
dimension, chunk-wise masked counting beyond).
"""

from repro.local_join.auto import AutoJoin
from repro.local_join.base import LocalJoinAlgorithm, join_pair_count
from repro.local_join.iejoin_local import IEJoinLocal
from repro.local_join.index_nested_loop import IndexNestedLoopJoin
from repro.local_join.nested_loop import NestedLoopJoin
from repro.local_join.sort_band import SortSweepJoin

__all__ = [
    "LocalJoinAlgorithm",
    "NestedLoopJoin",
    "IndexNestedLoopJoin",
    "SortSweepJoin",
    "IEJoinLocal",
    "AutoJoin",
    "join_pair_count",
    "default_local_join",
    "LOCAL_ALGORITHMS",
    "get_local_algorithm",
]

#: Registry of constructible local algorithms, keyed by the names accepted
#: by configuration and the CLI ``--local-algorithm`` flag.
LOCAL_ALGORITHMS: dict[str, type[LocalJoinAlgorithm]] = {
    NestedLoopJoin.name: NestedLoopJoin,
    IndexNestedLoopJoin.name: IndexNestedLoopJoin,
    SortSweepJoin.name: SortSweepJoin,
    IEJoinLocal.name: IEJoinLocal,
    AutoJoin.name: AutoJoin,
}


def get_local_algorithm(
    algorithm: "str | LocalJoinAlgorithm | None",
    memory_budget: int | None = None,
) -> LocalJoinAlgorithm:
    """Resolve an algorithm name (or pass an instance through).

    ``None`` resolves to the library default; ``memory_budget`` (bytes), when
    given, is bound onto the resolved algorithm's kernel.
    """
    if algorithm is None:
        resolved = default_local_join()
    elif isinstance(algorithm, LocalJoinAlgorithm):
        resolved = algorithm
    else:
        try:
            factory = LOCAL_ALGORITHMS[algorithm]
        except KeyError:
            raise ValueError(
                f"unknown local algorithm {algorithm!r}; "
                f"available: {', '.join(LOCAL_ALGORITHMS)}"
            ) from None
        resolved = factory()
    return resolved.with_memory_budget(memory_budget)


def default_local_join() -> LocalJoinAlgorithm:
    """Return the library's default local join algorithm (the paper's choice)."""
    return IndexNestedLoopJoin()
