"""Local (single-worker) band-join algorithms.

After the optimization phase has assigned input tuples to workers, each
worker computes the band-join on its local input.  The paper points out that
the choice of local algorithm is orthogonal to the partitioning problem; it
only shifts the relative weight of input versus output work (the
``beta2/beta3`` ratio).  This subpackage provides several interchangeable
local algorithms:

* :class:`NestedLoopJoin` — reference implementation (blocked all-pairs).
* :class:`IndexNestedLoopJoin` — the paper's default: range-index on the
  most selective dimension plus binary search.
* :class:`SortSweepJoin` — sort-based sweep over the first dimension.
* :class:`IEJoinLocal` — the in-memory IEJoin algorithm (sorted arrays,
  permutation array and bit array) for the two inequalities of the first
  band predicate, with post-filtering for the remaining dimensions.
"""

from repro.local_join.base import LocalJoinAlgorithm, join_pair_count
from repro.local_join.nested_loop import NestedLoopJoin
from repro.local_join.index_nested_loop import IndexNestedLoopJoin
from repro.local_join.sort_band import SortSweepJoin
from repro.local_join.iejoin_local import IEJoinLocal

__all__ = [
    "LocalJoinAlgorithm",
    "NestedLoopJoin",
    "IndexNestedLoopJoin",
    "SortSweepJoin",
    "IEJoinLocal",
    "join_pair_count",
    "default_local_join",
]


def default_local_join() -> LocalJoinAlgorithm:
    """Return the library's default local join algorithm (the paper's choice)."""
    return IndexNestedLoopJoin()
