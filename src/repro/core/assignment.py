"""Assignment of partition units to workers.

Once a partitioner has carved the join-attribute space (or the join matrix)
into units, the units must be distributed over the ``w`` workers.  The
classic longest-processing-time (LPT) greedy rule — sort units by descending
load, always give the next unit to the currently least-loaded worker — is a
4/3-approximation of the optimal makespan and is what the library uses
whenever the partitioner itself does not dictate a one-to-one mapping.

Random assignment is also provided because RecPart's load-variance derivation
(Section 4.2 of the paper) models exactly that: each leaf assigned to a
uniformly random worker.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PartitioningError


def lpt_assignment(loads: np.ndarray, workers: int) -> np.ndarray:
    """Assign units to workers with the LPT greedy heuristic.

    Parameters
    ----------
    loads:
        Per-unit load estimates (non-negative).
    workers:
        Number of workers.

    Returns
    -------
    Array of worker ids, one per unit.
    """
    loads = np.asarray(loads, dtype=float)
    if workers < 1:
        raise PartitioningError("workers must be at least 1")
    if np.any(loads < 0):
        raise PartitioningError("unit loads must be non-negative")
    n = loads.shape[0]
    assignment = np.zeros(n, dtype=np.int64)
    if n == 0 or workers == 1:
        return assignment
    order = np.argsort(-loads, kind="stable")
    worker_totals = np.zeros(workers, dtype=float)
    for unit in order:
        target = int(np.argmin(worker_totals))
        assignment[unit] = target
        worker_totals[target] += loads[unit]
    return assignment


def random_assignment(n_units: int, workers: int, rng: np.random.Generator) -> np.ndarray:
    """Assign each unit to a uniformly random worker."""
    if workers < 1:
        raise PartitioningError("workers must be at least 1")
    if n_units < 0:
        raise PartitioningError("n_units must be non-negative")
    return rng.integers(0, workers, size=n_units, dtype=np.int64)


def round_robin_assignment(n_units: int, workers: int) -> np.ndarray:
    """Assign units to workers round-robin (unit ``i`` to worker ``i mod w``)."""
    if workers < 1:
        raise PartitioningError("workers must be at least 1")
    return np.arange(n_units, dtype=np.int64) % workers


def worker_loads(loads: np.ndarray, assignment: np.ndarray, workers: int) -> np.ndarray:
    """Aggregate per-unit loads into per-worker totals."""
    loads = np.asarray(loads, dtype=float)
    assignment = np.asarray(assignment)
    if loads.shape != assignment.shape:
        raise PartitioningError("loads and assignment must have the same shape")
    return np.bincount(assignment, weights=loads, minlength=workers)


def max_worker_load(loads: np.ndarray, assignment: np.ndarray, workers: int) -> float:
    """Return the maximum per-worker total load under the given assignment."""
    totals = worker_loads(loads, assignment, workers)
    return float(totals.max()) if totals.size else 0.0


def load_imbalance(loads: np.ndarray, assignment: np.ndarray, workers: int) -> float:
    """Return the ratio of max to mean per-worker load (1.0 means perfectly balanced)."""
    totals = worker_loads(loads, assignment, workers)
    mean = float(totals.mean()) if totals.size else 0.0
    if mean == 0:
        return 1.0
    return float(totals.max()) / mean
