"""Split enumeration and selection (paper Algorithm 2, ``best_split``).

For a *regular* leaf the best split is searched over every splittable
dimension and every candidate boundary (mid-points between consecutive
sampled values), separately for T-splits (S partitioned, T duplicated) and —
when symmetric partitioning is enabled — S-splits.  For a *small* leaf the
only options are incrementing the row or column count of its internal
1-Bucket grid.

All candidate evaluation is vectorised: for one (leaf, dimension, split kind)
combination every candidate boundary is scored with a handful of
``searchsorted`` calls over the leaf's sorted sample values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import LeafStats, OptimizationContext
from repro.core.scoring import (
    SplitScore,
    duplication_interval,
    grid_sum_squared,
    grid_total_input,
)

#: Split kinds.
KIND_REGULAR = "regular"
KIND_GRID = "grid"


@dataclass(frozen=True)
class SplitDecision:
    """The outcome of ``best_split`` for one leaf.

    For ``kind == "regular"`` the split is the predicate
    ``A_dimension < value`` with ``duplicated_side`` indicating which input
    is copied across the boundary ("T" = T-split, "S" = S-split).
    For ``kind == "grid"`` the split increments the internal 1-Bucket grid of
    a small leaf (``grid_increment`` is ``"row"`` or ``"col"``).
    """

    kind: str
    score: SplitScore
    variance_reduction: float
    duplication_increase: float
    dimension: int | None = None
    value: float | None = None
    duplicated_side: str | None = None
    grid_increment: str | None = None

    def describe(self) -> str:
        """Return a short human-readable description of the split."""
        if self.kind == KIND_GRID:
            return f"grid +{self.grid_increment}"
        side = "T-split" if self.duplicated_side == "T" else "S-split"
        return f"{side} A{self.dimension + 1} < {self.value:g}"


def candidate_boundaries(
    leaf: LeafStats, ctx: OptimizationContext, dim: int
) -> np.ndarray:
    """Return candidate split boundaries in dimension ``dim`` for a leaf.

    Candidates are the mid-points between consecutive distinct sampled values
    (S and T combined) that fall strictly inside the leaf's region, thinned to
    at most ``ctx.max_split_candidates`` evenly spaced choices.
    """
    values = np.concatenate(
        [leaf.sample_values(ctx, "S", dim), leaf.sample_values(ctx, "T", dim)]
    )
    if values.size < 2:
        return np.empty(0)
    distinct = np.unique(values)
    if distinct.size < 2:
        return np.empty(0)
    midpoints = 0.5 * (distinct[:-1] + distinct[1:])
    lower, upper = leaf.region.lower[dim], leaf.region.upper[dim]
    midpoints = midpoints[(midpoints > lower) & (midpoints < upper)]
    if midpoints.size > ctx.max_split_candidates:
        picks = np.linspace(0, midpoints.size - 1, ctx.max_split_candidates)
        midpoints = midpoints[np.round(picks).astype(int)]
        midpoints = np.unique(midpoints)
    return midpoints


def _score_regular_candidates(
    leaf: LeafStats,
    ctx: OptimizationContext,
    dim: int,
    duplicated_side: str,
    boundaries: np.ndarray,
) -> SplitDecision | None:
    """Score every candidate boundary of one (dimension, split-kind) combination
    and return the best resulting :class:`SplitDecision` (or ``None``)."""
    if boundaries.size == 0:
        return None
    partitioned_side = "S" if duplicated_side == "T" else "T"
    predicate = ctx.condition.predicates[dim]

    part_values = np.sort(leaf.sample_values(ctx, partitioned_side, dim))
    dup_values = np.sort(leaf.sample_values(ctx, duplicated_side, dim))
    out_values = np.sort(leaf.output_owner_values(ctx, partitioned_side, dim))

    part_scale = ctx.scale_for(partitioned_side)
    dup_scale = ctx.scale_for(duplicated_side)
    out_scale = ctx.output_scale

    n_part = part_values.size
    n_dup = dup_values.size
    n_out = out_values.size

    # Partitioned side: disjoint split at the boundary (left = value < x).
    part_left = np.searchsorted(part_values, boundaries, side="left")
    part_right = n_part - part_left

    # Duplicated side: copied to both children when within band width of x.
    low, high = duplication_interval(predicate, 0.0, duplicated_side)
    dup_left = np.searchsorted(dup_values, boundaries + high, side="left")
    dup_right = n_dup - np.searchsorted(dup_values, boundaries + low, side="left")
    dup_count = dup_left + dup_right - n_dup

    # Output ownership follows the partitioned (non-duplicated) side.
    out_left = np.searchsorted(out_values, boundaries, side="left")
    out_right = n_out - out_left

    # Child loads (estimated full-relation cardinalities).
    left_input = part_left * part_scale + dup_left * dup_scale
    right_input = part_right * part_scale + dup_right * dup_scale
    left_load = ctx.weights.load(left_input, out_left * out_scale)
    right_load = ctx.weights.load(right_input, out_right * out_scale)

    parent_sum_sq = leaf.sum_squared_unit_loads(ctx)
    children_sum_sq = left_load * left_load + right_load * right_load
    variance_reduction = ctx.variance_factor * (parent_sum_sq - children_sum_sq)
    duplication_increase = dup_count * dup_scale

    # Vectorised scoring: the ratio of variance reduction to duplication
    # increase, with the duplication floored at one tuple (see
    # repro.core.scoring.MIN_DUPLICATION_FLOOR for the rationale).  The
    # alternative modes are only used by the scoring-measure ablation.
    from repro.core.scoring import MIN_DUPLICATION_FLOOR

    if ctx.scoring_mode == "variance":
        ratios = variance_reduction
    elif ctx.scoring_mode == "duplication":
        ratios = -np.maximum(duplication_increase, 0.0)
    else:
        ratios = variance_reduction / np.maximum(duplication_increase, MIN_DUPLICATION_FLOOR)
    ranks = np.where(variance_reduction > 0, 1, 0)
    order = np.lexsort((ratios, ranks))
    best_idx = order[-1]
    score = SplitScore(int(ranks[best_idx]), float(ratios[best_idx]))
    return SplitDecision(
        kind=KIND_REGULAR,
        score=score,
        variance_reduction=float(variance_reduction[best_idx]),
        duplication_increase=float(duplication_increase[best_idx]),
        dimension=dim,
        value=float(boundaries[best_idx]),
        duplicated_side=duplicated_side,
    )


def best_regular_split(leaf: LeafStats, ctx: OptimizationContext) -> SplitDecision | None:
    """Return the best recursive split of a regular leaf, or ``None`` if none is useful."""
    best: SplitDecision | None = None
    duplicated_sides = ("T", "S") if ctx.symmetric else ("T",)
    for dim in leaf.splittable_dimensions(ctx):
        boundaries = candidate_boundaries(leaf, ctx, dim)
        if boundaries.size == 0:
            continue
        for duplicated_side in duplicated_sides:
            decision = _score_regular_candidates(leaf, ctx, dim, duplicated_side, boundaries)
            if decision is None:
                continue
            if best is None or decision.score > best.score:
                best = decision
    if best is not None and not best.score.is_useful:
        return None
    return best


def best_grid_split(leaf: LeafStats, ctx: OptimizationContext) -> SplitDecision | None:
    """Return the best internal 1-Bucket refinement of a small leaf, or ``None``.

    The two options are incrementing the number of row sub-partitions
    (duplicates every T-tuple of the leaf once more) or the number of column
    sub-partitions (duplicates every S-tuple once more); the one with the
    better variance-reduction / duplication ratio wins (Algorithm 2, lines 8-13).
    """
    est_s = leaf.estimated_s(ctx)
    est_t = leaf.estimated_t(ctx)
    est_out = leaf.estimated_output(ctx)
    r, c = leaf.grid_rows, leaf.grid_cols
    current_sum_sq = grid_sum_squared(est_s, est_t, est_out, r, c, ctx)
    current_input = grid_total_input(est_s, est_t, r, c)

    options: list[SplitDecision] = []
    for increment, (new_r, new_c) in (("row", (r + 1, c)), ("col", (r, c + 1))):
        new_sum_sq = grid_sum_squared(est_s, est_t, est_out, new_r, new_c, ctx)
        new_input = grid_total_input(est_s, est_t, new_r, new_c)
        variance_reduction = ctx.variance_factor * (current_sum_sq - new_sum_sq)
        duplication_increase = new_input - current_input
        score = SplitScore.from_deltas(variance_reduction, duplication_increase)
        options.append(
            SplitDecision(
                kind=KIND_GRID,
                score=score,
                variance_reduction=float(variance_reduction),
                duplication_increase=float(duplication_increase),
                grid_increment=increment,
            )
        )
    best = max(options, key=lambda d: d.score)
    if not best.score.is_useful:
        return None
    return best


def find_best_split(leaf: LeafStats, ctx: OptimizationContext) -> SplitDecision | None:
    """Algorithm 2: return the best split of a leaf (regular or grid), or ``None``.

    A regular partition is searched for the best decision-tree-style split;
    a small partition (below twice the band width in every dimension)
    instead refines its internal 1-Bucket grid.
    """
    if leaf.s_rows.size == 0 and leaf.t_rows.size == 0:
        return None
    if leaf.is_small(ctx):
        return best_grid_split(leaf, ctx)
    return best_regular_split(leaf, ctx)
