"""Split scoring: load variance and input duplication.

The paper's key insight (Section 4.2) is the split-scoring measure

    score(x) = (load-variance reduction of split x) / (input-duplication increase of x)

where load variance models the per-worker load when every leaf (or 1-Bucket
sub-partition of a small leaf) is assigned to a uniformly random worker:

    V[P] = (w - 1) / w^2 * sum over leaves p of l_p^2 ,   l_p = beta2*I_p + beta3*O_p.

This module provides the numerical pieces of that score:

* :func:`duplication_interval` — which duplicated-side values straddle a
  split boundary and therefore must be copied to both children,
* :func:`variance_of_leaves` / :func:`sum_squared_loads` — the variance sum,
* :class:`SplitScore` — a totally ordered score that implements the paper's
  tie-breaking rule (zero-duplication splits always win; among them the one
  with the largest variance reduction wins).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.partition import LeafStats, OptimizationContext
from repro.geometry.band import BandPredicate

#: Score rank for a split with positive variance reduction (value is the ratio).
RANK_RATIO = 1
#: Score rank for a useless split (no variance reduction).
RANK_USELESS = 0

#: Floor applied to the duplication increase when forming the ratio.  The
#: paper's score ``dVar / dDup`` is infinite for duplication-free splits; a
#: floor of one (estimated) tuple keeps the ratio finite and totally ordered
#: while still strongly preferring duplication-free splits, and — crucially —
#: lets a split of a heavily loaded dense region (large variance reduction,
#: some duplication) win over a negligible duplication-free split of a sparse
#: region.  Among duplication-free splits the ordering degenerates to "largest
#: variance reduction first", exactly the paper's tie-break rule.
MIN_DUPLICATION_FLOOR: float = 1.0


@dataclass(frozen=True, order=True)
class SplitScore:
    """Totally ordered split score (lexicographic on ``(rank, value)``).

    ``value`` is the ratio of load-variance reduction to duplication increase
    (with the duplication floored at one tuple, see
    :data:`MIN_DUPLICATION_FLOOR`); ``rank`` only separates useful splits
    (positive variance reduction) from useless ones.
    """

    rank: int
    value: float

    @property
    def is_useful(self) -> bool:
        """Return ``True`` when applying the split can improve the partitioning."""
        return self.rank == RANK_RATIO and self.value > 0

    @classmethod
    def from_deltas(cls, variance_reduction: float, duplication_increase: float) -> "SplitScore":
        """Build a score from the two deltas (variance reduction, duplication increase)."""
        ratio = variance_reduction / max(duplication_increase, MIN_DUPLICATION_FLOOR)
        if variance_reduction > 0:
            return cls(RANK_RATIO, float(ratio))
        return cls(RANK_USELESS, float(ratio))

    @classmethod
    def worst(cls) -> "SplitScore":
        """Return a score smaller than any score produced by real splits."""
        return cls(RANK_USELESS, -np.inf)


def duplication_interval(
    predicate: BandPredicate, split_value: float, duplicated_side: str
) -> tuple[float, float]:
    """Return the half-open value interval ``[low, high)`` of duplicated-side tuples
    that must be copied to both children of a split at ``split_value``.

    For a **T-split** (T duplicated) the matching S-values of a T-tuple ``t``
    lie in ``[t - eps_right, t + eps_left]``; the tuple reaches the left child
    iff ``t - eps_right < x`` and the right child iff ``t + eps_left >= x``,
    so it is duplicated iff ``x - eps_left <= t < x + eps_right``.

    For an **S-split** (S duplicated) the roles of the asymmetric widths swap.
    """
    if duplicated_side == "T":
        return split_value - predicate.eps_left, split_value + predicate.eps_right
    return split_value - predicate.eps_right, split_value + predicate.eps_left


def count_in_intervals(
    sorted_values: np.ndarray, lows: np.ndarray, highs: np.ndarray
) -> np.ndarray:
    """Count, for each interval ``[low_i, high_i)``, how many sorted values fall inside."""
    lows = np.asarray(lows, dtype=float)
    highs = np.asarray(highs, dtype=float)
    return (
        np.searchsorted(sorted_values, highs, side="left")
        - np.searchsorted(sorted_values, lows, side="left")
    )


def sum_squared_loads(leaves: Iterable[LeafStats], ctx: OptimizationContext) -> float:
    """Return ``sum over execution units of load^2`` across all given leaves."""
    return float(sum(leaf.sum_squared_unit_loads(ctx) for leaf in leaves))


def variance_of_leaves(leaves: Iterable[LeafStats], ctx: OptimizationContext) -> float:
    """Return the load variance ``V[P]`` of the partitioning defined by ``leaves``."""
    return ctx.variance_factor * sum_squared_loads(leaves, ctx)


def variance_reduction_from_loads(
    parent_sum_sq: float, children_sum_sq: float, ctx: OptimizationContext
) -> float:
    """Return the variance reduction when a parent's squared-load contribution
    ``parent_sum_sq`` is replaced by its children's ``children_sum_sq``."""
    return ctx.variance_factor * (parent_sum_sq - children_sum_sq)


def leaf_loads(
    leaf_s: float,
    leaf_t: float,
    leaf_out: float,
    ctx: OptimizationContext,
) -> float:
    """Return the load of a (hypothetical) regular leaf with the given estimated
    S-input, T-input and output cardinalities."""
    return ctx.weights.load(leaf_s + leaf_t, leaf_out)


def grid_cell_load(
    est_s: float, est_t: float, est_out: float, rows: int, cols: int, ctx: OptimizationContext
) -> float:
    """Return the per-cell load of an ``rows x cols`` internal 1-Bucket grid."""
    unit_input = est_s / rows + est_t / cols
    unit_output = est_out / (rows * cols)
    return ctx.weights.load(unit_input, unit_output)


def grid_sum_squared(
    est_s: float, est_t: float, est_out: float, rows: int, cols: int, ctx: OptimizationContext
) -> float:
    """Return ``sum over cells of load^2`` of an internal 1-Bucket grid."""
    cell = grid_cell_load(est_s, est_t, est_out, rows, cols, ctx)
    return rows * cols * cell * cell


def grid_total_input(est_s: float, est_t: float, rows: int, cols: int) -> float:
    """Return the total input (incl. replication) of an internal 1-Bucket grid."""
    return cols * est_s + rows * est_t
