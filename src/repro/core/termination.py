"""Termination conditions and best-partitioning tracking for RecPart.

The paper proposes two ways to decide when to stop growing the split tree
and which of the intermediate partitionings to keep (Section 4.2,
"Termination condition and winning partitioning"):

* **theoretical** — evaluate every intermediate partitioning by its overhead
  over the lower bounds (input duplication overhead and max-worker-load
  overhead), keep the one minimising the larger of the two, and stop once
  the monotonically growing duplication overhead exceeds the smallest load
  overhead seen so far (no later iteration can improve the objective).
* **applied** — evaluate every intermediate partitioning with the calibrated
  running-time model, keep the one with the smallest predicted join time and
  stop when the predicted time has improved by less than 1% over a window of
  the last ``w`` iterations.

Both are implemented as trackers fed once per repeat-loop iteration with the
current set of leaves.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.config import TERMINATION_IMPROVEMENT_THRESHOLD
from repro.core.assignment import lpt_assignment, worker_loads
from repro.core.partition import LeafStats, OptimizationContext
from repro.exceptions import OptimizationError


@dataclass(frozen=True)
class PartitioningEstimate:
    """Optimizer-side estimate of one intermediate partitioning.

    All quantities are estimated from the samples (scaled counts), mirroring
    the information RecPart has available during optimization.
    """

    total_input: float
    max_worker_load: float
    max_worker_input: float
    max_worker_output: float
    n_units: int
    duplication_overhead: float
    load_overhead: float

    @property
    def lower_bound_objective(self) -> float:
        """Return ``max(duplication overhead, load overhead)`` (theoretical objective)."""
        return max(self.duplication_overhead, self.load_overhead)


def estimate_partitioning(
    leaves: list[LeafStats], ctx: OptimizationContext
) -> PartitioningEstimate:
    """Estimate total input, max worker load and lower-bound overheads of a partitioning.

    Execution units (leaves, or 1-Bucket cells of small leaves) are assigned
    to workers with the same LPT heuristic the final partitioning uses, so
    the estimate matches what execution would see (up to sampling error).
    """
    if not leaves:
        raise OptimizationError("cannot estimate an empty partitioning")
    unit_loads: list[float] = []
    unit_inputs: list[float] = []
    unit_outputs: list[float] = []
    total_input = 0.0
    for leaf in leaves:
        n_units = leaf.n_units()
        unit_loads.extend([leaf.unit_load(ctx)] * n_units)
        unit_inputs.extend([leaf.unit_input(ctx)] * n_units)
        unit_outputs.extend([leaf.unit_output(ctx)] * n_units)
        total_input += leaf.estimated_input(ctx)

    loads = np.asarray(unit_loads, dtype=float)
    inputs = np.asarray(unit_inputs, dtype=float)
    outputs = np.asarray(unit_outputs, dtype=float)
    assignment = lpt_assignment(loads, ctx.workers)
    per_worker_load = worker_loads(loads, assignment, ctx.workers)
    per_worker_input = worker_loads(inputs, assignment, ctx.workers)
    per_worker_output = worker_loads(outputs, assignment, ctx.workers)
    most_loaded = int(np.argmax(per_worker_load)) if per_worker_load.size else 0

    baseline_input = float(ctx.input_sample.total_input)
    estimated_output = float(ctx.output_sample.estimated_output)
    lower_bound_load = (
        ctx.weights.load(baseline_input, estimated_output) / ctx.workers
        if ctx.workers
        else 0.0
    )
    max_load = float(per_worker_load[most_loaded]) if per_worker_load.size else 0.0
    duplication_overhead = (
        (total_input - baseline_input) / baseline_input if baseline_input > 0 else 0.0
    )
    load_overhead = (
        (max_load - lower_bound_load) / lower_bound_load if lower_bound_load > 0 else 0.0
    )
    return PartitioningEstimate(
        total_input=float(total_input),
        max_worker_load=max_load,
        max_worker_input=float(per_worker_input[most_loaded]) if per_worker_input.size else 0.0,
        max_worker_output=float(per_worker_output[most_loaded]) if per_worker_output.size else 0.0,
        n_units=int(loads.size),
        duplication_overhead=float(duplication_overhead),
        load_overhead=float(load_overhead),
    )


class TerminationTracker(abc.ABC):
    """Tracks intermediate partitionings, the best one found, and the stop signal."""

    def __init__(self, ctx: OptimizationContext) -> None:
        self.ctx = ctx
        self.best_snapshot: dict[int, tuple[int, int]] | None = None
        self.best_objective: float = np.inf
        self.best_estimate: PartitioningEstimate | None = None
        self.iterations: int = 0

    def record(
        self, leaves: list[LeafStats], snapshot: dict[int, tuple[int, int]]
    ) -> PartitioningEstimate:
        """Record the current partitioning; returns its estimate."""
        estimate = estimate_partitioning(leaves, self.ctx)
        objective = self.objective(estimate)
        if objective < self.best_objective:
            self.best_objective = objective
            self.best_snapshot = dict(snapshot)
            self.best_estimate = estimate
        self.iterations += 1
        self._after_record(estimate, objective)
        return estimate

    @abc.abstractmethod
    def objective(self, estimate: PartitioningEstimate) -> float:
        """Return the scalar objective minimised by the tracker."""

    def _after_record(self, estimate: PartitioningEstimate, objective: float) -> None:
        """Hook for subclasses that keep extra history."""

    @abc.abstractmethod
    def should_stop(self) -> bool:
        """Return ``True`` when the repeat-loop should terminate."""


class TheoreticalTermination(TerminationTracker):
    """Lower-bound-overhead termination (no cost model required).

    Stops once the (monotonically non-decreasing) input-duplication overhead
    exceeds the smallest max-worker-load overhead observed so far, because
    from that point on the objective ``max(duplication, load overhead)`` can
    no longer improve.
    """

    def __init__(self, ctx: OptimizationContext) -> None:
        super().__init__(ctx)
        self._min_load_overhead = np.inf
        self._last_duplication_overhead = 0.0

    def objective(self, estimate: PartitioningEstimate) -> float:
        return estimate.lower_bound_objective

    def _after_record(self, estimate: PartitioningEstimate, objective: float) -> None:
        self._min_load_overhead = min(self._min_load_overhead, estimate.load_overhead)
        self._last_duplication_overhead = estimate.duplication_overhead

    def should_stop(self) -> bool:
        return self._last_duplication_overhead > self._min_load_overhead


class CostModelTermination(TerminationTracker):
    """Cost-model ("applied") termination.

    Parameters
    ----------
    cost_model:
        Any object exposing ``predict(total_input, max_input, max_output)``
        returning an estimated join time; typically a
        :class:`repro.cost.model.RunningTimeModel`.
    window:
        Number of trailing iterations over which improvement is measured
        (the paper uses ``w``).
    improvement_threshold:
        Minimum relative improvement over the window required to continue.
    """

    def __init__(
        self,
        ctx: OptimizationContext,
        cost_model,
        window: int | None = None,
        improvement_threshold: float = TERMINATION_IMPROVEMENT_THRESHOLD,
    ) -> None:
        super().__init__(ctx)
        if cost_model is None or not hasattr(cost_model, "predict"):
            raise OptimizationError("CostModelTermination requires a cost model with .predict")
        self.cost_model = cost_model
        self.window = window if window is not None else max(ctx.workers, 2)
        if self.window < 1:
            raise OptimizationError("termination window must be at least 1")
        self.improvement_threshold = improvement_threshold
        self._history: list[float] = []

    def objective(self, estimate: PartitioningEstimate) -> float:
        return float(
            self.cost_model.predict(
                estimate.total_input, estimate.max_worker_input, estimate.max_worker_output
            )
        )

    def _after_record(self, estimate: PartitioningEstimate, objective: float) -> None:
        self._history.append(objective)

    def should_stop(self) -> bool:
        if len(self._history) <= self.window:
            return False
        best_before = min(self._history[: -self.window])
        best_recent = min(self._history[-self.window :])
        if best_before <= 0:
            return True
        improvement = (best_before - best_recent) / best_before
        return improvement < self.improvement_threshold
