"""Optimization-phase partition state.

During optimization RecPart works exclusively on samples: an input sample of
S and T plus an output sample of join pairs (paper Algorithm 1, lines 1-2).
Every split-tree leaf keeps the indices of the sample tuples that currently
fall into its region — including duplicates created by ancestor splits — so
that input, output and load of the corresponding partition can be estimated
by simple scaled counts.

:class:`OptimizationContext` bundles the immutable shared state (samples,
band condition, worker count, load weights); :class:`LeafStats` is the
mutable per-leaf payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import LoadWeights
from repro.exceptions import OptimizationError
from repro.geometry.band import BandCondition
from repro.geometry.region import Region
from repro.sampling.input_sampler import InputSample
from repro.sampling.output_sampler import OutputSample


@dataclass(frozen=True)
class OptimizationContext:
    """Immutable state shared by every leaf during RecPart optimization.

    Attributes
    ----------
    condition:
        The band-join condition.
    workers:
        Number of workers ``w`` (enters the load-variance formula).
    weights:
        Per-input / per-output load weights (beta2, beta3).
    input_sample / output_sample:
        The samples drawn by Algorithm 1.
    symmetric:
        Whether S-splits are allowed in addition to T-splits.
    small_partition_factor:
        Multiplier of the band width below which a dimension is "small".
    max_split_candidates:
        Cap on the number of candidate boundaries evaluated per leaf and
        dimension (quantile-thinned when the leaf sample is larger).
    scoring_mode:
        Split-scoring measure (``"ratio"``, ``"variance"`` or
        ``"duplication"``); only the ablation study deviates from the paper's
        default ratio.
    """

    condition: BandCondition
    workers: int
    weights: LoadWeights
    input_sample: InputSample
    output_sample: OutputSample
    symmetric: bool = True
    small_partition_factor: float = 2.0
    max_split_candidates: int = 128
    scoring_mode: str = "ratio"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise OptimizationError("workers must be at least 1")
        if self.max_split_candidates < 1:
            raise OptimizationError("max_split_candidates must be at least 1")
        if self.scoring_mode not in ("ratio", "variance", "duplication"):
            raise OptimizationError("scoring_mode must be 'ratio', 'variance' or 'duplication'")

    # ------------------------------------------------------------------ #
    # Derived constants
    # ------------------------------------------------------------------ #
    @property
    def dimensionality(self) -> int:
        """Return the number of join dimensions."""
        return self.condition.dimensionality

    @property
    def epsilons(self) -> np.ndarray:
        """Return the symmetric band widths per dimension."""
        return self.condition.epsilons

    @property
    def variance_factor(self) -> float:
        """Return the ``(w - 1) / w^2`` factor of the load-variance formula."""
        w = self.workers
        return (w - 1) / (w * w) if w > 1 else 1.0

    @property
    def s_scale(self) -> float:
        """Return the S sample scale factor (sample count -> full count)."""
        return self.input_sample.s_scale

    @property
    def t_scale(self) -> float:
        """Return the T sample scale factor."""
        return self.input_sample.t_scale

    @property
    def output_scale(self) -> float:
        """Return the output sample scale factor (sample pairs -> full output)."""
        return self.output_sample.pair_scale

    def scale_for(self, side: str) -> float:
        """Return the scale factor of one relation side (``"S"`` or ``"T"``)."""
        return self.s_scale if side == "S" else self.t_scale

    def root_region(self) -> Region:
        """Return the root region: the data bounding box padded by one band width.

        The paper's root partition is the full attribute space; clipping it to
        the populated bounding box makes the "small partition" criterion
        meaningful at every level of the tree without changing which tuples
        fall where.
        """
        lower, upper = self.input_sample.data_bounds(padding=self.epsilons)
        return Region.from_bounds(lower, upper)


@dataclass
class LeafStats:
    """Mutable sample statistics of one split-tree leaf (a candidate partition).

    ``s_rows`` / ``t_rows`` index into the context's input-sample matrices,
    ``out_rows`` into the output-sample pair arrays.  A row index may appear
    in several leaves when the corresponding tuple was duplicated across an
    ancestor split boundary.

    ``grid_rows`` / ``grid_cols`` implement the paper's small-partition mode:
    a leaf whose region is small in every dimension is no longer split
    recursively; instead its interior is covered by a ``grid_rows x
    grid_cols`` 1-Bucket grid whose granularity the optimizer can increase.
    """

    node_id: int
    region: Region
    s_rows: np.ndarray
    t_rows: np.ndarray
    out_rows: np.ndarray
    grid_rows: int = 1
    grid_cols: int = 1
    version: int = 0
    best_split: object | None = field(default=None, repr=False)
    top_score: object | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # Cardinality and load estimates
    # ------------------------------------------------------------------ #
    def sample_counts(self) -> tuple[int, int, int]:
        """Return the raw sample counts (S rows, T rows, output pairs) in the leaf."""
        return int(self.s_rows.size), int(self.t_rows.size), int(self.out_rows.size)

    def estimated_s(self, ctx: OptimizationContext) -> float:
        """Return the estimated number of S-tuples (incl. duplicates) in the partition."""
        return self.s_rows.size * ctx.s_scale

    def estimated_t(self, ctx: OptimizationContext) -> float:
        """Return the estimated number of T-tuples (incl. duplicates) in the partition."""
        return self.t_rows.size * ctx.t_scale

    def estimated_output(self, ctx: OptimizationContext) -> float:
        """Return the estimated join output produced by the partition."""
        return self.out_rows.size * ctx.output_scale

    def estimated_input(self, ctx: OptimizationContext) -> float:
        """Return the estimated total input shipped to the partition.

        For a regular leaf this is simply S + T; for a small leaf in
        1-Bucket mode every S-tuple is replicated to ``grid_cols`` cells and
        every T-tuple to ``grid_rows`` cells.
        """
        return self.grid_cols * self.estimated_s(ctx) + self.grid_rows * self.estimated_t(ctx)

    def n_units(self) -> int:
        """Return the number of execution units the leaf expands to."""
        return self.grid_rows * self.grid_cols

    def unit_load(self, ctx: OptimizationContext) -> float:
        """Return the estimated load of one execution unit of this leaf."""
        r, c = self.grid_rows, self.grid_cols
        unit_input = self.estimated_s(ctx) / r + self.estimated_t(ctx) / c
        unit_output = self.estimated_output(ctx) / (r * c)
        return ctx.weights.load(unit_input, unit_output)

    def unit_input(self, ctx: OptimizationContext) -> float:
        """Return the estimated input of one execution unit of this leaf."""
        r, c = self.grid_rows, self.grid_cols
        return self.estimated_s(ctx) / r + self.estimated_t(ctx) / c

    def unit_output(self, ctx: OptimizationContext) -> float:
        """Return the estimated output of one execution unit of this leaf."""
        return self.estimated_output(ctx) / (self.grid_rows * self.grid_cols)

    def load(self, ctx: OptimizationContext) -> float:
        """Return the total estimated load induced by the partition (all units)."""
        return ctx.weights.load(self.estimated_input(ctx), self.estimated_output(ctx))

    def sum_squared_unit_loads(self, ctx: OptimizationContext) -> float:
        """Return ``sum over units of load^2`` — the leaf's contribution to load variance."""
        unit = self.unit_load(ctx)
        return self.n_units() * unit * unit

    # ------------------------------------------------------------------ #
    # Small-partition logic
    # ------------------------------------------------------------------ #
    def is_small(self, ctx: OptimizationContext) -> bool:
        """Return ``True`` when the leaf is small in every dimension (1-Bucket mode)."""
        return self.region.is_small(ctx.epsilons, ctx.small_partition_factor)

    def splittable_dimensions(self, ctx: OptimizationContext) -> list[int]:
        """Return the dimensions in which regular recursive splitting is still allowed."""
        dims = []
        for dim in range(ctx.dimensionality):
            if not self.region.is_small_in_dimension(
                dim, float(ctx.epsilons[dim]), ctx.small_partition_factor
            ):
                dims.append(dim)
        return dims

    # ------------------------------------------------------------------ #
    # Sample access helpers
    # ------------------------------------------------------------------ #
    def sample_values(self, ctx: OptimizationContext, side: str, dim: int) -> np.ndarray:
        """Return the leaf's sampled join-attribute values of one side in one dimension."""
        if side == "S":
            return ctx.input_sample.s_values[self.s_rows, dim]
        return ctx.input_sample.t_values[self.t_rows, dim]

    def output_owner_values(self, ctx: OptimizationContext, owner_side: str, dim: int) -> np.ndarray:
        """Return, per owned output pair, the coordinate of its ``owner_side`` tuple."""
        if owner_side == "S":
            return ctx.output_sample.s_coords[self.out_rows, dim]
        return ctx.output_sample.t_coords[self.out_rows, dim]

    def bump_version(self) -> None:
        """Invalidate any queued references to this leaf (lazy priority-queue deletion)."""
        self.version += 1

    def __repr__(self) -> str:
        return (
            f"LeafStats(node={self.node_id}, s={self.s_rows.size}, t={self.t_rows.size}, "
            f"out={self.out_rows.size}, grid={self.grid_rows}x{self.grid_cols})"
        )
