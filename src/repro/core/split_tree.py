"""The split tree: recursive partitioning state and tuple routing.

A split tree (paper Figures 3 and 7) is a binary tree over the
join-attribute space.  Each inner node carries a predicate ``A_dim < value``
plus the information which input relation is *duplicated* across that
boundary (a T-split duplicates T, an S-split duplicates S).  Each leaf is a
partition; "small" leaves additionally carry an internal 1-Bucket grid.

The module provides

* :class:`SplitTree` — the optimizer-side mutable structure (applies
  :class:`~repro.core.split.SplitDecision` objects, maintains per-leaf sample
  statistics),
* :class:`SplitTreePartitioning` — the frozen, executable partitioning
  (implements :class:`~repro.core.partitioner.JoinPartitioning` routing,
  paper Algorithm 3) built from a snapshot of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import lpt_assignment
from repro.core.partition import LeafStats, OptimizationContext
from repro.core.partitioner import JoinPartitioning, PartitioningStats, validate_side
from repro.core.scoring import duplication_interval, grid_cell_load
from repro.core.split import KIND_GRID, KIND_REGULAR, SplitDecision
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition


@dataclass
class SplitNode:
    """One node of the split tree.

    A node is a leaf while ``split_dim is None``; applying a regular split
    turns it into an inner node with two children.  The ``leaf`` payload is
    kept even after the node becomes inner so that earlier snapshots of the
    tree (in which this node still was a leaf) remain fully evaluable.
    """

    node_id: int
    leaf: LeafStats
    split_dim: int | None = None
    split_value: float | None = None
    duplicated_side: str | None = None
    left: "SplitNode | None" = None
    right: "SplitNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """Return ``True`` while the node has not been split."""
        return self.split_dim is None


class SplitTree:
    """Mutable split tree grown by the RecPart optimizer."""

    def __init__(self, ctx: OptimizationContext) -> None:
        self.ctx = ctx
        self._next_id = 0
        root_leaf = LeafStats(
            node_id=0,
            region=ctx.root_region(),
            s_rows=np.arange(ctx.input_sample.s_values.shape[0]),
            t_rows=np.arange(ctx.input_sample.t_values.shape[0]),
            out_rows=np.arange(len(ctx.output_sample)),
        )
        self.root = SplitNode(node_id=self._take_id(), leaf=root_leaf)
        self._nodes: dict[int, SplitNode] = {self.root.node_id: self.root}
        self._leaf_ids: set[int] = {self.root.node_id}

    def _take_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def node(self, node_id: int) -> SplitNode:
        """Return the node with the given id."""
        return self._nodes[node_id]

    def leaves(self) -> list[LeafStats]:
        """Return the payloads of all current leaves."""
        return [self._nodes[i].leaf for i in sorted(self._leaf_ids)]

    def leaf_nodes(self) -> list[SplitNode]:
        """Return all current leaf nodes."""
        return [self._nodes[i] for i in sorted(self._leaf_ids)]

    @property
    def n_leaves(self) -> int:
        """Return the current number of leaves."""
        return len(self._leaf_ids)

    def snapshot(self) -> dict[int, tuple[int, int]]:
        """Return the current partitioning as ``{leaf node id: (grid rows, grid cols)}``."""
        return {
            node_id: (self._nodes[node_id].leaf.grid_rows, self._nodes[node_id].leaf.grid_cols)
            for node_id in sorted(self._leaf_ids)
        }

    # ------------------------------------------------------------------ #
    # Split application
    # ------------------------------------------------------------------ #
    def apply_split(self, node_id: int, decision: SplitDecision) -> list[LeafStats]:
        """Apply a split decision to a leaf and return the new/updated leaf payloads."""
        node = self._nodes[node_id]
        if not node.is_leaf or node_id not in self._leaf_ids:
            raise PartitioningError(f"node {node_id} is not a leaf")
        if decision.kind == KIND_GRID:
            return self._apply_grid_split(node, decision)
        return self._apply_regular_split(node, decision)

    def _apply_grid_split(self, node: SplitNode, decision: SplitDecision) -> list[LeafStats]:
        leaf = node.leaf
        if decision.grid_increment == "row":
            leaf.grid_rows += 1
        elif decision.grid_increment == "col":
            leaf.grid_cols += 1
        else:
            raise PartitioningError(f"unknown grid increment {decision.grid_increment!r}")
        leaf.bump_version()
        return [leaf]

    def _apply_regular_split(self, node: SplitNode, decision: SplitDecision) -> list[LeafStats]:
        ctx = self.ctx
        leaf = node.leaf
        dim = decision.dimension
        value = decision.value
        duplicated_side = decision.duplicated_side
        if dim is None or value is None or duplicated_side not in ("S", "T"):
            raise PartitioningError(f"malformed regular split decision: {decision}")
        predicate = ctx.condition.predicates[dim]
        partitioned_side = "S" if duplicated_side == "T" else "T"

        left_region, right_region = leaf.region.split(dim, value)

        # Partitioned side: disjoint assignment by the split predicate.
        part_rows = leaf.s_rows if partitioned_side == "S" else leaf.t_rows
        part_values = leaf.sample_values(ctx, partitioned_side, dim)
        part_left_mask = part_values < value

        # Duplicated side: copied to every child whose region intersects the
        # tuple's epsilon-range.
        dup_rows = leaf.s_rows if duplicated_side == "S" else leaf.t_rows
        dup_values = leaf.sample_values(ctx, duplicated_side, dim)
        low, high = duplication_interval(predicate, value, duplicated_side)
        dup_left_mask = dup_values < high
        dup_right_mask = dup_values >= low

        # Output ownership follows the partitioned side.
        out_values = leaf.output_owner_values(ctx, partitioned_side, dim)
        out_left_mask = out_values < value

        def side_rows(side: str, left: bool) -> np.ndarray:
            if side == partitioned_side:
                mask = part_left_mask if left else ~part_left_mask
                return part_rows[mask]
            mask = dup_left_mask if left else dup_right_mask
            return dup_rows[mask]

        left_leaf = LeafStats(
            node_id=self._next_id,
            region=left_region,
            s_rows=side_rows("S", left=True),
            t_rows=side_rows("T", left=True),
            out_rows=leaf.out_rows[out_left_mask],
        )
        left_node = SplitNode(node_id=self._take_id(), leaf=left_leaf)
        right_leaf = LeafStats(
            node_id=self._next_id,
            region=right_region,
            s_rows=side_rows("S", left=False),
            t_rows=side_rows("T", left=False),
            out_rows=leaf.out_rows[~out_left_mask],
        )
        right_node = SplitNode(node_id=self._take_id(), leaf=right_leaf)

        node.split_dim = dim
        node.split_value = value
        node.duplicated_side = duplicated_side
        node.left = left_node
        node.right = right_node
        leaf.bump_version()

        self._nodes[left_node.node_id] = left_node
        self._nodes[right_node.node_id] = right_node
        self._leaf_ids.discard(node.node_id)
        self._leaf_ids.add(left_node.node_id)
        self._leaf_ids.add(right_node.node_id)
        return [left_leaf, right_leaf]

    # ------------------------------------------------------------------ #
    # Freezing into an executable partitioning
    # ------------------------------------------------------------------ #
    def build_partitioning(
        self,
        snapshot: dict[int, tuple[int, int]],
        workers: int,
        method: str,
        stats: PartitioningStats | None = None,
        seed: int = 0,
    ) -> "SplitTreePartitioning":
        """Freeze a snapshot of the tree into an executable partitioning."""
        return SplitTreePartitioning(
            tree=self,
            snapshot=snapshot,
            workers=workers,
            method=method,
            stats=stats,
            seed=seed,
        )


@dataclass(frozen=True)
class _LeafUnits:
    """Routing metadata of one snapshot leaf: its unit-id range and grid shape."""

    first_unit: int
    grid_rows: int
    grid_cols: int

    @property
    def n_units(self) -> int:
        return self.grid_rows * self.grid_cols


class SplitTreePartitioning(JoinPartitioning):
    """Executable partitioning defined by a snapshot of a split tree.

    Routing follows paper Algorithm 3: at an inner node, tuples of the
    duplicated side are sent to every child whose region intersects their
    epsilon-range, tuples of the other side follow the split predicate.  In a
    small leaf the internal 1-Bucket grid assigns S-tuples to a random grid
    row (replicated across its columns) and T-tuples to a random grid column
    (replicated across its rows).
    """

    def __init__(
        self,
        tree: SplitTree,
        snapshot: dict[int, tuple[int, int]],
        workers: int,
        method: str = "RecPart",
        stats: PartitioningStats | None = None,
        seed: int = 0,
    ) -> None:
        if not snapshot:
            raise PartitioningError("cannot build a partitioning from an empty snapshot")
        self._tree = tree
        self._snapshot = dict(snapshot)
        self._seed = seed
        self._condition = tree.ctx.condition

        self._leaf_units: dict[int, _LeafUnits] = {}
        unit_loads: list[float] = []
        next_unit = 0
        for node_id in sorted(self._snapshot):
            rows, cols = self._snapshot[node_id]
            leaf = tree.node(node_id).leaf
            self._leaf_units[node_id] = _LeafUnits(next_unit, rows, cols)
            cell_load = grid_cell_load(
                leaf.estimated_s(tree.ctx),
                leaf.estimated_t(tree.ctx),
                leaf.estimated_output(tree.ctx),
                rows,
                cols,
                tree.ctx,
            )
            unit_loads.extend([cell_load] * (rows * cols))
            next_unit += rows * cols

        super().__init__(method=method, workers=workers, n_units=next_unit, stats=stats)
        self._unit_workers = lpt_assignment(np.asarray(unit_loads), workers)
        self._unit_loads = np.asarray(unit_loads, dtype=float)

    # ------------------------------------------------------------------ #
    # JoinPartitioning API
    # ------------------------------------------------------------------ #
    def unit_workers(self) -> np.ndarray:
        return self._unit_workers

    def route(self, values: np.ndarray, side: str) -> tuple[np.ndarray, np.ndarray]:
        side = validate_side(side)
        matrix = np.atleast_2d(np.asarray(values, dtype=float))
        if matrix.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        if matrix.shape[1] != self._condition.dimensionality:
            raise PartitioningError(
                f"expected {self._condition.dimensionality} join-attribute columns, "
                f"got {matrix.shape[1]}"
            )
        rows_chunks: list[np.ndarray] = []
        unit_chunks: list[np.ndarray] = []
        stack: list[tuple[SplitNode, np.ndarray]] = [
            (self._tree.root, np.arange(matrix.shape[0], dtype=np.int64))
        ]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.node_id in self._snapshot:
                rows, units = self._route_leaf(node, idx, matrix, side)
                rows_chunks.append(rows)
                unit_chunks.append(units)
                continue
            if node.left is None or node.right is None:
                raise PartitioningError(
                    f"node {node.node_id} is neither a snapshot leaf nor an inner node"
                )
            dim = node.split_dim
            split_value = node.split_value
            dim_values = matrix[idx, dim]
            if side == node.duplicated_side:
                predicate = self._condition.predicates[dim]
                low, high = duplication_interval(predicate, split_value, side)
                left_mask = dim_values < high
                right_mask = dim_values >= low
            else:
                left_mask = dim_values < split_value
                right_mask = ~left_mask
            stack.append((node.left, idx[left_mask]))
            stack.append((node.right, idx[right_mask]))

        if not rows_chunks:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(rows_chunks), np.concatenate(unit_chunks)

    def _route_leaf(
        self, node: SplitNode, idx: np.ndarray, matrix: np.ndarray, side: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Route tuples that reached a snapshot leaf to that leaf's execution units."""
        units = self._leaf_units[node.node_id]
        first = units.first_unit
        rows, cols = units.grid_rows, units.grid_cols
        if rows == 1 and cols == 1:
            return idx, np.full(idx.size, first, dtype=np.int64)
        rng = np.random.default_rng(
            (self._seed, node.node_id, 0 if side == "S" else 1)
        )
        if side == "S":
            row_assign = rng.integers(0, rows, idx.size)
            unit_ids = first + (row_assign[:, None] * cols + np.arange(cols)[None, :])
            return np.repeat(idx, cols), unit_ids.ravel().astype(np.int64)
        col_assign = rng.integers(0, cols, idx.size)
        unit_ids = first + (np.arange(rows)[None, :] * cols + col_assign[:, None])
        return np.repeat(idx, rows), unit_ids.ravel().astype(np.int64)

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def n_leaves(self) -> int:
        """Return the number of snapshot leaves (before 1-Bucket expansion)."""
        return len(self._snapshot)

    def leaf_regions(self) -> list:
        """Return the regions of the snapshot leaves (for inspection and plotting)."""
        return [self._tree.node(node_id).leaf.region for node_id in sorted(self._snapshot)]

    def estimated_unit_loads(self) -> np.ndarray:
        """Return the optimizer's per-unit load estimates."""
        return self._unit_loads

    def describe(self) -> dict:
        info = super().describe()
        info["leaves"] = self.n_leaves
        grid_leaves = sum(1 for r, c in self._snapshot.values() if r * c > 1)
        info["small_leaves_in_grid_mode"] = grid_leaves
        return info
