"""Core contribution of the paper: the RecPart recursive partitioner.

The public entry points are

* :class:`~repro.core.recpart.RecPartPartitioner` — the optimizer
  (Algorithms 1-3 of the paper) producing a
  :class:`~repro.core.partitioner.JoinPartitioning`,
* :class:`~repro.core.partitioner.Partitioner` /
  :class:`~repro.core.partitioner.JoinPartitioning` — the interfaces shared
  with every baseline partitioner in :mod:`repro.baselines`.
"""

from repro.core.partitioner import JoinPartitioning, Partitioner, PartitioningStats
from repro.core.recpart import RecPartPartitioner
from repro.core.split_tree import SplitTree, SplitTreePartitioning

__all__ = [
    "JoinPartitioning",
    "Partitioner",
    "PartitioningStats",
    "RecPartPartitioner",
    "SplitTree",
    "SplitTreePartitioning",
]
