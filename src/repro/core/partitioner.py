"""Common interfaces for join partitioners.

A *partitioner* is the optimization-phase component: given the two input
relations, the band condition and the number of workers it produces a
:class:`JoinPartitioning` — an object that can route any S- or T-tuple to the
set of partition *units* that must receive it (Definition 1 in the paper).

A partition **unit** is the smallest granule of work whose local join is
self-contained: a RecPart regular leaf, one (row, column) cell of a small
leaf's internal 1-Bucket grid, one Grid-epsilon cell, one CSIO covering
rectangle, one 1-Bucket matrix cell, or one IEJoin block pair.  Each unit is
owned by exactly one worker; a worker may own many units.  Correctness
(each output pair produced exactly once) is guaranteed per unit, which is why
the simulated execution engine runs one local join per unit rather than one
per worker.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_SEED, LoadWeights
from repro.data.relation import Relation
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition

#: Identifier of the S relation side in routing calls.
SIDE_S = "S"
#: Identifier of the T relation side in routing calls.
SIDE_T = "T"


def _config_token(value, depth: int = 0):
    """Reduce a configuration attribute to a stable hashable token.

    Primitives pass through, (frozen) dataclasses contribute their repr, and
    other objects are descended one level (covering e.g. a cost model whose
    state is a coefficients dataclass) before falling back to the type name.
    """
    if isinstance(value, (int, float, str, bool, type(None))):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_config_token(item, depth + 1) for item in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return repr(value)
    if depth < 1:
        try:
            attrs = vars(value)
        except TypeError:
            return type(value).__name__
        return (type(value).__name__,) + tuple(
            (name, _config_token(item, depth + 1)) for name, item in sorted(attrs.items())
        )
    return type(value).__name__


def validate_side(side: str) -> str:
    """Normalise and validate a relation-side identifier."""
    normalised = side.upper()
    if normalised not in (SIDE_S, SIDE_T):
        raise PartitioningError(f"side must be 'S' or 'T', got {side!r}")
    return normalised


@dataclass
class PartitioningStats:
    """Optimizer-side statistics attached to every partitioning.

    Attributes
    ----------
    optimization_seconds:
        Wall-clock time of the optimization phase (paper: "optimization time").
    iterations:
        Number of optimizer iterations (RecPart repeat-loop executions,
        CSIO covering refinements, Grid* grid sizes tried, ...).
    estimated_total_input:
        Optimizer's own estimate of total input including duplicates.
    estimated_max_load:
        Optimizer's own estimate of the max worker load.
    estimated_output:
        Optimizer's estimate of the total join output.
    extra:
        Free-form per-method diagnostics.
    """

    optimization_seconds: float = 0.0
    iterations: int = 0
    estimated_total_input: float | None = None
    estimated_max_load: float | None = None
    estimated_output: float | None = None
    extra: dict = field(default_factory=dict)


class JoinPartitioning(abc.ABC):
    """A concrete assignment of input tuples to partition units and workers."""

    def __init__(
        self,
        method: str,
        workers: int,
        n_units: int,
        stats: PartitioningStats | None = None,
    ) -> None:
        if workers < 1:
            raise PartitioningError("a partitioning needs at least one worker")
        if n_units < 1:
            raise PartitioningError("a partitioning needs at least one unit")
        self.method = method
        self.workers = workers
        self.n_units = n_units
        self.stats = stats if stats is not None else PartitioningStats()

    # ------------------------------------------------------------------ #
    # Abstract routing API
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def route(self, values: np.ndarray, side: str) -> tuple[np.ndarray, np.ndarray]:
        """Route join-attribute rows of one relation side to partition units.

        Parameters
        ----------
        values:
            ``(n, d)`` matrix of join-attribute values (band-condition
            attribute order) of the tuples to route.
        side:
            ``"S"`` or ``"T"``.

        Returns
        -------
        (row_indices, unit_ids):
            Parallel integer arrays; a row index appears once per unit that
            must receive the tuple (so duplicated tuples appear multiple
            times).  Every input row must appear at least once.
        """

    @abc.abstractmethod
    def unit_workers(self) -> np.ndarray:
        """Return the owning worker of every unit as an ``(n_units,)`` int array."""

    # ------------------------------------------------------------------ #
    # Convenience helpers shared by all partitionings
    # ------------------------------------------------------------------ #
    def route_to_workers(self, values: np.ndarray, side: str) -> tuple[np.ndarray, np.ndarray]:
        """Route rows directly to workers (deduplicated per worker).

        Returns parallel ``(row_indices, worker_ids)`` arrays where each
        (row, worker) combination appears at most once, which is what the
        shuffle-size accounting needs.
        """
        rows, units = self.route(values, side)
        owners = self.unit_workers()
        workers = owners[units]
        if rows.size == 0:
            return rows, workers
        combined = rows.astype(np.int64) * self.workers + workers.astype(np.int64)
        unique = np.unique(combined)
        return unique // self.workers, unique % self.workers

    def replication_counts(self, values: np.ndarray, side: str) -> np.ndarray:
        """Return, per input row, the number of units that receive it."""
        rows, _ = self.route(values, side)
        counts = np.bincount(rows, minlength=values.shape[0] if values.ndim == 2 else len(values))
        return counts

    def check_coverage(self, values: np.ndarray, side: str) -> None:
        """Raise :class:`PartitioningError` if any input row is routed nowhere."""
        counts = self.replication_counts(values, side)
        if counts.size and counts.min() < 1:
            missing = int(np.count_nonzero(counts == 0))
            raise PartitioningError(
                f"{missing} {side}-tuples were not assigned to any partition unit "
                f"by method {self.method!r}"
            )

    def describe(self) -> dict:
        """Return a JSON-friendly summary of the partitioning."""
        return {
            "method": self.method,
            "workers": self.workers,
            "units": self.n_units,
            "optimization_seconds": self.stats.optimization_seconds,
            "iterations": self.stats.iterations,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(method={self.method!r}, workers={self.workers}, "
            f"units={self.n_units})"
        )


class Partitioner(abc.ABC):
    """Interface of the optimization phase of a distributed band-join method."""

    #: Human-readable method name used in experiment reports.
    name: str = "partitioner"

    def __init__(self, weights: LoadWeights | None = None, seed: int = DEFAULT_SEED) -> None:
        self.weights = weights if weights is not None else LoadWeights()
        self.seed = seed

    @abc.abstractmethod
    def partition(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        workers: int,
        rng: np.random.Generator | None = None,
    ) -> JoinPartitioning:
        """Compute a join partitioning of ``s`` and ``t`` for ``workers`` workers."""

    def _rng(self, rng: np.random.Generator | None) -> np.random.Generator:
        """Return the generator to use (a fresh seeded one when none is given)."""
        return rng if rng is not None else np.random.default_rng(self.seed)

    def plan_cache_key(self) -> tuple:
        """Return a stable fingerprint of this partitioner's configuration.

        Two partitioners with equal keys must produce the same partitioning
        on the same inputs, so the plan cache can safely share plans between
        them.  The fingerprint walks the instance attributes (seed, weights,
        config dataclasses, cost-model coefficients, ...); objects it cannot
        serialise contribute their type name, which errs towards sharing —
        subclasses carrying richer unhashable state should override this.
        """
        return (type(self).__name__,) + tuple(
            (name, _config_token(value)) for name, value in sorted(vars(self).items())
        )

    @staticmethod
    def _validate_inputs(
        s: Relation, t: Relation, condition: BandCondition, workers: int
    ) -> None:
        if workers < 1:
            raise PartitioningError("number of workers must be at least 1")
        condition.validate_against(s.column_names)
        condition.validate_against(t.column_names)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
