"""RecPart: recursive partitioning for distributed band-joins (paper Algorithm 1).

The optimizer grows a split tree from a single root partition.  In every
iteration it pops the leaf with the highest split score from a priority
queue, applies that leaf's best split (a regular recursive split, or an
internal 1-Bucket grid refinement for small leaves), re-scores the affected
leaves, and records the quality of the resulting partitioning with a
termination tracker.  When the tracker signals convergence, the best
partitioning seen so far is frozen into an executable
:class:`~repro.core.split_tree.SplitTreePartitioning`.

Two public partitioner classes are exported:

* :class:`RecPartPartitioner` — the full algorithm with symmetric splits
  (may duplicate S or T at each boundary, whichever is cheaper),
* :class:`RecPartSPartitioner` — the restricted "RecPart-S" variant used in
  most of the paper's comparisons, which always duplicates T.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.config import DEFAULT_SEED, LoadWeights, RecPartConfig
from repro.core.partition import OptimizationContext
from repro.core.partitioner import Partitioner, PartitioningStats
from repro.core.split import find_best_split
from repro.core.split_tree import SplitTree, SplitTreePartitioning
from repro.core.termination import (
    CostModelTermination,
    TerminationTracker,
    TheoreticalTermination,
)
from repro.cost.model import RunningTimeModel, default_running_time_model
from repro.data.relation import Relation
from repro.exceptions import OptimizationError
from repro.geometry.band import BandCondition
from repro.sampling.input_sampler import draw_input_sample
from repro.sampling.output_sampler import draw_output_sample


class RecPartPartitioner(Partitioner):
    """Recursive partitioning of the join-attribute space (the paper's contribution).

    Parameters
    ----------
    config:
        Algorithm knobs (sample size, symmetric mode, termination condition,
        small-partition threshold); see :class:`repro.config.RecPartConfig`.
    cost_model:
        Running-time model used by the applied termination condition and by
        the quality tracking; a default cluster-shaped model is used when
        omitted.
    weights:
        Load weights (beta2, beta3); taken from ``config`` when omitted.
    seed:
        Seed of the default random generator (sampling, 1-Bucket hashing).
    """

    name = "RecPart"

    def __init__(
        self,
        config: RecPartConfig | None = None,
        cost_model: RunningTimeModel | None = None,
        weights: LoadWeights | None = None,
        seed: int = DEFAULT_SEED,
    ) -> None:
        self.config = config if config is not None else RecPartConfig()
        effective_weights = weights if weights is not None else self.config.weights
        super().__init__(weights=effective_weights, seed=seed)
        self.cost_model = (
            cost_model
            if cost_model is not None
            else default_running_time_model(beta_ratio=self.weights.ratio if np.isfinite(self.weights.ratio) else 4.0)
        )

    # ------------------------------------------------------------------ #
    # Partitioner API
    # ------------------------------------------------------------------ #
    def partition(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        workers: int,
        rng: np.random.Generator | None = None,
    ) -> SplitTreePartitioning:
        self._validate_inputs(s, t, condition, workers)
        rng = self._rng(rng)
        start = time.perf_counter()

        ctx = self._build_context(s, t, condition, workers, rng)
        tree = SplitTree(ctx)
        tracker = self._build_tracker(ctx)
        iterations = self._grow_tree(tree, tracker, workers)

        snapshot = tracker.best_snapshot or tree.snapshot()
        optimization_seconds = time.perf_counter() - start
        stats = PartitioningStats(
            optimization_seconds=optimization_seconds,
            iterations=iterations,
            estimated_total_input=(
                tracker.best_estimate.total_input if tracker.best_estimate else None
            ),
            estimated_max_load=(
                tracker.best_estimate.max_worker_load if tracker.best_estimate else None
            ),
            estimated_output=ctx.output_sample.estimated_output,
            extra={
                "leaves": len(snapshot),
                "symmetric": ctx.symmetric,
                "termination": self.config.termination,
            },
        )
        return tree.build_partitioning(
            snapshot=snapshot,
            workers=workers,
            method=self.name,
            stats=stats,
            seed=int(rng.integers(0, 2**31 - 1)),
        )

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def _build_context(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        workers: int,
        rng: np.random.Generator,
    ) -> OptimizationContext:
        """Draw the input and output samples and bundle the optimization context."""
        sample_size = self.config.sample_size
        input_sample = draw_input_sample(s, t, condition, sample_size, rng)
        output_sample = draw_output_sample(s, t, condition, max(1, sample_size // 2), rng)
        return OptimizationContext(
            condition=condition,
            workers=workers,
            weights=self.weights,
            input_sample=input_sample,
            output_sample=output_sample,
            symmetric=self.config.symmetric,
            small_partition_factor=self.config.small_partition_factor,
            scoring_mode=self.config.scoring,
        )

    def _build_tracker(self, ctx: OptimizationContext) -> TerminationTracker:
        """Instantiate the termination tracker selected in the configuration."""
        if self.config.termination == "theoretical":
            return TheoreticalTermination(ctx)
        # The paper uses a window of w iterations on its 30-60 node clusters;
        # for the small simulated clusters used here the same "small multiple
        # of w" reasoning needs a floor, otherwise a brief plateau (e.g. while
        # several sparse leaves are trimmed before the dense core is split)
        # terminates the search prematurely.
        return CostModelTermination(
            ctx,
            cost_model=self.cost_model,
            window=max(2 * ctx.workers, 16),
            improvement_threshold=self.config.improvement_threshold,
        )

    def _grow_tree(
        self, tree: SplitTree, tracker: TerminationTracker, workers: int
    ) -> int:
        """Run the repeat-loop of Algorithm 1; returns the number of iterations."""
        ctx = tree.ctx
        heap: list[tuple[tuple[int, float], int, int, int]] = []
        counter = 0

        def push(leaf) -> None:
            nonlocal counter
            decision = find_best_split(leaf, ctx)
            leaf.best_split = decision
            leaf.top_score = decision.score if decision is not None else None
            if decision is None:
                return
            counter += 1
            # heapq is a min-heap; negate the score ordering key.
            key = (-decision.score.rank, -decision.score.value)
            heapq.heappush(heap, (key, counter, leaf.node_id, leaf.version))

        root_leaf = tree.root.leaf
        push(root_leaf)
        tracker.record(tree.leaves(), tree.snapshot())

        iteration = 0
        cap = self.config.iteration_cap(workers)
        while heap and iteration < cap:
            _, _, node_id, version = heapq.heappop(heap)
            leaf = tree.node(node_id).leaf
            if leaf.version != version or leaf.best_split is None:
                continue  # Stale queue entry (leaf already split or re-scored).
            affected = tree.apply_split(node_id, leaf.best_split)
            iteration += 1
            for new_leaf in affected:
                push(new_leaf)
            tracker.record(tree.leaves(), tree.snapshot())
            if tracker.should_stop():
                break
        return iteration


class RecPartSPartitioner(RecPartPartitioner):
    """RecPart-S: RecPart without symmetric partitioning (T is always duplicated).

    The paper uses this variant for most comparisons against the grid-style
    baselines so that all of RecPart's advantage is attributable to better
    split boundaries rather than to the symmetric-split extension.
    """

    name = "RecPart-S"

    def __init__(
        self,
        config: RecPartConfig | None = None,
        cost_model: RunningTimeModel | None = None,
        weights: LoadWeights | None = None,
        seed: int = DEFAULT_SEED,
    ) -> None:
        base = config if config is not None else RecPartConfig()
        forced = RecPartConfig(
            sample_size=base.sample_size,
            symmetric=False,
            small_partition_factor=base.small_partition_factor,
            max_iterations=base.max_iterations,
            termination=base.termination,
            improvement_threshold=base.improvement_threshold,
            scoring=base.scoring,
            weights=base.weights,
        )
        super().__init__(config=forced, cost_model=cost_model, weights=weights, seed=seed)


def _ensure_optimizer_invariants(partitioning: SplitTreePartitioning) -> None:
    """Internal sanity check used by tests: a partitioning must have at least one unit."""
    if partitioning.n_units < 1:
        raise OptimizationError("RecPart produced a partitioning without execution units")
