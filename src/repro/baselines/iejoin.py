"""Distributed IEJoin block partitioning.

The distributed version of IEJoin (Khayyat et al., VLDBJ 2017) sorts both
inputs on one of the join attributes and range-partitions each into blocks of
roughly ``sizePerBlock`` tuples using approximate quantiles.  Every pair of
*joinable* blocks (blocks whose key ranges can contain tuples satisfying the
band predicate on the sort attribute) is then assigned to a worker, which
runs the in-memory IEJoin algorithm on the pair.

A block that participates in several joinable pairs is shipped to every
worker that owns one of those pairs, which is exactly the input duplication
the paper measures in Tables 7 and 11: plain quantile partitioning cuts
through dense regions and, unlike CSIO or RecPart, makes no attempt to avoid
the resulting duplication.

``sizePerBlock`` is the method's key meta-parameter; the experiment harness
sweeps it the same way the paper does.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.quantiles import assign_ranges
from repro.config import DEFAULT_SEED, LoadWeights
from repro.core.assignment import lpt_assignment
from repro.core.partitioner import (
    JoinPartitioning,
    Partitioner,
    PartitioningStats,
    validate_side,
)
from repro.data.relation import Relation
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition


def block_boundaries(values: np.ndarray, size_per_block: int) -> np.ndarray:
    """Return interior quantile boundaries so blocks hold about ``size_per_block`` tuples."""
    if size_per_block < 1:
        raise PartitioningError("size_per_block must be at least 1")
    values = np.asarray(values, dtype=float)
    n_blocks = max(1, int(np.ceil(values.size / size_per_block)))
    if n_blocks == 1 or values.size == 0:
        return np.empty(0)
    probs = np.linspace(0, 1, n_blocks + 1)[1:-1]
    return np.unique(np.quantile(values, probs))


def joinable_block_pairs(
    s_boundaries: np.ndarray, t_boundaries: np.ndarray, epsilon: float
) -> np.ndarray:
    """Return the ``(m, 2)`` array of (S-block, T-block) index pairs that may join.

    Block ``i`` covers the half-open key interval ``[boundaries[i-1],
    boundaries[i])`` with infinite sentinels; a pair is joinable iff the two
    intervals are within ``epsilon`` of each other on the sort attribute
    (conservative, hence correct).
    """
    s_lo = np.concatenate([[-np.inf], s_boundaries])
    s_hi = np.concatenate([s_boundaries, [np.inf]])
    t_lo = np.concatenate([[-np.inf], t_boundaries])
    t_hi = np.concatenate([t_boundaries, [np.inf]])
    mask = (s_lo[:, None] - epsilon <= t_hi[None, :]) & (t_lo[None, :] - epsilon <= s_hi[:, None])
    rows, cols = np.nonzero(mask)
    return np.column_stack([rows, cols]).astype(np.int64)


class IEJoinPartitioning(JoinPartitioning):
    """Executable distributed-IEJoin partitioning: one unit per joinable block pair."""

    def __init__(
        self,
        condition: BandCondition,
        sort_dimension: int,
        s_boundaries: np.ndarray,
        t_boundaries: np.ndarray,
        pairs: np.ndarray,
        unit_worker_ids: np.ndarray,
        workers: int,
        stats: PartitioningStats | None = None,
    ) -> None:
        if pairs.shape[0] == 0:
            raise PartitioningError("IEJoin partitioning needs at least one block pair")
        super().__init__("IEJoin", workers, int(pairs.shape[0]), stats)
        self._condition = condition
        self._sort_dimension = sort_dimension
        self._s_boundaries = s_boundaries
        self._t_boundaries = t_boundaries
        self._pairs = pairs
        self._unit_worker_ids = np.asarray(unit_worker_ids, dtype=np.int64)
        # Inverted indexes: block id -> unit ids that need it.
        self._s_block_units = self._invert(pairs[:, 0], s_boundaries.size + 1)
        self._t_block_units = self._invert(pairs[:, 1], t_boundaries.size + 1)

    @staticmethod
    def _invert(block_ids: np.ndarray, n_blocks: int) -> list[np.ndarray]:
        units_per_block: list[np.ndarray] = []
        order = np.argsort(block_ids, kind="stable")
        sorted_blocks = block_ids[order]
        unit_ids = order
        bounds = np.searchsorted(sorted_blocks, np.arange(n_blocks + 1))
        for b in range(n_blocks):
            units_per_block.append(unit_ids[bounds[b] : bounds[b + 1]].astype(np.int64))
        return units_per_block

    def unit_workers(self) -> np.ndarray:
        return self._unit_worker_ids

    def route(self, values: np.ndarray, side: str) -> tuple[np.ndarray, np.ndarray]:
        side = validate_side(side)
        matrix = np.atleast_2d(np.asarray(values, dtype=float))
        n = matrix.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        keys = matrix[:, self._sort_dimension]
        if side == "S":
            blocks = assign_ranges(keys, self._s_boundaries)
            lookup = self._s_block_units
        else:
            blocks = assign_ranges(keys, self._t_boundaries)
            lookup = self._t_block_units
        counts = np.array([lookup[b].size for b in blocks], dtype=np.int64)
        rows = np.repeat(np.arange(n, dtype=np.int64), counts)
        units = np.concatenate([lookup[b] for b in blocks]) if counts.sum() else np.empty(0, np.int64)
        return rows, units

    def describe(self) -> dict:
        info = super().describe()
        info["s_blocks"] = self._s_boundaries.size + 1
        info["t_blocks"] = self._t_boundaries.size + 1
        info["block_pairs"] = int(self._pairs.shape[0])
        return info


class IEJoinPartitioner(Partitioner):
    """Optimization phase of distributed IEJoin (quantile block partitioning).

    Parameters
    ----------
    size_per_block:
        Target number of tuples per block (the paper's ``sizePerBlock``).
    sort_dimension:
        Join dimension used for sorting / range partitioning.
    """

    name = "IEJoin"

    def __init__(
        self,
        size_per_block: int = 10_000,
        sort_dimension: int = 0,
        weights: LoadWeights | None = None,
        seed: int = DEFAULT_SEED,
    ) -> None:
        super().__init__(weights=weights, seed=seed)
        if size_per_block < 1:
            raise PartitioningError("size_per_block must be at least 1")
        if sort_dimension < 0:
            raise PartitioningError("sort_dimension must be non-negative")
        self.size_per_block = size_per_block
        self.sort_dimension = sort_dimension

    def partition(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        workers: int,
        rng: np.random.Generator | None = None,
    ) -> IEJoinPartitioning:
        self._validate_inputs(s, t, condition, workers)
        if self.sort_dimension >= condition.dimensionality:
            raise PartitioningError(
                f"sort_dimension {self.sort_dimension} out of range for "
                f"{condition.dimensionality}-dimensional join"
            )
        start = time.perf_counter()
        attrs = condition.attributes
        s_keys = s.join_matrix(attrs)[:, self.sort_dimension]
        t_keys = t.join_matrix(attrs)[:, self.sort_dimension]
        s_bounds = block_boundaries(s_keys, self.size_per_block)
        t_bounds = block_boundaries(t_keys, self.size_per_block)

        predicate = condition.predicates[self.sort_dimension]
        epsilon = max(predicate.eps_left, predicate.eps_right)
        pairs = joinable_block_pairs(s_bounds, t_bounds, epsilon)

        # Estimated per-pair load for worker placement: block cardinalities are
        # known exactly from the quantile assignment.
        s_counts = np.bincount(assign_ranges(s_keys, s_bounds), minlength=s_bounds.size + 1)
        t_counts = np.bincount(assign_ranges(t_keys, t_bounds), minlength=t_bounds.size + 1)
        pair_loads = (
            self.weights.beta_input
            * (s_counts[pairs[:, 0]] + t_counts[pairs[:, 1]]).astype(float)
        )
        unit_worker_ids = lpt_assignment(pair_loads, workers)

        stats = PartitioningStats(
            optimization_seconds=time.perf_counter() - start,
            iterations=1,
            estimated_total_input=float(
                s_counts[pairs[:, 0]].sum() + t_counts[pairs[:, 1]].sum()
            ),
            extra={
                "size_per_block": self.size_per_block,
                "s_blocks": int(s_bounds.size + 1),
                "t_blocks": int(t_bounds.size + 1),
                "block_pairs": int(pairs.shape[0]),
            },
        )
        return IEJoinPartitioning(
            condition=condition,
            sort_dimension=self.sort_dimension,
            s_boundaries=s_bounds,
            t_boundaries=t_bounds,
            pairs=pairs,
            unit_worker_ids=unit_worker_ids,
            workers=workers,
            stats=stats,
        )
