"""1-Bucket: randomised join-matrix covering (Okcan & Riedewald, SIGMOD 2011).

1-Bucket covers the *entire* join matrix ``S x T`` with a grid of ``r`` rows
and ``c`` columns, one cell per worker.  Every S-tuple is assigned to one
uniformly random row (and therefore shipped to all ``c`` cells of that row);
every T-tuple to one random column (shipped to all ``r`` cells of that
column).  The randomisation gives near-perfect load balance for any join
condition — including Cartesian products — at the price of duplicating the
input roughly ``sqrt(w)`` times, and its behaviour is completely independent
of the join condition's dimensionality (which is why its numbers are
identical across the paper's 1D/3D/8D tables).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.config import DEFAULT_SEED, LoadWeights
from repro.core.partitioner import (
    JoinPartitioning,
    Partitioner,
    PartitioningStats,
    validate_side,
)
from repro.data.relation import Relation
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition


def choose_matrix_shape(n_s: int, n_t: int, workers: int) -> tuple[int, int]:
    """Choose the ``(rows, cols)`` grid shape for 1-Bucket.

    The per-cell input is ``|S|/r + |T|/c`` with ``r*c <= w``; the continuous
    optimum has ``r/c = |S|/|T|``.  The discrete shape is found by scanning
    every feasible row count and keeping the one with the smallest per-cell
    input, which also reproduces the original paper's preference for
    near-square shapes when the inputs have similar sizes.
    """
    if workers < 1:
        raise PartitioningError("workers must be at least 1")
    n_s = max(1, n_s)
    n_t = max(1, n_t)
    best_shape = (1, workers)
    best_cost = math.inf
    for rows in range(1, workers + 1):
        cols = workers // rows
        if cols < 1:
            continue
        cost = n_s / rows + n_t / cols
        if cost < best_cost:
            best_cost = cost
            best_shape = (rows, cols)
    return best_shape


class OneBucketPartitioning(JoinPartitioning):
    """Concrete 1-Bucket assignment: an ``r x c`` matrix of cells, one per worker."""

    def __init__(
        self,
        rows: int,
        cols: int,
        workers: int,
        seed: int,
        stats: PartitioningStats | None = None,
    ) -> None:
        if rows < 1 or cols < 1:
            raise PartitioningError("matrix shape must be at least 1x1")
        if rows * cols > workers:
            raise PartitioningError("1-Bucket uses at most one cell per worker")
        super().__init__("1-Bucket", workers, rows * cols, stats)
        self.rows = rows
        self.cols = cols
        self._seed = seed

    def unit_workers(self) -> np.ndarray:
        # Cell (i, j) runs on worker i*cols + j; extra workers stay idle.
        return np.arange(self.n_units, dtype=np.int64)

    def route(self, values: np.ndarray, side: str) -> tuple[np.ndarray, np.ndarray]:
        side = validate_side(side)
        matrix = np.atleast_2d(np.asarray(values, dtype=float))
        n = matrix.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        rng = np.random.default_rng((self._seed, 0 if side == "S" else 1))
        idx = np.arange(n, dtype=np.int64)
        if side == "S":
            assigned_rows = rng.integers(0, self.rows, n)
            units = assigned_rows[:, None] * self.cols + np.arange(self.cols)[None, :]
            return np.repeat(idx, self.cols), units.ravel().astype(np.int64)
        assigned_cols = rng.integers(0, self.cols, n)
        units = np.arange(self.rows)[None, :] * self.cols + assigned_cols[:, None]
        return np.repeat(idx, self.rows), units.ravel().astype(np.int64)

    def describe(self) -> dict:
        info = super().describe()
        info["matrix_shape"] = (self.rows, self.cols)
        return info


class OneBucketPartitioner(Partitioner):
    """Optimization phase of 1-Bucket (essentially free: pick the matrix shape)."""

    name = "1-Bucket"

    def __init__(self, weights: LoadWeights | None = None, seed: int = DEFAULT_SEED) -> None:
        super().__init__(weights=weights, seed=seed)

    def partition(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        workers: int,
        rng: np.random.Generator | None = None,
    ) -> OneBucketPartitioning:
        self._validate_inputs(s, t, condition, workers)
        rng = self._rng(rng)
        start = time.perf_counter()
        rows, cols = choose_matrix_shape(len(s), len(t), workers)
        stats = PartitioningStats(
            optimization_seconds=time.perf_counter() - start,
            iterations=1,
            estimated_total_input=float(len(s) * cols + len(t) * rows),
            extra={"rows": rows, "cols": cols},
        )
        return OneBucketPartitioning(
            rows=rows,
            cols=cols,
            workers=workers,
            seed=int(rng.integers(0, 2**31 - 1)),
            stats=stats,
        )
