"""CSIO: quantile range-partitioning plus coarsened join-matrix covering.

CSIO (Vitorovic et al., ICDE 2016, "Load balancing and skew resilience for
parallel joins") is the state-of-the-art distributed theta-join optimizer the
paper compares against.  Its pipeline:

1. range-partition S and T with approximate quantiles under a total order of
   the join-attribute space (the paper selects row-major order, Section 5.2),
2. coarsen the resulting join matrix and annotate it with input statistics
   and a *sampled output* distribution,
3. find a covering of the candidate cells with at most ``w`` rectangles that
   minimises the maximum rectangle load; each rectangle becomes one worker's
   partition.

The original covering uses an expensive tiling algorithm (O(n^5 log n)); this
reimplementation keeps steps 1-2 faithful and replaces the tiling with the
structured covering search of :mod:`repro.baselines.matrix_cover` (contiguous
row groups x load-balanced column intervals), which preserves CSIO's
qualitative behaviour — good load balance thanks to output statistics, but
input duplication that grows once the candidate region widens (higher
dimensionality or block-style ordering).  The substitution is documented in
DESIGN.md.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.matrix_cover import CoarsenedMatrix, RectangleCover, cover_matrix
from repro.baselines.quantiles import approximate_quantiles, assign_ranges, ordering_key
from repro.config import DEFAULT_SAMPLE_SIZE, DEFAULT_SEED, LoadWeights
from repro.core.partitioner import (
    JoinPartitioning,
    Partitioner,
    PartitioningStats,
    validate_side,
)
from repro.data.relation import Relation
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition
from repro.sampling.input_sampler import InputSample, draw_input_sample
from repro.sampling.output_sampler import OutputSample, draw_output_sample


def build_coarsened_matrix(
    input_sample: InputSample,
    output_sample: OutputSample,
    condition: BandCondition,
    s_boundaries: np.ndarray,
    t_boundaries: np.ndarray,
    ordering: str,
) -> CoarsenedMatrix:
    """Build the coarsened join matrix from the samples.

    Candidate cells are found geometrically: per-range bounding boxes (from
    the sample) must be within band width of each other in every dimension.
    Cells containing sampled output pairs are always candidates.
    """
    n_rows = s_boundaries.size + 1
    n_cols = t_boundaries.size + 1
    s_keys = ordering_key(input_sample.s_values, ordering)
    t_keys = ordering_key(input_sample.t_values, ordering)
    s_ranges = assign_ranges(s_keys, s_boundaries)
    t_ranges = assign_ranges(t_keys, t_boundaries)

    s_row_input = np.bincount(s_ranges, minlength=n_rows).astype(float) * input_sample.s_scale
    t_col_input = np.bincount(t_ranges, minlength=n_cols).astype(float) * input_sample.t_scale

    epsilons = condition.epsilons
    if ordering == "row-major":
        # Exact, conservative candidacy from the range key intervals: under
        # row-major order the key is the first join attribute, so cell (i, j)
        # can only contain joining pairs when the two key intervals are within
        # the band width of the primary dimension of each other.
        candidate = _interval_candidates(s_boundaries, t_boundaries, float(epsilons[0]))
    else:
        # Block-style (Z-order) ranges carry no simple per-dimension interval,
        # so candidacy falls back to sample bounding boxes per range.  This is
        # approximate and only used by the ordering study (paper Figure 8).
        d = condition.dimensionality
        s_boxes = _range_bounding_boxes(input_sample.s_values, s_ranges, n_rows, d)
        t_boxes = _range_bounding_boxes(input_sample.t_values, t_ranges, n_cols, d)
        candidate = np.zeros((n_rows, n_cols), dtype=bool)
        for row in range(n_rows):
            s_lo, s_hi = s_boxes[row]
            if not np.all(np.isfinite(s_lo)):
                continue
            for col in range(n_cols):
                t_lo, t_hi = t_boxes[col]
                if not np.all(np.isfinite(t_lo)):
                    continue
                # Boxes can contain joining pairs iff within eps per dimension.
                if np.all((s_lo - epsilons) <= t_hi) and np.all(t_lo <= (s_hi + epsilons)):
                    candidate[row, col] = True

    cell_output = np.zeros((n_rows, n_cols), dtype=float)
    if len(output_sample):
        out_s_keys = ordering_key(output_sample.s_coords, ordering)
        out_t_keys = ordering_key(output_sample.t_coords, ordering)
        out_rows = assign_ranges(out_s_keys, s_boundaries)
        out_cols = assign_ranges(out_t_keys, t_boundaries)
        np.add.at(cell_output, (out_rows, out_cols), output_sample.pair_scale)
        candidate[out_rows, out_cols] = True

    return CoarsenedMatrix(
        s_row_input=s_row_input,
        t_col_input=t_col_input,
        cell_output=cell_output,
        candidate=candidate,
    )


def _interval_candidates(
    s_boundaries: np.ndarray, t_boundaries: np.ndarray, epsilon: float
) -> np.ndarray:
    """Return the conservative candidate mask for row-major ordering.

    Range ``i`` of a side covers the half-open key interval
    ``[boundaries[i-1], boundaries[i])`` with infinite sentinels at the ends.
    Cell ``(i, j)`` is a candidate iff the S interval and the T interval are
    within ``epsilon`` of each other, i.e. some pair of keys drawn from the two
    intervals can satisfy the primary band predicate.
    """
    s_lo = np.concatenate([[-np.inf], s_boundaries])
    s_hi = np.concatenate([s_boundaries, [np.inf]])
    t_lo = np.concatenate([[-np.inf], t_boundaries])
    t_hi = np.concatenate([t_boundaries, [np.inf]])
    # Intervals are half-open, but using closed-interval logic only adds
    # candidates (stays conservative).
    return (s_lo[:, None] - epsilon <= t_hi[None, :]) & (t_lo[None, :] - epsilon <= s_hi[:, None])


def _range_bounding_boxes(
    values: np.ndarray, ranges: np.ndarray, n_ranges: int, d: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return per-range (min, max) bounding boxes of the sampled tuples."""
    boxes: list[tuple[np.ndarray, np.ndarray]] = []
    for r in range(n_ranges):
        mask = ranges == r
        if not np.any(mask):
            boxes.append((np.full(d, np.inf), np.full(d, -np.inf)))
            continue
        subset = values[mask]
        boxes.append((subset.min(axis=0), subset.max(axis=0)))
    return boxes


class CSIOPartitioning(JoinPartitioning):
    """Executable CSIO partitioning: one unit per covering rectangle."""

    def __init__(
        self,
        condition: BandCondition,
        ordering: str,
        s_boundaries: np.ndarray,
        t_boundaries: np.ndarray,
        cover: RectangleCover,
        workers: int,
        stats: PartitioningStats | None = None,
        method: str = "CSIO",
    ) -> None:
        if cover.n_rectangles == 0:
            raise PartitioningError("CSIO cover must contain at least one rectangle")
        super().__init__(method, workers, cover.n_rectangles, stats)
        self._condition = condition
        self._ordering = ordering
        self._s_boundaries = s_boundaries
        self._t_boundaries = t_boundaries
        self._cover = cover

    def unit_workers(self) -> np.ndarray:
        # One rectangle per worker (|rectangles| <= w by construction).
        return np.arange(self.n_units, dtype=np.int64)

    def route(self, values: np.ndarray, side: str) -> tuple[np.ndarray, np.ndarray]:
        side = validate_side(side)
        matrix = np.atleast_2d(np.asarray(values, dtype=float))
        n = matrix.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        keys = ordering_key(matrix, self._ordering)
        if side == "S":
            return self._route_s(keys)
        return self._route_t(keys)

    def _route_s(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """An S-tuple is shipped to every rectangle of its row group."""
        ranges = assign_ranges(keys, self._s_boundaries)
        groups = self._cover.row_group_of_row[ranges]
        rows_out: list[np.ndarray] = []
        units_out: list[np.ndarray] = []
        orphan_mask = np.zeros(keys.size, dtype=bool)
        for group_index, rect_ids in enumerate(self._cover.groups):
            members = np.nonzero(groups == group_index)[0]
            if members.size == 0:
                continue
            if not rect_ids:
                orphan_mask[members] = True
                continue
            rows_out.append(np.repeat(members, len(rect_ids)))
            units_out.append(np.tile(np.asarray(rect_ids, dtype=np.int64), members.size))
        orphans = np.nonzero(orphan_mask)[0]
        if orphans.size:
            # Tuples whose row group has no candidate cells join with nothing;
            # Definition 1 still requires them to reach some worker.
            rows_out.append(orphans)
            units_out.append(np.zeros(orphans.size, dtype=np.int64))
        return np.concatenate(rows_out), np.concatenate(units_out)

    def _route_t(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """A T-tuple is shipped to (at most) one rectangle per row group — the one
        whose column interval contains the tuple's T-range."""
        ranges = assign_ranges(keys, self._t_boundaries)
        rows_out: list[np.ndarray] = []
        units_out: list[np.ndarray] = []
        covered = np.zeros(keys.size, dtype=bool)
        for rect_ids in self._cover.groups:
            for rect_id in rect_ids:
                rect = self._cover.rectangles[rect_id]
                members = np.nonzero((ranges >= rect.col_start) & (ranges < rect.col_end))[0]
                if members.size == 0:
                    continue
                rows_out.append(members)
                units_out.append(np.full(members.size, rect_id, dtype=np.int64))
                covered[members] = True
        orphans = np.nonzero(~covered)[0]
        if orphans.size:
            rows_out.append(orphans)
            units_out.append(np.zeros(orphans.size, dtype=np.int64))
        return np.concatenate(rows_out), np.concatenate(units_out)

    def describe(self) -> dict:
        info = super().describe()
        info["rectangles"] = self._cover.n_rectangles
        info["ordering"] = self._ordering
        return info


class CSIOPartitioner(Partitioner):
    """Optimization phase of CSIO.

    Parameters
    ----------
    granularity:
        Number of quantile ranges per input (matrix side length).  ``None``
        uses ``8 * workers`` capped at 256, mirroring CSIO's coarsening of the
        full quantile histogram.
    ordering:
        Total order of the join-attribute space: ``"row-major"`` (paper's
        choice) or ``"block"`` (Z-order, Figure 8's alternative).
    sample_size:
        Input-sample size used to build the coarsened matrix.
    """

    name = "CSIO"

    def __init__(
        self,
        granularity: int | None = None,
        ordering: str = "row-major",
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        weights: LoadWeights | None = None,
        seed: int = DEFAULT_SEED,
    ) -> None:
        super().__init__(weights=weights, seed=seed)
        if granularity is not None and granularity < 1:
            raise PartitioningError("granularity must be positive")
        self.granularity = granularity
        self.ordering = ordering
        self.sample_size = sample_size

    def partition(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        workers: int,
        rng: np.random.Generator | None = None,
    ) -> CSIOPartitioning:
        self._validate_inputs(s, t, condition, workers)
        rng = self._rng(rng)
        start = time.perf_counter()
        granularity = self.granularity if self.granularity is not None else min(8 * workers, 256)

        input_sample = draw_input_sample(s, t, condition, self.sample_size, rng)
        output_sample = draw_output_sample(s, t, condition, max(1, self.sample_size // 2), rng)

        s_keys = ordering_key(input_sample.s_values, self.ordering)
        t_keys = ordering_key(input_sample.t_values, self.ordering)
        s_boundaries = approximate_quantiles(s_keys, granularity)
        t_boundaries = approximate_quantiles(t_keys, granularity)

        matrix = build_coarsened_matrix(
            input_sample, output_sample, condition, s_boundaries, t_boundaries, self.ordering
        )
        cover = cover_matrix(matrix, workers, self.weights)
        cover.validate_covers(matrix)

        stats = PartitioningStats(
            optimization_seconds=time.perf_counter() - start,
            iterations=cover.n_rectangles,
            estimated_output=output_sample.estimated_output,
            estimated_max_load=cover.max_load,
            extra={
                "granularity": granularity,
                "candidate_cells": matrix.n_candidate_cells,
                "rectangles": cover.n_rectangles,
                "ordering": self.ordering,
            },
        )
        return CSIOPartitioning(
            condition=condition,
            ordering=self.ordering,
            s_boundaries=s_boundaries,
            t_boundaries=t_boundaries,
            cover=cover,
            workers=workers,
            stats=stats,
        )
