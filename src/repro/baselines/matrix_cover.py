"""Coarsened join-matrix statistics and rectangle coverings.

Join-matrix covering methods (CSIO, M-Bucket-I) work on a coarsened version
of the join matrix ``S x T``: the rows are inter-quantile ranges of S under
some total order of the join-attribute space, the columns are ranges of T,
and each cell is annotated with estimated input and output.  A *candidate*
cell is one that may contain joining pairs and therefore has to be covered by
some worker's rectangle.

This module provides

* :class:`CoarsenedMatrix` — the statistics object built from samples,
* :class:`Rectangle` / :class:`RectangleCover` — an axis-aligned, cell-disjoint
  cover of the candidate cells with at most ``w`` rectangles,
* :func:`cover_matrix` — the covering search used by the CSIO reimplementation
  (contiguous row groups, load-balanced column intervals per group; see
  DESIGN.md for how this relates to the original tiling algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import LoadWeights
from repro.exceptions import OptimizationError, PartitioningError


@dataclass(frozen=True)
class Rectangle:
    """One covering rectangle: a contiguous block of S-ranges x T-ranges."""

    row_start: int
    row_end: int  # exclusive
    col_start: int
    col_end: int  # exclusive
    load: float = 0.0

    def __post_init__(self) -> None:
        if self.row_start >= self.row_end or self.col_start >= self.col_end:
            raise PartitioningError("rectangles must span at least one cell")

    @property
    def n_cells(self) -> int:
        """Return the number of coarsened cells covered by the rectangle."""
        return (self.row_end - self.row_start) * (self.col_end - self.col_start)

    def contains_cell(self, row: int, col: int) -> bool:
        """Return ``True`` when the rectangle covers cell ``(row, col)``."""
        return self.row_start <= row < self.row_end and self.col_start <= col < self.col_end


@dataclass
class CoarsenedMatrix:
    """Sampled statistics of the coarsened join matrix.

    Attributes
    ----------
    s_row_input / t_col_input:
        Estimated number of S-tuples per row range / T-tuples per column range.
    cell_output:
        Dense ``(rows, cols)`` matrix of estimated output per cell.
    candidate:
        Boolean ``(rows, cols)`` mask of cells that may contain joining pairs.
    """

    s_row_input: np.ndarray
    t_col_input: np.ndarray
    cell_output: np.ndarray
    candidate: np.ndarray

    def __post_init__(self) -> None:
        rows, cols = self.n_rows, self.n_cols
        if self.cell_output.shape != (rows, cols) or self.candidate.shape != (rows, cols):
            raise OptimizationError("cell matrices must be (rows, cols)")

    @property
    def n_rows(self) -> int:
        """Return the number of S ranges (matrix rows)."""
        return int(self.s_row_input.shape[0])

    @property
    def n_cols(self) -> int:
        """Return the number of T ranges (matrix columns)."""
        return int(self.t_col_input.shape[0])

    @property
    def n_candidate_cells(self) -> int:
        """Return the number of candidate cells that must be covered."""
        return int(self.candidate.sum())

    def total_load(self, weights: LoadWeights) -> float:
        """Return the total load of the matrix (all input once plus all output)."""
        return weights.load(
            float(self.s_row_input.sum() + self.t_col_input.sum()),
            float(self.cell_output.sum()),
        )

    def rectangle_load(self, rect: Rectangle, weights: LoadWeights) -> float:
        """Return the load of one rectangle: its rows' S input, columns' T input
        and covered cells' output."""
        s_input = float(self.s_row_input[rect.row_start : rect.row_end].sum())
        t_input = float(self.t_col_input[rect.col_start : rect.col_end].sum())
        output = float(
            self.cell_output[rect.row_start : rect.row_end, rect.col_start : rect.col_end].sum()
        )
        return weights.load(s_input + t_input, output)


@dataclass
class RectangleCover:
    """A cell-disjoint cover of the candidate cells by at most ``w`` rectangles."""

    rectangles: list[Rectangle]
    row_group_of_row: np.ndarray
    max_load: float
    groups: list[list[int]] = field(default_factory=list)

    @property
    def n_rectangles(self) -> int:
        """Return the number of rectangles in the cover."""
        return len(self.rectangles)

    def rectangles_of_group(self, group: int) -> list[int]:
        """Return the rectangle indices belonging to one row group."""
        return self.groups[group]

    def validate_covers(self, matrix: CoarsenedMatrix) -> None:
        """Raise :class:`PartitioningError` if any candidate cell is uncovered or
        covered more than once."""
        coverage = np.zeros((matrix.n_rows, matrix.n_cols), dtype=int)
        for rect in self.rectangles:
            coverage[rect.row_start : rect.row_end, rect.col_start : rect.col_end] += 1
        if np.any(coverage > 1):
            raise PartitioningError("rectangle cover overlaps on some cells")
        uncovered = matrix.candidate & (coverage == 0)
        if np.any(uncovered):
            raise PartitioningError(
                f"{int(uncovered.sum())} candidate cells are not covered by any rectangle"
            )


def _balanced_contiguous_groups(weights_per_row: np.ndarray, n_groups: int) -> list[tuple[int, int]]:
    """Split rows into ``n_groups`` contiguous groups with roughly equal total weight."""
    n = weights_per_row.shape[0]
    n_groups = min(n_groups, n)
    total = float(weights_per_row.sum())
    if total <= 0:
        bounds = np.linspace(0, n, n_groups + 1).astype(int)
    else:
        cumulative = np.cumsum(weights_per_row)
        targets = np.linspace(0, total, n_groups + 1)[1:-1]
        interior = np.searchsorted(cumulative, targets) + 1
        bounds = np.concatenate([[0], interior, [n]])
    bounds = np.unique(np.clip(bounds, 0, n))
    if bounds[0] != 0:
        bounds = np.concatenate([[0], bounds])
    if bounds[-1] != n:
        bounds = np.concatenate([bounds, [n]])
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(len(bounds) - 1) if bounds[i] < bounds[i + 1]]


def _split_column_span(
    matrix: CoarsenedMatrix,
    row_start: int,
    row_end: int,
    col_start: int,
    col_end: int,
    n_parts: int,
    weights: LoadWeights,
) -> list[tuple[int, int]]:
    """Split a column span into ``n_parts`` contiguous intervals balancing T input + output."""
    span = col_end - col_start
    n_parts = max(1, min(n_parts, span))
    col_weights = (
        weights.beta_input * matrix.t_col_input[col_start:col_end]
        + weights.beta_output * matrix.cell_output[row_start:row_end, col_start:col_end].sum(axis=0)
    )
    groups = _balanced_contiguous_groups(col_weights, n_parts)
    return [(col_start + lo, col_start + hi) for lo, hi in groups]


def cover_matrix(
    matrix: CoarsenedMatrix, workers: int, weights: LoadWeights
) -> RectangleCover:
    """Cover all candidate cells with at most ``workers`` cell-disjoint rectangles.

    The search sweeps the number of contiguous row groups ``G`` from 1 to
    ``workers``; for each ``G`` the rows are grouped by balanced S input, each
    group's candidate column span is split into load-balanced column
    intervals (rectangles), with the per-group rectangle budget allocated
    proportionally to group load.  The grouping with the smallest maximum
    rectangle load wins.
    """
    if workers < 1:
        raise OptimizationError("workers must be at least 1")
    n_rows, n_cols = matrix.n_rows, matrix.n_cols
    row_load = (
        weights.beta_input * matrix.s_row_input
        + weights.beta_output * matrix.cell_output.sum(axis=1)
    )

    best: RectangleCover | None = None
    for n_groups in range(1, min(workers, n_rows) + 1):
        row_groups = _balanced_contiguous_groups(row_load, n_groups)
        group_loads = np.array(
            [float(row_load[lo:hi].sum()) for lo, hi in row_groups], dtype=float
        )
        budgets = _allocate_budgets(group_loads, workers, len(row_groups))

        rectangles: list[Rectangle] = []
        groups: list[list[int]] = []
        row_group_of_row = np.zeros(n_rows, dtype=np.int64)
        feasible = True
        for group_index, ((row_lo, row_hi), budget) in enumerate(zip(row_groups, budgets)):
            row_group_of_row[row_lo:row_hi] = group_index
            group_candidates = matrix.candidate[row_lo:row_hi]
            candidate_cols = np.nonzero(group_candidates.any(axis=0))[0]
            group_rect_ids: list[int] = []
            if candidate_cols.size == 0:
                groups.append(group_rect_ids)
                continue
            col_lo, col_hi = int(candidate_cols.min()), int(candidate_cols.max()) + 1
            intervals = _split_column_span(
                matrix, row_lo, row_hi, col_lo, col_hi, budget, weights
            )
            for interval_lo, interval_hi in intervals:
                rect = Rectangle(row_lo, row_hi, interval_lo, interval_hi)
                rect = Rectangle(
                    rect.row_start,
                    rect.row_end,
                    rect.col_start,
                    rect.col_end,
                    load=matrix.rectangle_load(rect, weights),
                )
                group_rect_ids.append(len(rectangles))
                rectangles.append(rect)
            groups.append(group_rect_ids)
        if not rectangles or len(rectangles) > workers:
            feasible = len(rectangles) <= workers and bool(rectangles)
            if not feasible:
                continue
        max_load = max((r.load for r in rectangles), default=0.0)
        cover = RectangleCover(
            rectangles=rectangles,
            row_group_of_row=row_group_of_row,
            max_load=max_load,
            groups=groups,
        )
        if best is None or cover.max_load < best.max_load:
            best = cover
    if best is None:
        raise OptimizationError("could not find a feasible rectangle cover")
    return best


def _allocate_budgets(group_loads: np.ndarray, workers: int, n_groups: int) -> list[int]:
    """Allocate the ``workers`` rectangle budget over row groups proportionally to load."""
    if n_groups == 0:
        return []
    if group_loads.sum() <= 0:
        shares = np.full(n_groups, workers / n_groups)
    else:
        shares = workers * group_loads / group_loads.sum()
    budgets = np.maximum(1, np.floor(shares).astype(int))
    # Trim or distribute the remainder while keeping every group at >= 1.
    while budgets.sum() > workers and np.any(budgets > 1):
        budgets[int(np.argmax(budgets))] -= 1
    remainder = workers - int(budgets.sum())
    if remainder > 0:
        fractional = shares - np.floor(shares)
        for idx in np.argsort(-fractional)[:remainder]:
            budgets[idx] += 1
    return budgets.tolist()
