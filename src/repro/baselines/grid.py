"""Grid-epsilon: attribute-space grid partitioning.

The classic band-join partitioning (Soloviev's truncating hash, DeWitt et
al.'s partitioned band-join, generalised to multiple dimensions in the
paper's Figure 6): lay a regular grid with cell side length equal to the band
width over the join-attribute space.  Every S-tuple belongs to exactly one
cell; every T-tuple is copied to every cell its epsilon-range intersects —
up to 3 cells per dimension, hence up to ``3^d`` copies in ``d`` dimensions.

Optimization cost is near zero, but the method inherits the two weaknesses
the paper proves and measures: unavoidable duplication that grows
exponentially with dimensionality, and a load floor set by the densest
epsilon-range (Lemma 2).

The implementation supports an arbitrary cell-size multiplier so that the
same machinery powers the Grid* search (:mod:`repro.baselines.grid_star`)
and the grid-size sweep of paper Table 5.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import DEFAULT_SEED, LoadWeights
from repro.core.assignment import lpt_assignment
from repro.core.partitioner import (
    JoinPartitioning,
    Partitioner,
    PartitioningStats,
    validate_side,
)
from repro.data.relation import Relation
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition

#: Safety valve: refuse to materialise more than this many replicated copies.
#: (The paper's Grid-eps similarly "failed ... due to a memory exception" on
#: its largest workload; the guard makes that failure mode explicit.)
DEFAULT_MAX_COPIES: int = 30_000_000


def grid_cell_sizes(condition: BandCondition, multiplier: float) -> np.ndarray:
    """Return the per-dimension grid cell sizes ``multiplier * eps_i``.

    Grid partitioning is undefined for zero band widths (an equi-join
    dimension would need infinitely many cells), mirroring the paper's note
    that Grid-eps is not defined for band width zero.
    """
    if multiplier <= 0:
        raise PartitioningError("grid multiplier must be positive")
    epsilons = condition.epsilons
    if np.any(epsilons <= 0):
        raise PartitioningError(
            "Grid partitioning is not defined for zero band widths "
            "(at least one dimension has eps = 0)"
        )
    return epsilons * multiplier


class GridPartitioning(JoinPartitioning):
    """Concrete grid partitioning: one unit per non-empty grid cell."""

    def __init__(
        self,
        condition: BandCondition,
        cell_sizes: np.ndarray,
        cell_keys: np.ndarray,
        key_minimums: np.ndarray,
        key_strides: np.ndarray,
        unit_worker_ids: np.ndarray,
        workers: int,
        method: str = "Grid-eps",
        stats: PartitioningStats | None = None,
    ) -> None:
        if cell_keys.size == 0:
            raise PartitioningError("grid partitioning needs at least one populated cell")
        super().__init__(method, workers, int(cell_keys.size), stats)
        self._condition = condition
        self._cell_sizes = np.asarray(cell_sizes, dtype=float)
        self._cell_keys = np.asarray(cell_keys, dtype=np.int64)  # sorted unique keys
        self._key_minimums = np.asarray(key_minimums, dtype=np.int64)
        self._key_strides = np.asarray(key_strides, dtype=np.int64)
        self._unit_worker_ids = np.asarray(unit_worker_ids, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Cell arithmetic (shared with the partitioner)
    # ------------------------------------------------------------------ #
    @staticmethod
    def cell_indices(values: np.ndarray, cell_sizes: np.ndarray) -> np.ndarray:
        """Return the per-dimension integer cell indices of each row."""
        return np.floor(np.asarray(values, dtype=float) / cell_sizes).astype(np.int64)

    def _encode(self, indices: np.ndarray) -> np.ndarray:
        """Flatten per-dimension cell indices into a single int64 key."""
        shifted = indices - self._key_minimums
        return (shifted * self._key_strides).sum(axis=1)

    def _lookup_units(self, keys: np.ndarray) -> np.ndarray:
        """Map flattened cell keys to unit ids (hash-fallback for unseen cells)."""
        positions = np.searchsorted(self._cell_keys, keys)
        positions = np.clip(positions, 0, self._cell_keys.size - 1)
        known = self._cell_keys[positions] == keys
        if not np.all(known):
            # Cells never seen at optimization time (possible when routing data
            # the optimizer did not observe): fall back to hashing the key.
            positions = positions.copy()
            positions[~known] = np.abs(keys[~known]) % self._cell_keys.size
        return positions.astype(np.int64)

    # ------------------------------------------------------------------ #
    # JoinPartitioning API
    # ------------------------------------------------------------------ #
    def unit_workers(self) -> np.ndarray:
        return self._unit_worker_ids

    def route(self, values: np.ndarray, side: str) -> tuple[np.ndarray, np.ndarray]:
        side = validate_side(side)
        matrix = np.atleast_2d(np.asarray(values, dtype=float))
        n = matrix.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        if side == "S":
            indices = self.cell_indices(matrix, self._cell_sizes)
            units = self._lookup_units(self._encode(indices))
            return np.arange(n, dtype=np.int64), units
        rows, keys = expand_epsilon_cells(
            matrix, self._condition, self._cell_sizes, self._key_minimums, self._key_strides
        )
        return rows, self._lookup_units(keys)

    def describe(self) -> dict:
        info = super().describe()
        info["cell_sizes"] = self._cell_sizes.tolist()
        return info


def expand_epsilon_cells(
    t_matrix: np.ndarray,
    condition: BandCondition,
    cell_sizes: np.ndarray,
    key_minimums: np.ndarray,
    key_strides: np.ndarray,
    max_copies: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand every T-tuple to the flattened keys of all cells its epsilon-range touches.

    Returns parallel arrays ``(row_indices, cell_keys)``; a row appears once
    per touched cell.  Raises :class:`PartitioningError` when the expansion
    would exceed ``max_copies`` (the library's stand-in for the out-of-memory
    failure the paper observed for Grid-eps on its largest workload).
    """
    lower, upper = condition.epsilon_range(t_matrix, around="t")
    low_idx = np.floor(lower / cell_sizes).astype(np.int64)
    high_idx = np.floor(upper / cell_sizes).astype(np.int64)
    counts = high_idx - low_idx + 1
    copies_per_row = counts.prod(axis=1)
    total_copies = int(copies_per_row.sum())
    if max_copies is not None and total_copies > max_copies:
        raise PartitioningError(
            f"grid replication would materialise {total_copies:,} copies "
            f"(limit {max_copies:,}); the grid is too fine for this workload"
        )

    n, d = t_matrix.shape
    # Expand dimension by dimension: each pass multiplies out the cells touched
    # in that dimension while accumulating the flattened key.
    current_rows = np.arange(n, dtype=np.int64)
    current_keys = np.zeros(n, dtype=np.int64)
    for dim in range(d):
        dim_counts = counts[current_rows, dim]
        total = int(dim_counts.sum())
        base = current_keys + (low_idx[current_rows, dim] - key_minimums[dim]) * key_strides[dim]
        offsets = np.repeat(np.cumsum(dim_counts) - dim_counts, dim_counts)
        within = (np.arange(total, dtype=np.int64) - offsets).astype(np.int64)
        current_keys = np.repeat(base, dim_counts) + within * key_strides[dim]
        current_rows = np.repeat(current_rows, dim_counts)
    return current_rows, current_keys


def replication_counts(
    t_matrix: np.ndarray, condition: BandCondition, cell_sizes: np.ndarray
) -> np.ndarray:
    """Return, per T-tuple, the number of grid cells its epsilon-range touches
    (without materialising the copies)."""
    lower, upper = condition.epsilon_range(t_matrix, around="t")
    low_idx = np.floor(lower / cell_sizes).astype(np.int64)
    high_idx = np.floor(upper / cell_sizes).astype(np.int64)
    return (high_idx - low_idx + 1).prod(axis=1)


class GridEpsilonPartitioner(Partitioner):
    """Grid-eps optimizer: build the populated-cell table and place cells on workers.

    Parameters
    ----------
    multiplier:
        Grid cell size as a multiple of the band width (1.0 = the paper's
        default Grid-eps; larger values give the coarser grids of Table 5).
    assignment:
        ``"lpt"`` (greedy placement by per-cell input counts, default) or
        ``"hash"`` (random placement as a plain Hadoop partitioner would do).
    max_copies:
        Upper limit on materialised T-copies before the partitioner refuses
        (simulating the memory failure of an overly fine grid).
    """

    name = "Grid-eps"

    def __init__(
        self,
        multiplier: float = 1.0,
        assignment: str = "lpt",
        weights: LoadWeights | None = None,
        seed: int = DEFAULT_SEED,
        max_copies: int = DEFAULT_MAX_COPIES,
    ) -> None:
        super().__init__(weights=weights, seed=seed)
        if assignment not in ("lpt", "hash"):
            raise PartitioningError("assignment must be 'lpt' or 'hash'")
        self.multiplier = multiplier
        self.assignment = assignment
        self.max_copies = max_copies

    def partition(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        workers: int,
        rng: np.random.Generator | None = None,
    ) -> GridPartitioning:
        self._validate_inputs(s, t, condition, workers)
        rng = self._rng(rng)
        start = time.perf_counter()
        cell_sizes = grid_cell_sizes(condition, self.multiplier)
        attrs = condition.attributes
        s_matrix = s.join_matrix(attrs)
        t_matrix = t.join_matrix(attrs)

        s_idx = GridPartitioning.cell_indices(s_matrix, cell_sizes)
        lower, upper = condition.epsilon_range(t_matrix, around="t")
        t_low = np.floor(lower / cell_sizes).astype(np.int64)
        t_high = np.floor(upper / cell_sizes).astype(np.int64)

        minimums, strides = self._key_geometry(s_idx, t_low, t_high)
        t_rows, t_keys = expand_epsilon_cells(
            t_matrix, condition, cell_sizes, minimums, strides, max_copies=self.max_copies
        )
        s_keys = ((s_idx - minimums) * strides).sum(axis=1)

        cell_keys, inverse_counts = np.unique(
            np.concatenate([s_keys, t_keys]), return_counts=True
        )
        unit_loads = inverse_counts.astype(float)
        if self.assignment == "lpt":
            unit_worker_ids = lpt_assignment(unit_loads, workers)
        else:
            unit_worker_ids = rng.integers(0, workers, size=cell_keys.size, dtype=np.int64)

        stats = PartitioningStats(
            optimization_seconds=time.perf_counter() - start,
            iterations=1,
            estimated_total_input=float(s_keys.size + t_keys.size),
            extra={
                "cells": int(cell_keys.size),
                "multiplier": self.multiplier,
                "t_replication": float(t_keys.size / max(1, len(t))),
            },
        )
        return GridPartitioning(
            condition=condition,
            cell_sizes=cell_sizes,
            cell_keys=cell_keys,
            key_minimums=minimums,
            key_strides=strides,
            unit_worker_ids=unit_worker_ids,
            workers=workers,
            method=self.name if self.multiplier == 1.0 else f"Grid(x{self.multiplier:g})",
            stats=stats,
        )

    @staticmethod
    def _key_geometry(
        s_idx: np.ndarray, t_low: np.ndarray, t_high: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compute per-dimension index minimums and mixed-radix strides for flat keys."""
        stacked_min = np.minimum(s_idx.min(axis=0), t_low.min(axis=0))
        stacked_max = np.maximum(s_idx.max(axis=0), t_high.max(axis=0))
        extents = (stacked_max - stacked_min + 1).astype(np.int64)
        # The flat cell key is a mixed-radix number over the per-dimension cell
        # counts; refuse grids whose key space does not fit in an int64 (this
        # only happens for very fine grids in many dimensions, where the
        # replication explosion makes the grid unusable anyway).
        if float(np.prod(extents.astype(float))) >= 2.0**62:
            raise PartitioningError(
                "grid has too many cells to index: "
                f"per-dimension cell counts {extents.tolist()} overflow the flat cell key; "
                "use a coarser grid"
            )
        strides = np.ones_like(extents)
        for dim in range(extents.size - 2, -1, -1):
            strides[dim] = strides[dim + 1] * extents[dim + 1]
        return stacked_min, strides
