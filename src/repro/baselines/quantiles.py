"""Approximate quantiles and total orders on the multidimensional space.

Join-matrix covering methods (CSIO, M-Bucket-I, distributed IEJoin) need a
total order of the join-attribute space so that "ranges" (inter-quantile
intervals) are well defined.  Section 5.2 of the paper analyses two choices:

* **row-major order** — order by the most significant dimension first; ranges
  become long stripes orthogonal to ``A1``.  This minimises the number of
  candidate cells when stripes are at least one band width tall and is the
  order the paper selects for CSIO.
* **block-style order** — a space-filling order (implemented here as the
  Morton / Z-order curve) producing square-ish blocks; an S-block can then
  join with up to 3^d neighbouring T-blocks, widening the candidate band.

Both orders are exposed so the ordering experiment (Figure 8) can be
reproduced; all covering baselines default to row-major.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PartitioningError

#: Number of bits per dimension used by the Morton (Z-order) key.
MORTON_BITS: int = 16


def approximate_quantiles(values: np.ndarray, n_ranges: int) -> np.ndarray:
    """Return ``n_ranges - 1`` interior boundaries splitting ``values`` into
    approximately equal-sized ranges.

    Boundaries are deduplicated, so heavily skewed data may yield fewer than
    ``n_ranges`` distinct ranges (exactly like approximate quantiles computed
    from a sample in the original systems).
    """
    values = np.asarray(values, dtype=float)
    if n_ranges < 1:
        raise PartitioningError("n_ranges must be at least 1")
    if values.size == 0 or n_ranges == 1:
        return np.empty(0)
    probs = np.linspace(0, 1, n_ranges + 1)[1:-1]
    boundaries = np.quantile(values, probs)
    return np.unique(boundaries)


def assign_ranges(values: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Map each value to its range index given interior boundaries (range ``i`` is
    ``[boundaries[i-1], boundaries[i])``)."""
    values = np.asarray(values, dtype=float)
    boundaries = np.asarray(boundaries, dtype=float)
    return np.searchsorted(boundaries, values, side="right")


def row_major_key(matrix: np.ndarray, primary_dimension: int = 0) -> np.ndarray:
    """Return the row-major ordering key: simply the most significant dimension.

    Ties in the primary dimension are irrelevant for range partitioning, so
    the key is one-dimensional.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    if not 0 <= primary_dimension < matrix.shape[1]:
        raise PartitioningError(f"primary_dimension {primary_dimension} out of range")
    return matrix[:, primary_dimension]


def morton_key(
    matrix: np.ndarray,
    lower: np.ndarray | None = None,
    upper: np.ndarray | None = None,
    bits: int = MORTON_BITS,
) -> np.ndarray:
    """Return the Morton (Z-order) key of every row — the "block-style" order.

    Coordinates are normalised to ``[0, 2^bits)`` using the given (or data)
    bounds and their bits are interleaved, so consecutive key ranges
    correspond to roughly square blocks of the space.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    n, d = matrix.shape
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    if bits * d > 63:
        bits = max(1, 63 // d)
    lo = np.asarray(lower, dtype=float) if lower is not None else matrix.min(axis=0)
    hi = np.asarray(upper, dtype=float) if upper is not None else matrix.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    cells = np.clip(((matrix - lo) / span) * (2**bits - 1), 0, 2**bits - 1).astype(np.uint64)

    key = np.zeros(n, dtype=np.uint64)
    for bit in range(bits):
        for dim in range(d):
            bit_values = (cells[:, dim] >> np.uint64(bit)) & np.uint64(1)
            key |= bit_values << np.uint64(bit * d + dim)
    return key


def ordering_key(
    matrix: np.ndarray,
    method: str = "row-major",
    lower: np.ndarray | None = None,
    upper: np.ndarray | None = None,
) -> np.ndarray:
    """Return the ordering key of every row under the requested total order."""
    if method == "row-major":
        return row_major_key(matrix)
    if method == "block":
        return morton_key(matrix, lower=lower, upper=upper).astype(float)
    raise PartitioningError(f"unknown ordering method {method!r}; use 'row-major' or 'block'")
