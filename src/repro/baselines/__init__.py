"""Baseline distributed band-join partitioners the paper compares against.

* :class:`OneBucketPartitioner` — random join-matrix cover (Okcan &
  Riedewald), near-optimal for Cartesian products, duplicates input ~sqrt(w)x.
* :class:`GridEpsilonPartitioner` — attribute-space grid with cell size equal
  to the band width (Soloviev / DeWitt et al.).
* :class:`GridStarPartitioner` — the paper's Grid* extension that searches
  coarser grid sizes with the running-time model.
* :class:`CSIOPartitioner` — quantile range-partitioning + coarsened
  join-matrix covering with input *and* output statistics (Vitorovic et al.).
* :class:`IEJoinPartitioner` — the quantile block partitioning used by
  distributed IEJoin (Khayyat et al.).
"""

from repro.baselines.one_bucket import OneBucketPartitioner, OneBucketPartitioning
from repro.baselines.grid import GridEpsilonPartitioner, GridPartitioning
from repro.baselines.grid_star import GridStarPartitioner
from repro.baselines.csio import CSIOPartitioner, CSIOPartitioning
from repro.baselines.iejoin import IEJoinPartitioner, IEJoinPartitioning
from repro.baselines.quantiles import approximate_quantiles, row_major_key, morton_key

__all__ = [
    "OneBucketPartitioner",
    "OneBucketPartitioning",
    "GridEpsilonPartitioner",
    "GridPartitioning",
    "GridStarPartitioner",
    "CSIOPartitioner",
    "CSIOPartitioning",
    "IEJoinPartitioner",
    "IEJoinPartitioning",
    "approximate_quantiles",
    "row_major_key",
    "morton_key",
]
