"""Grid*: cost-model-driven grid-size tuning (paper Section 6.5).

Grid-eps with the default cell size (one band width per dimension) has
near-zero optimization cost but, depending on the workload, can pay for it
with an order of magnitude more input duplication than necessary (paper
Table 5).  The Grid* extension — introduced in the paper as a stronger grid
baseline — keeps the grid structure but searches over coarsening factors
``j = 1, 2, 3, ...`` (cell size ``j * eps_i``), predicting the running time
of each candidate grid with the same running-time model RecPart and CSIO use
and stopping at the first local minimum.

The candidate grids are evaluated on the input and output *samples* (never
on the full data), exactly like RecPart's optimizer, so the search cost stays
small.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.grid import (
    GridEpsilonPartitioner,
    GridPartitioning,
    grid_cell_sizes,
    replication_counts,
)
from repro.config import DEFAULT_SAMPLE_SIZE, DEFAULT_SEED, LoadWeights
from repro.core.assignment import lpt_assignment, worker_loads
from repro.core.partitioner import Partitioner
from repro.cost.model import RunningTimeModel, default_running_time_model
from repro.data.relation import Relation
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition
from repro.sampling.input_sampler import InputSample, draw_input_sample
from repro.sampling.output_sampler import OutputSample, draw_output_sample


@dataclass(frozen=True)
class GridCandidate:
    """One evaluated grid size during the Grid* search."""

    multiplier: float
    estimated_total_input: float
    estimated_max_input: float
    estimated_max_output: float
    predicted_time: float

    def as_row(self) -> tuple:
        """Return the candidate as a report row (multiplier, I, I_m, O_m, time)."""
        return (
            self.multiplier,
            self.estimated_total_input,
            self.estimated_max_input,
            self.estimated_max_output,
            self.predicted_time,
        )


def estimate_grid_statistics(
    input_sample: InputSample,
    output_sample: OutputSample,
    condition: BandCondition,
    multiplier: float,
    workers: int,
    weights: LoadWeights,
) -> tuple[float, float, float]:
    """Estimate (total input, max worker input, max worker output) of a grid size.

    Sample tuples are mapped to their grid cells, cell loads are estimated
    with the sample scale factors, cells are placed on workers with the same
    LPT policy the real Grid partitioner uses, and the most loaded worker's
    input and output are read off.
    """
    cell_sizes = grid_cell_sizes(condition, multiplier)
    s_values = input_sample.s_values
    t_values = input_sample.t_values

    s_cells = GridPartitioning.cell_indices(s_values, cell_sizes)
    t_cells = GridPartitioning.cell_indices(t_values, cell_sizes)
    t_copies = replication_counts(t_values, condition, cell_sizes)

    # Output pairs are produced in the cell of their S-side tuple.
    out_cells = (
        GridPartitioning.cell_indices(output_sample.s_coords, cell_sizes)
        if len(output_sample)
        else np.empty((0, condition.dimensionality), dtype=np.int64)
    )

    def cell_keys(cells: np.ndarray) -> np.ndarray:
        if cells.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return np.array([hash(tuple(row)) for row in cells], dtype=np.int64)

    s_keys = cell_keys(s_cells)
    t_keys = cell_keys(t_cells)
    out_keys = cell_keys(out_cells)
    all_keys = np.unique(np.concatenate([s_keys, t_keys]))
    if all_keys.size == 0:
        return 0.0, 0.0, 0.0

    def per_cell(keys: np.ndarray, weights_per_entry: np.ndarray | None = None) -> np.ndarray:
        counts = np.zeros(all_keys.size)
        if keys.size == 0:
            return counts
        positions = np.searchsorted(all_keys, keys)
        valid = (positions < all_keys.size) & (all_keys[np.clip(positions, 0, all_keys.size - 1)] == keys)
        if weights_per_entry is None:
            np.add.at(counts, positions[valid], 1.0)
        else:
            np.add.at(counts, positions[valid], weights_per_entry[valid])
        return counts

    cell_s = per_cell(s_keys) * input_sample.s_scale
    # A T-tuple counts once toward its own cell and (copies - 1) more toward
    # neighbours; the neighbour cells may be unpopulated in the sample, so the
    # per-cell attribution is approximate but the total is exact.
    cell_t = per_cell(t_keys, t_copies.astype(float)) * input_sample.t_scale
    cell_out = per_cell(out_keys) * output_sample.pair_scale

    cell_inputs = cell_s + cell_t
    cell_loads = weights.beta_input * cell_inputs + weights.beta_output * cell_out
    assignment = lpt_assignment(cell_loads, workers)
    per_worker_load = worker_loads(cell_loads, assignment, workers)
    per_worker_input = worker_loads(cell_inputs, assignment, workers)
    per_worker_output = worker_loads(cell_out, assignment, workers)
    most_loaded = int(np.argmax(per_worker_load)) if per_worker_load.size else 0

    total_input = float(
        input_sample.s_total + float((t_copies * input_sample.t_scale).sum())
    )
    return (
        total_input,
        float(per_worker_input[most_loaded]),
        float(per_worker_output[most_loaded]),
    )


class GridStarPartitioner(Partitioner):
    """Grid* — grid partitioning with automatic cost-model-driven grid-size search.

    Parameters
    ----------
    cost_model:
        Running-time model used to score candidate grid sizes.
    max_multiplier:
        Upper bound of the coarsening search.
    sample_size:
        Size of the input sample used to evaluate candidates.
    patience:
        Number of consecutive non-improving candidates tolerated before the
        search stops (1 reproduces the paper's "until a local minimum is
        found"; a larger value makes the search more robust to sampling noise).
    """

    name = "Grid*"

    def __init__(
        self,
        cost_model: RunningTimeModel | None = None,
        max_multiplier: int = 64,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        patience: int = 2,
        assignment: str = "lpt",
        weights: LoadWeights | None = None,
        seed: int = DEFAULT_SEED,
    ) -> None:
        super().__init__(weights=weights, seed=seed)
        if max_multiplier < 1:
            raise PartitioningError("max_multiplier must be at least 1")
        if patience < 1:
            raise PartitioningError("patience must be at least 1")
        self.cost_model = cost_model if cost_model is not None else default_running_time_model()
        self.max_multiplier = max_multiplier
        self.sample_size = sample_size
        self.patience = patience
        self.assignment = assignment

    def partition(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        workers: int,
        rng: np.random.Generator | None = None,
    ) -> GridPartitioning:
        self._validate_inputs(s, t, condition, workers)
        rng = self._rng(rng)
        start = time.perf_counter()

        input_sample = draw_input_sample(s, t, condition, self.sample_size, rng)
        output_sample = draw_output_sample(s, t, condition, max(1, self.sample_size // 2), rng)

        candidates: list[GridCandidate] = []
        best: GridCandidate | None = None
        misses = 0
        multiplier = 1
        while multiplier <= self.max_multiplier:
            total_input, max_input, max_output = estimate_grid_statistics(
                input_sample, output_sample, condition, float(multiplier), workers, self.weights
            )
            predicted = self.cost_model.predict(total_input, max_input, max_output)
            candidate = GridCandidate(
                multiplier=float(multiplier),
                estimated_total_input=total_input,
                estimated_max_input=max_input,
                estimated_max_output=max_output,
                predicted_time=predicted,
            )
            candidates.append(candidate)
            if best is None or candidate.predicted_time < best.predicted_time:
                best = candidate
                misses = 0
            else:
                misses += 1
                if misses >= self.patience:
                    break
            multiplier += 1

        search_seconds = time.perf_counter() - start
        inner = GridEpsilonPartitioner(
            multiplier=best.multiplier,
            assignment=self.assignment,
            weights=self.weights,
            seed=self.seed,
        )
        partitioning = inner.partition(s, t, condition, workers, rng)
        partitioning.method = self.name
        partitioning.stats.optimization_seconds += search_seconds
        partitioning.stats.iterations = len(candidates)
        partitioning.stats.extra.update(
            {
                "chosen_multiplier": best.multiplier,
                "candidates": [c.as_row() for c in candidates],
            }
        )
        return partitioning
