"""Shared-memory column transfer for the process-pool backend.

Pickling the join matrices into every worker process would copy the data
once per task and dominate the runtime of the reduce phase.  Instead the
:class:`SharedTaskStore` places the S/T join matrices and the concatenated
per-task row-index/offset arrays into ``multiprocessing.shared_memory``
segments exactly once; a task then travels to its worker process as a
handful of integers (slice bounds into the shared arrays), and the worker
gathers its shifted matrices from the shared segments locally.

The store is a context manager: segments are unlinked when the owning
process leaves the ``with`` block, so no shared memory outlives a join.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.engine.routing import WorkerTask


@dataclass(frozen=True)
class SharedArraySpec:
    """Name, shape and dtype needed to re-open one shared array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedTaskSlice:
    """A worker task reduced to slice bounds into the shared arrays."""

    worker_id: int
    n_units: int
    s_start: int
    s_stop: int
    t_start: int
    t_stop: int


@dataclass(frozen=True)
class SharedStoreDescriptor:
    """Everything a worker process needs to rebuild the task inputs."""

    s_matrix: SharedArraySpec
    t_matrix: SharedArraySpec
    s_rows: SharedArraySpec
    s_offsets: SharedArraySpec
    t_rows: SharedArraySpec
    t_offsets: SharedArraySpec
    tasks: tuple[SharedTaskSlice, ...]


def _copy_into_shared(array: np.ndarray) -> tuple[shared_memory.SharedMemory, SharedArraySpec]:
    """Copy one array into a fresh shared-memory segment."""
    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    return segment, SharedArraySpec(segment.name, tuple(array.shape), array.dtype.str)


def _open_shared(spec: SharedArraySpec) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach to a shared segment and view it as a numpy array.

    Worker processes inherit the creator's resource-tracker process, so the
    attach-time re-registration is a harmless set-add there and cleanup
    stays with the creator's ``unlink``; explicitly unregistering here would
    remove the creator's registration and make that unlink double-free.
    """
    segment = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    return segment, view


class SharedTaskStore:
    """Owns the shared-memory segments of one engine run."""

    def __init__(
        self,
        s_matrix: np.ndarray,
        t_matrix: np.ndarray,
        tasks: list[WorkerTask],
    ) -> None:
        slices: list[SharedTaskSlice] = []
        s_parts: list[np.ndarray] = []
        t_parts: list[np.ndarray] = []
        s_offset_parts: list[np.ndarray] = []
        t_offset_parts: list[np.ndarray] = []
        s_cursor = t_cursor = 0
        for task in tasks:
            slices.append(
                SharedTaskSlice(
                    worker_id=task.worker_id,
                    n_units=task.n_units,
                    s_start=s_cursor,
                    s_stop=s_cursor + task.s_rows.size,
                    t_start=t_cursor,
                    t_stop=t_cursor + task.t_rows.size,
                )
            )
            s_parts.append(task.s_rows)
            s_offset_parts.append(task.s_offsets)
            t_parts.append(task.t_rows)
            t_offset_parts.append(task.t_offsets)
            s_cursor += task.s_rows.size
            t_cursor += task.t_rows.size

        def concat(parts: list[np.ndarray], dtype) -> np.ndarray:
            if not parts:
                return np.empty(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        self._segments: list[shared_memory.SharedMemory] = []
        specs = {}
        for field, array in (
            ("s_matrix", s_matrix),
            ("t_matrix", t_matrix),
            ("s_rows", concat(s_parts, np.int64)),
            ("s_offsets", concat(s_offset_parts, float)),
            ("t_rows", concat(t_parts, np.int64)),
            ("t_offsets", concat(t_offset_parts, float)),
        ):
            segment, spec = _copy_into_shared(array)
            self._segments.append(segment)
            specs[field] = spec
        self.descriptor = SharedStoreDescriptor(tasks=tuple(slices), **specs)

    def close(self) -> None:
        """Release and unlink every shared segment."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments = []

    def __enter__(self) -> "SharedTaskStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SharedTaskReader:
    """Worker-process view of a :class:`SharedTaskStore`.

    Opened once per worker process (pool initializer); every task then only
    needs its :class:`SharedTaskSlice` to gather the shifted matrices.
    """

    def __init__(self, descriptor: SharedStoreDescriptor) -> None:
        self.descriptor = descriptor
        self._segments = []
        self._arrays = {}
        for field in ("s_matrix", "t_matrix", "s_rows", "s_offsets", "t_rows", "t_offsets"):
            segment, view = _open_shared(getattr(descriptor, field))
            self._segments.append(segment)
            self._arrays[field] = view

    def task(self, index: int) -> WorkerTask:
        """Rebuild one worker task from the shared arrays."""
        piece = self.descriptor.tasks[index]
        return WorkerTask(
            worker_id=piece.worker_id,
            n_units=piece.n_units,
            s_rows=self._arrays["s_rows"][piece.s_start : piece.s_stop],
            s_offsets=self._arrays["s_offsets"][piece.s_start : piece.s_stop],
            t_rows=self._arrays["t_rows"][piece.t_start : piece.t_stop],
            t_offsets=self._arrays["t_offsets"][piece.t_start : piece.t_stop],
        )

    @property
    def s_matrix(self) -> np.ndarray:
        """Return the shared S join matrix (zero-copy view)."""
        return self._arrays["s_matrix"]

    @property
    def t_matrix(self) -> np.ndarray:
        """Return the shared T join matrix (zero-copy view)."""
        return self._arrays["t_matrix"]

    def close(self) -> None:
        """Detach from the shared segments (without unlinking them)."""
        self._arrays = {}
        for segment in self._segments:
            try:
                segment.close()
            except Exception:  # pragma: no cover - defensive
                pass
        self._segments = []


# --------------------------------------------------------------------- #
# Disk-backed task transfer (out-of-core joins)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SpilledArrayRef:
    """One task array, either a ``.npy`` file on disk or a small inline array.

    Streamed routing already leaves a task's row/offset arrays in spill
    files, so most refs are pure paths; tiny or heap-resident arrays travel
    inline (pickled) rather than forcing a file per empty side.
    """

    path: str | None
    inline: np.ndarray | None

    @classmethod
    def of(cls, array: np.ndarray, directory: str, label: str, created: list[str]):
        filename = getattr(array, "filename", None)
        if filename is not None and getattr(array, "offset", 1) == 0 and array.ndim == 1:
            # A raw flat memmap straight out of the spill arena — reference
            # its file; the reader re-opens it read-only.
            return cls(path=None, inline=None), _RawRef(
                path=str(filename), dtype=array.dtype.str, rows=int(array.shape[0])
            )
        if array.nbytes <= 1 << 16:
            return cls(path=None, inline=np.asarray(array)), None
        path = os.path.join(directory, f"{label}.npy")
        np.save(path, np.asarray(array))
        created.append(path)
        return cls(path=path, inline=None), None


@dataclass(frozen=True)
class _RawRef:
    """A headerless flat binary file (spill-arena format)."""

    path: str
    dtype: str
    rows: int


@dataclass(frozen=True)
class SpilledTaskSlice:
    """One worker task reduced to array references."""

    worker_id: int
    n_units: int
    arrays: dict  # field name -> SpilledArrayRef | _RawRef


@dataclass(frozen=True)
class SpilledStoreDescriptor:
    """Everything a worker process needs for an out-of-core join.

    ``s_matrix`` / ``t_matrix`` are either matrix *sources* (whose pickled
    form is just mmap segment paths + shapes) or ``.npy`` path refs for a
    heap matrix that was spilled for transfer.
    """

    s_matrix: object
    t_matrix: object
    tasks: tuple


class SpilledTaskStore:
    """Disk-backed counterpart of :class:`SharedTaskStore`.

    Used by the process-pool backend when a join involves out-of-core
    relations: instead of copying matrices into shared memory, workers
    receive mmap segment paths (via the pickled sources) and per-task
    row/offset file references, and map everything read-only themselves.
    """

    def __init__(self, s_matrix, t_matrix, tasks: list[WorkerTask]) -> None:
        self.directory = tempfile.mkdtemp(prefix="repro-taskstore-")
        self._created: list[str] = []
        slices = []
        for index, task in enumerate(tasks):
            arrays = {}
            for field in ("s_rows", "s_offsets", "t_rows", "t_offsets"):
                ref, raw = SpilledArrayRef.of(
                    getattr(task, field), self.directory, f"t{index}-{field}",
                    self._created,
                )
                arrays[field] = raw if raw is not None else ref
            slices.append(
                SpilledTaskSlice(
                    worker_id=task.worker_id, n_units=task.n_units, arrays=arrays
                )
            )
        self.descriptor = SpilledStoreDescriptor(
            s_matrix=self._matrix_ref(s_matrix, "s_matrix"),
            t_matrix=self._matrix_ref(t_matrix, "t_matrix"),
            tasks=tuple(slices),
        )

    def _matrix_ref(self, matrix, label: str):
        if isinstance(matrix, np.ndarray):
            path = os.path.join(self.directory, f"{label}.npy")
            np.save(path, np.ascontiguousarray(matrix))
            self._created.append(path)
            return SpilledArrayRef(path=path, inline=None)
        return matrix  # a picklable matrix source (segment paths only)

    def close(self) -> None:
        """Delete every file this store wrote (referenced spill files stay)."""
        shutil.rmtree(self.directory, ignore_errors=True)
        self._created = []

    def __enter__(self) -> "SpilledTaskStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _resolve_ref(ref):
    if isinstance(ref, _RawRef):
        if ref.rows == 0:
            return np.empty(0, dtype=np.dtype(ref.dtype))
        return np.memmap(ref.path, dtype=np.dtype(ref.dtype), mode="r", shape=(ref.rows,))
    if isinstance(ref, SpilledArrayRef):
        if ref.path is not None:
            return np.load(ref.path, mmap_mode="r")
        return ref.inline
    return ref


class SpilledTaskReader:
    """Worker-process view of a :class:`SpilledTaskStore` (read-only maps)."""

    def __init__(self, descriptor: SpilledStoreDescriptor) -> None:
        self.descriptor = descriptor
        self._s_matrix = _resolve_ref(descriptor.s_matrix)
        self._t_matrix = _resolve_ref(descriptor.t_matrix)

    def task(self, index: int) -> WorkerTask:
        piece = self.descriptor.tasks[index]
        arrays = {name: _resolve_ref(ref) for name, ref in piece.arrays.items()}
        return WorkerTask(worker_id=piece.worker_id, n_units=piece.n_units, **arrays)

    @property
    def s_matrix(self):
        return self._s_matrix

    @property
    def t_matrix(self):
        return self._t_matrix

    def close(self) -> None:
        self._s_matrix = None
        self._t_matrix = None
