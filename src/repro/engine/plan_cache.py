"""Partitioning plan cache.

Optimizing a partitioning (running RecPart or one of the baselines) is the
expensive part of answering a band-join: it samples both inputs, grows the
split tree and evaluates the cost model per candidate split.  Repeated
queries over the same data — the common case for a service answering many
band-joins against slowly changing relations — can skip that work entirely.

:class:`PlanCache` memoises :class:`~repro.core.partitioner.JoinPartitioning`
objects under a key derived from

* a content fingerprint of each input relation's join columns,
* the band condition (attributes and epsilon widths),
* the optimization budget (number of workers), and
* the partitioning method (partitioner name plus any extra knobs).

Because the key hashes the actual column bytes, any change to the data
invalidates the cached plan automatically — there is no explicit
invalidation API to misuse.  Entries are evicted LRU once ``max_entries``
is exceeded.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.core.partitioner import JoinPartitioning, Partitioner
from repro.data.relation import Relation, fingerprint_columns
from repro.geometry.band import BandCondition

#: Default maximum number of cached plans.
DEFAULT_PLAN_CACHE_SIZE = 32


def relation_fingerprint(relation, attributes: tuple[str, ...]) -> str:
    """Return a content hash of the relation's join columns.

    The fingerprint covers the column values, their order, dtype and length,
    so two relations fingerprint equally iff a partitioning computed for one
    routes the other identically.  Hashing is a single linear pass (blake2b
    over the raw column bytes) — orders of magnitude cheaper than any
    optimizer run it may save.

    :class:`~repro.data.relation.Relation` instances answer from their
    memoized :meth:`~repro.data.relation.Relation.fingerprint`; ad-hoc
    column mappings (``{name: array}``) are hashed on the spot.
    """
    if isinstance(relation, Relation):
        return relation.fingerprint(attributes)
    columns = [(a, np.asarray(relation[a])) for a in attributes]
    rows = int(columns[0][1].shape[0]) if columns else 0
    return fingerprint_columns(columns, rows)


def condition_key(condition: BandCondition) -> tuple:
    """Return a process-independent hashable key for a band condition."""
    return tuple(
        (p.attribute, float(p.eps_left), float(p.eps_right)) for p in condition.predicates
    )


def plan_key(
    s: Relation,
    t: Relation,
    condition: BandCondition,
    workers: int,
    method: str,
    extra: Hashable = (),
) -> tuple:
    """Build the full cache key of one (inputs, condition, budget, method) query."""
    attrs = condition.attributes
    return (
        relation_fingerprint(s, attrs),
        relation_fingerprint(t, attrs),
        condition_key(condition),
        int(workers),
        method,
        extra,
    )


@dataclass
class PlanCacheStats:
    """Hit/miss accounting of one plan cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Return the total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Return the fraction of lookups answered from the cache."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        """Return a JSON-friendly summary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class PlanCache:
    """Thread-safe LRU cache of computed join partitionings.

    All bookkeeping (the LRU ``OrderedDict`` plus the hit/miss counters) is
    guarded by one lock, so a single cache can be shared by the scheduler's
    worker threads.  Optimizer runs happen *outside* the lock — two threads
    missing on the same key may both optimize, but neither blocks unrelated
    lookups, and the single-flight deduplication of the query scheduler
    prevents that duplicate work for identical requests anyway.

    Parameters
    ----------
    max_entries:
        Maximum number of cached plans; the least recently used entry is
        evicted when the cache grows past it.
    """

    max_entries: int = DEFAULT_PLAN_CACHE_SIZE
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be at least 1")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> JoinPartitioning | None:
        """Return the cached plan for ``key`` (marking it recently used)."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return plan

    def put(self, key: tuple, plan: JoinPartitioning) -> None:
        """Insert a plan, evicting the least recently used entry if full."""
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every cached plan (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def get_or_build(
        self,
        partitioner: Partitioner,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        workers: int,
        rng: np.random.Generator | None = None,
        extra: Hashable = (),
    ) -> tuple[JoinPartitioning, bool]:
        """Return ``(plan, was_cached)`` for one query, optimizing on a miss.

        The partitioner's configuration fingerprint
        (:meth:`~repro.core.partitioner.Partitioner.plan_cache_key`) is part
        of the cache key, so two differently configured partitioners of the
        same class never share a plan; ``extra`` adds further caller-side
        discrimination when needed.  Note that an explicitly passed ``rng``
        only influences the outcome on a miss — cached plans are reused
        as-is.
        """
        key = plan_key(
            s,
            t,
            condition,
            workers,
            partitioner.name,
            extra=(partitioner.plan_cache_key(), extra),
        )
        cached = self.get(key)
        if cached is not None:
            return cached, True
        plan = partitioner.partition(s, t, condition, workers, rng=rng)
        self.put(key, plan)
        return plan, False
