"""Matrix sources: the engine's sliced view of a relation's join columns.

The legacy execution path materializes ``relation.join_matrix(attrs)`` — an
``(n, d)`` float array — before routing.  For out-of-core relations that
materialization is exactly what must not happen, so the streamed path works
against a :class:`StoreMatrixSource` instead: a thin, *picklable* adapter
over a :class:`~repro.data.storage.ColumnStore` that hands out bounded row
slices (``slice`` / ``iter_chunks``) and bounded gathers (``take``), while
the whole matrix never exists anywhere.

Pickling a source moves only the store *spec* (segment file paths + shapes)
across a process boundary — this is how the process-pool backend passes
mmap segment paths to workers instead of copying matrices into shared
memory.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.storage import (
    DEFAULT_BLOCK_BYTES,
    ColumnStore,
    MmapColumnStore,
    block_spans,
    madvise_dontneed,
)

__all__ = ["StoreMatrixSource"]


class StoreMatrixSource:
    """A relation side's join matrix, readable in bounded pieces.

    Parameters
    ----------
    store:
        Column store holding the relation's data.
    attributes:
        Join attributes in condition order — the columns of the virtual
        ``(n, d)`` float matrix this source represents.
    """

    def __init__(self, store: ColumnStore, attributes: Sequence[str]) -> None:
        self.store = store
        self.attributes = tuple(attributes)

    @classmethod
    def from_relation(cls, relation, attributes: Sequence[str]) -> "StoreMatrixSource":
        return cls(relation.store, attributes)

    @property
    def rows(self) -> int:
        return int(self.store.rows)

    @property
    def width(self) -> int:
        return len(self.attributes)

    @property
    def shape(self) -> tuple[int, int]:
        return self.rows, self.width

    @property
    def storage(self) -> str:
        return self.store.backend

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Return rows ``[start, stop)`` as a fresh float matrix."""
        start = max(0, int(start))
        stop = min(self.rows, int(stop))
        out = np.empty((max(0, stop - start), self.width), dtype=float)
        for i, attr in enumerate(self.attributes):
            out[:, i] = self.store.read(attr, start, stop)
        return out

    def iter_chunks(self, max_bytes: int = DEFAULT_BLOCK_BYTES):
        """Yield ``(start, stop, matrix)`` float chunks of at most ``max_bytes``."""
        row_bytes = 8 * max(1, self.width)
        block_rows = max(1, int(max_bytes) // row_bytes)
        for start, stop in block_spans(self.rows, block_rows):
            yield start, stop, self.slice(start, stop)

    def take(self, rows: np.ndarray) -> np.ndarray:
        """Gather an explicit row subset as a fresh float matrix."""
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty((rows.shape[0], self.width), dtype=float)
        for i, attr in enumerate(self.attributes):
            out[:, i] = self.store.take(attr, rows)
        return out

    def take_into(
        self,
        out: np.ndarray,
        rows: np.ndarray,
        block_rows: int,
        recycle_every: int = 4,
    ) -> np.ndarray:
        """Fill ``out`` with the gathered rows block by block.

        ``out`` is typically a scratch memory map: filling it in blocks and
        periodically dropping its dirty pages (plus the source's resident
        pages) keeps the gather's RSS footprint bounded by a few blocks no
        matter how large the task is.
        """
        rows = np.asarray(rows, dtype=np.int64)
        for index, (b0, b1) in enumerate(block_spans(rows.shape[0], block_rows)):
            block = rows[b0:b1]
            for i, attr in enumerate(self.attributes):
                out[b0:b1, i] = self.store.take(attr, block)
            if isinstance(out, np.memmap) and index % recycle_every == recycle_every - 1:
                madvise_dontneed(out)
                self.release()
        self.release()
        return out

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Return per-attribute ``(min, max)`` without materializing columns.

        Served from per-segment statistics when the store caches them,
        falling back to a bounded streaming scan.
        """
        d = self.width
        lo = np.zeros(d)
        hi = np.zeros(d)
        if self.rows == 0:
            return lo, hi
        pending = []
        for i, attr in enumerate(self.attributes):
            stat = self.store.column_stats(attr)
            if stat is None:
                pending.append(i)
            else:
                lo[i], hi[i] = stat
        if pending:
            first = True
            for _, _, chunk in self.iter_chunks():
                for i in pending:
                    c_lo = float(chunk[:, i].min())
                    c_hi = float(chunk[:, i].max())
                    if first:
                        lo[i], hi[i] = c_lo, c_hi
                    else:
                        lo[i] = min(lo[i], c_lo)
                        hi[i] = max(hi[i], c_hi)
                first = False
        return lo, hi

    def release(self) -> None:
        """Drop any resident pages held by the underlying store."""
        release = getattr(self.store, "release", None)
        if release is not None:
            release()

    def __reduce__(self):
        if isinstance(self.store, MmapColumnStore):
            return (_source_from_spec, (self.store.spec(), self.attributes))
        return (StoreMatrixSource, (self.store, self.attributes))

    def __repr__(self) -> str:
        return (
            f"StoreMatrixSource(rows={self.rows}, attributes={list(self.attributes)}, "
            f"storage={self.storage!r})"
        )


def _source_from_spec(spec: dict, attributes: tuple) -> StoreMatrixSource:
    return StoreMatrixSource(MmapColumnStore.from_spec(spec), attributes)
