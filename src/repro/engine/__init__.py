"""Real parallel execution engine with pluggable backends and plan caching.

This subpackage replaces "distributed execution as bookkeeping" with
execution on actual hardware, while keeping the planning layer (the
partitioners of :mod:`repro.core` and :mod:`repro.baselines`) untouched:

* :mod:`repro.engine.routing` — vectorised batch routing: all tuples are
  routed and grouped per partition unit with numpy masks, then gathered
  into one batched local-join task per worker.
* :mod:`repro.engine.backends` — pluggable execution backends: ``serial``
  (reference), ``threads`` (``ThreadPoolExecutor``, exploiting numpy's GIL
  release) and ``processes`` (``ProcessPoolExecutor`` fed through shared
  memory so join matrices are never pickled per task).
* :mod:`repro.engine.plan_cache` — a partitioning cache keyed by relation
  content fingerprints, band condition and worker budget, so repeated
  queries over the same data skip the optimization phase entirely.
* :mod:`repro.engine.engine` — :class:`ParallelJoinEngine`, which ties the
  above together and reports :class:`EngineResult` objects that plug into
  the existing :class:`~repro.distributed.stats.JobStats` metrics.

Quickstart
----------
>>> from repro import correlated_pair, BandCondition
>>> from repro.engine import ParallelJoinEngine
>>> s, t = correlated_pair(50_000, 50_000, dimensions=2, z=1.5, seed=0)
>>> condition = BandCondition.symmetric(["A1", "A2"], 0.05)
>>> engine = ParallelJoinEngine(backend="threads")
>>> first = engine.join(s, t, condition, workers=8)   # optimizes with RecPart
>>> again = engine.join(s, t, condition, workers=8)   # served from the plan cache
>>> again.plan_from_cache
True
"""

from repro.engine.backends import (
    SIMULATED,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    TaskOutcome,
    ThreadPoolBackend,
    available_backends,
    get_backend,
)
from repro.engine.engine import EngineResult, ParallelJoinEngine
from repro.engine.plan_cache import (
    PlanCache,
    PlanCacheStats,
    condition_key,
    plan_key,
    relation_fingerprint,
)
from repro.engine.routing import (
    RoutedSide,
    WorkerTask,
    build_worker_tasks,
    gather_task_inputs,
    route_side,
    unit_offset_step,
    worker_input_counts,
)

__all__ = [
    # engine
    "ParallelJoinEngine",
    "EngineResult",
    # backends
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "TaskOutcome",
    "available_backends",
    "get_backend",
    "SIMULATED",
    # plan cache
    "PlanCache",
    "PlanCacheStats",
    "plan_key",
    "condition_key",
    "relation_fingerprint",
    # routing
    "RoutedSide",
    "WorkerTask",
    "route_side",
    "build_worker_tasks",
    "gather_task_inputs",
    "unit_offset_step",
    "worker_input_counts",
]
