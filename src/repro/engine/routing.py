"""Vectorised batch routing and per-worker task construction.

The map phase of the engine: all tuples of a relation side are routed in a
single vectorised :meth:`~repro.core.partitioner.JoinPartitioning.route`
call, grouped per partition unit with one ``argsort`` + ``searchsorted``
pass (numpy masks, no per-tuple Python work), and gathered into one
:class:`WorkerTask` per worker.

A worker task batches every unit the worker owns into a single local join:
each unit's tuples are shifted by a per-unit offset in the first join
dimension that is larger than the data spread plus the band width, so tuples
from different units can never join while pairs inside a unit are
unaffected.  This is numerically equivalent to running one local join per
unit but avoids per-unit call overhead (grid partitionings can produce
hundreds of thousands of tiny units), and it gives every execution backend
the same coarse-grained, embarrassingly parallel work items.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partitioner import JoinPartitioning
from repro.exceptions import ExecutionError
from repro.geometry.band import BandCondition


@dataclass(frozen=True)
class RoutedSide:
    """One relation side after routing, grouped by partition unit.

    Attributes
    ----------
    rows:
        Original row indices of every routed tuple copy, sorted by the unit
        that receives the copy (a row index appears once per receiving unit).
    units:
        Receiving unit id of every copy, parallel to ``rows`` (ascending).
    bounds:
        ``(n_units + 1,)`` prefix boundaries: unit ``u`` owns the slice
        ``rows[bounds[u]:bounds[u + 1]]``.
    """

    rows: np.ndarray
    units: np.ndarray
    bounds: np.ndarray

    @property
    def n_copies(self) -> int:
        """Return the total number of routed tuple copies (with duplicates)."""
        return int(self.rows.size)

    def unit_rows(self, unit: int) -> np.ndarray:
        """Return the original row indices routed to one unit."""
        return self.rows[self.bounds[unit] : self.bounds[unit + 1]]


@dataclass(frozen=True)
class WorkerTask:
    """The batched local join of every unit owned by one worker.

    ``s_rows`` / ``t_rows`` are original row indices into the relation's
    join matrix; ``s_offsets`` / ``t_offsets`` are the per-tuple unit-
    separation shifts applied to the first join dimension before joining.
    """

    worker_id: int
    n_units: int
    s_rows: np.ndarray
    s_offsets: np.ndarray
    t_rows: np.ndarray
    t_offsets: np.ndarray

    @property
    def n_input(self) -> int:
        """Return the number of input tuple copies processed by the task."""
        return int(self.s_rows.size + self.t_rows.size)


def check_coverage(rows: np.ndarray, n_original: int, side: str, method: str) -> None:
    """Raise :class:`ExecutionError` unless every original tuple reached a unit."""
    if n_original == 0:
        return
    covered = np.zeros(n_original, dtype=bool)
    covered[rows] = True
    if not covered.all():
        missing = int(np.count_nonzero(~covered))
        raise ExecutionError(
            f"{missing} {side}-tuples were not routed to any unit by {method!r}"
        )


def route_side(
    partitioning: JoinPartitioning,
    matrix: np.ndarray,
    side: str,
    validate: bool = True,
) -> RoutedSide:
    """Route one relation side and group the copies by unit in one pass."""
    rows, units = partitioning.route(matrix, side)
    if validate:
        check_coverage(rows, matrix.shape[0], side, partitioning.method)
    order = np.argsort(units, kind="stable")
    sorted_rows = rows[order].astype(np.int64, copy=False)
    sorted_units = units[order].astype(np.int64, copy=False)
    bounds = np.searchsorted(sorted_units, np.arange(partitioning.n_units + 1))
    return RoutedSide(rows=sorted_rows, units=sorted_units, bounds=bounds)


def unit_offset_step(
    s_matrix: np.ndarray, t_matrix: np.ndarray, condition: BandCondition
) -> float:
    """Return a per-unit shift of the first join dimension that no band can bridge.

    The step must exceed the spread of the *combined* S and T value range:
    tuples of units shifted by k and j steps end up ``(k - j) * step`` apart
    plus their original difference, and that original difference can be as
    large as the gap between the two relations' ranges (e.g. S in [0, 1]
    joined against T in [10, 11]).  Using each relation's own spread — as an
    earlier revision did — lets distant unit pairs alias back into the band
    and produce phantom output.
    """
    predicate = condition.predicates[0]
    lows = []
    highs = []
    for matrix in (s_matrix, t_matrix):
        if matrix.shape[0]:
            lows.append(float(matrix[:, 0].min()))
            highs.append(float(matrix[:, 0].max()))
    spread = (max(highs) - min(lows)) if lows else 1.0
    return spread + predicate.eps_left + predicate.eps_right + 1.0


def gather_side(
    unit_ids: np.ndarray, routed: RoutedSide, offset_step: float
) -> tuple[np.ndarray, np.ndarray]:
    """Collect one relation side of a worker's units plus per-tuple unit offsets.

    The offset of a tuple is ``position of its unit within unit_ids *
    offset_step``; S and T use the same ``unit_ids`` order, so tuples of the
    same unit land in the same shifted band on both sides.
    """
    bounds = routed.bounds
    lengths = bounds[unit_ids + 1] - bounds[unit_ids]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    pieces = [
        routed.rows[bounds[unit] : bounds[unit + 1]]
        for unit, length in zip(unit_ids, lengths)
        if length
    ]
    rows = np.concatenate(pieces)
    local_index = np.repeat(np.arange(unit_ids.size), lengths)
    return rows, local_index.astype(float) * offset_step


def build_worker_tasks(
    partitioning: JoinPartitioning,
    s_routed: RoutedSide,
    t_routed: RoutedSide,
    offset_step: float,
) -> list[WorkerTask]:
    """Build one batched task per worker that owns at least one unit."""
    owners = partitioning.unit_workers()
    tasks: list[WorkerTask] = []
    for worker_id in range(partitioning.workers):
        unit_ids = np.nonzero(owners == worker_id)[0]
        if unit_ids.size == 0:
            continue
        s_rows, s_offsets = gather_side(unit_ids, s_routed, offset_step)
        t_rows, t_offsets = gather_side(unit_ids, t_routed, offset_step)
        tasks.append(
            WorkerTask(
                worker_id=worker_id,
                n_units=int(unit_ids.size),
                s_rows=s_rows,
                s_offsets=s_offsets,
                t_rows=t_rows,
                t_offsets=t_offsets,
            )
        )
    return tasks


def _gather_rows(source, rows: np.ndarray) -> np.ndarray:
    """Gather rows from an ndarray matrix or a sliced matrix source."""
    if isinstance(source, np.ndarray):
        return source[rows]
    return source.take(rows)


def gather_task_inputs(task: WorkerTask, s_matrix, t_matrix) -> tuple[np.ndarray, np.ndarray]:
    """Materialise a task's shifted S/T join matrices (fresh copies).

    Either side may be a plain ``(n, d)`` ndarray (legacy in-memory path) or
    a :class:`~repro.engine.sources.StoreMatrixSource` reading an
    out-of-core relation; the gather semantics are identical.
    """
    worker_s = _gather_rows(s_matrix, task.s_rows)
    worker_t = _gather_rows(t_matrix, task.t_rows)
    if worker_s.shape[0]:
        worker_s[:, 0] += task.s_offsets
    if worker_t.shape[0]:
        worker_t[:, 0] += task.t_offsets
    return worker_s, worker_t


def dedup_worker_copies(
    rows: np.ndarray, workers_per_copy: np.ndarray, n_workers: int
) -> np.ndarray:
    """Collapse (tuple, worker) copies so each tuple counts once per worker.

    Returns the worker id of every retained copy (suitable for ``bincount``);
    this is the per-worker input accounting of paper Definition 1.
    """
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    combined = rows.astype(np.int64) * n_workers + workers_per_copy.astype(np.int64)
    unique = np.unique(combined)
    return (unique % n_workers).astype(np.int64)


def dedup_workers(partitioning: JoinPartitioning, routed: RoutedSide) -> np.ndarray:
    """Return the worker id of every deduplicated tuple copy of one side."""
    owners = partitioning.unit_workers()
    return dedup_worker_copies(routed.rows, owners[routed.units], partitioning.workers)


def worker_input_counts(
    partitioning: JoinPartitioning, routed: RoutedSide
) -> np.ndarray:
    """Return per-worker deduplicated input counts for one routed side."""
    return np.bincount(
        dedup_workers(partitioning, routed), minlength=partitioning.workers
    )


# --------------------------------------------------------------------- #
# Streamed routing (out-of-core relations)
# --------------------------------------------------------------------- #


def unit_offset_step_from_bounds(
    lows: list[float], highs: list[float], condition: BandCondition
) -> float:
    """:func:`unit_offset_step` from precomputed first-dimension bounds.

    ``lows`` / ``highs`` hold the first-join-dimension min/max of each
    non-empty side.  Out-of-core relations serve these from per-segment
    statistics, so the step is known before any data is read.
    """
    predicate = condition.predicates[0]
    spread = (max(highs) - min(lows)) if lows else 1.0
    return spread + predicate.eps_left + predicate.eps_right + 1.0


def unit_ranks(partitioning: JoinPartitioning) -> np.ndarray:
    """Return each unit's rank among its owning worker's units.

    Ranks follow ascending unit id per worker — exactly the order
    :func:`gather_side` enumerates a worker's units — so
    ``rank * offset_step`` reproduces the legacy per-unit shifts.
    """
    owners = partitioning.unit_workers()
    order = np.argsort(owners, kind="stable")
    sorted_owners = owners[order]
    starts = np.searchsorted(sorted_owners, np.arange(partitioning.workers))
    ranks = np.empty(owners.size, dtype=np.int64)
    ranks[order] = np.arange(owners.size, dtype=np.int64) - starts[sorted_owners]
    return ranks


class _SideStreamer:
    """Accumulates one side's routed copies into per-worker spill files."""

    def __init__(self, partitioning: JoinPartitioning, arena, side: str) -> None:
        self.partitioning = partitioning
        self.side = side
        self.owners = partitioning.unit_workers()
        self.ranks = unit_ranks(partitioning)
        self.active = np.nonzero(np.bincount(self.owners, minlength=partitioning.workers))[0]
        self.counts = np.zeros(partitioning.workers, dtype=np.int64)
        self._rows_writers = {
            int(w): arena.writer(np.int64, prefix=f"{side}-rows-w{w}") for w in self.active
        }
        self._offset_writers = {
            int(w): arena.writer(np.float64, prefix=f"{side}-offsets-w{w}")
            for w in self.active
        }

    def consume(
        self,
        chunk_start: int,
        chunk: np.ndarray,
        offset_step: float,
        validate: bool,
    ) -> None:
        """Route one chunk and append its copies to the per-worker files."""
        rows, units = self.partitioning.route(chunk, self.side)
        if validate:
            check_coverage(rows, chunk.shape[0], self.side, self.partitioning.method)
        if rows.size == 0:
            return
        rows = rows.astype(np.int64, copy=False)
        units = units.astype(np.int64, copy=False)
        copy_workers = self.owners[units]
        # Chunks partition the row space, so per-chunk dedup over
        # (row, worker) copies sums to the global deduplicated counts.
        self.counts += np.bincount(
            dedup_worker_copies(rows, copy_workers, self.partitioning.workers),
            minlength=self.partitioning.workers,
        )
        global_rows = rows + chunk_start
        offsets = self.ranks[units].astype(float) * offset_step
        order = np.argsort(copy_workers, kind="stable")
        sorted_workers = copy_workers[order]
        bounds = np.searchsorted(
            sorted_workers, np.arange(self.partitioning.workers + 1)
        )
        for worker in self.active:
            lo, hi = int(bounds[worker]), int(bounds[worker + 1])
            if hi > lo:
                piece = order[lo:hi]
                self._rows_writers[int(worker)].append(global_rows[piece])
                self._offset_writers[int(worker)].append(offsets[piece])

    def finish(self) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Close the spill files and return per-worker (rows, offsets) maps."""
        return {
            w: (self._rows_writers[w].finish(), self._offset_writers[w].finish())
            for w in map(int, self.active)
        }


def stream_worker_tasks(
    partitioning: JoinPartitioning,
    s_source,
    t_source,
    condition: BandCondition,
    arena,
    chunk_bytes: int,
    validate: bool = True,
) -> tuple[list[WorkerTask], np.ndarray, np.ndarray, float]:
    """Route both sides chunk-wise and build disk-backed worker tasks.

    The streamed counterpart of :func:`route_side` +
    :func:`build_worker_tasks`: each side is read in bounded float chunks
    (``source.iter_chunks``), routed, and appended straight to per-worker
    spill files in ``arena`` — no O(n) routing state ever lives on the
    heap.  Task ``rows`` / ``offsets`` come back as read-only memory maps
    over those files; row order within a task is chunk-major instead of
    unit-major, which the local join is insensitive to (it re-sorts), while
    per-tuple offsets reproduce the legacy unit-rank shifts exactly.

    Returns ``(tasks, s_counts, t_counts, offset_step)`` where the counts
    are the per-worker deduplicated input accounting of paper Definition 1.
    """
    s_lo, s_hi = s_source.bounds()
    t_lo, t_hi = t_source.bounds()
    lows = [float(lo[0]) for lo, src in ((s_lo, s_source), (t_lo, t_source)) if src.rows]
    highs = [float(hi[0]) for hi, src in ((s_hi, s_source), (t_hi, t_source)) if src.rows]
    offset_step = unit_offset_step_from_bounds(lows, highs, condition)

    sides: dict[str, _SideStreamer] = {}
    for side, source in (("S", s_source), ("T", t_source)):
        streamer = _SideStreamer(partitioning, arena, side)
        for start, _, chunk in source.iter_chunks(chunk_bytes):
            streamer.consume(start, chunk, offset_step, validate)
        source.release()
        sides[side] = streamer

    s_parts = sides["S"].finish()
    t_parts = sides["T"].finish()
    units_per_worker = np.bincount(
        partitioning.unit_workers(), minlength=partitioning.workers
    )
    empty_rows = np.empty(0, dtype=np.int64)
    empty_offsets = np.empty(0)
    tasks: list[WorkerTask] = []
    for worker in map(int, sides["S"].active):
        s_rows, s_offsets = s_parts.get(worker, (empty_rows, empty_offsets))
        t_rows, t_offsets = t_parts.get(worker, (empty_rows, empty_offsets))
        tasks.append(
            WorkerTask(
                worker_id=worker,
                n_units=int(units_per_worker[worker]),
                s_rows=s_rows,
                s_offsets=s_offsets,
                t_rows=t_rows,
                t_offsets=t_offsets,
            )
        )
    return tasks, sides["S"].counts, sides["T"].counts, offset_step
