"""Vectorised batch routing and per-worker task construction.

The map phase of the engine: all tuples of a relation side are routed in a
single vectorised :meth:`~repro.core.partitioner.JoinPartitioning.route`
call, grouped per partition unit with one ``argsort`` + ``searchsorted``
pass (numpy masks, no per-tuple Python work), and gathered into one
:class:`WorkerTask` per worker.

A worker task batches every unit the worker owns into a single local join:
each unit's tuples are shifted by a per-unit offset in the first join
dimension that is larger than the data spread plus the band width, so tuples
from different units can never join while pairs inside a unit are
unaffected.  This is numerically equivalent to running one local join per
unit but avoids per-unit call overhead (grid partitionings can produce
hundreds of thousands of tiny units), and it gives every execution backend
the same coarse-grained, embarrassingly parallel work items.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partitioner import JoinPartitioning
from repro.exceptions import ExecutionError
from repro.geometry.band import BandCondition


@dataclass(frozen=True)
class RoutedSide:
    """One relation side after routing, grouped by partition unit.

    Attributes
    ----------
    rows:
        Original row indices of every routed tuple copy, sorted by the unit
        that receives the copy (a row index appears once per receiving unit).
    units:
        Receiving unit id of every copy, parallel to ``rows`` (ascending).
    bounds:
        ``(n_units + 1,)`` prefix boundaries: unit ``u`` owns the slice
        ``rows[bounds[u]:bounds[u + 1]]``.
    """

    rows: np.ndarray
    units: np.ndarray
    bounds: np.ndarray

    @property
    def n_copies(self) -> int:
        """Return the total number of routed tuple copies (with duplicates)."""
        return int(self.rows.size)

    def unit_rows(self, unit: int) -> np.ndarray:
        """Return the original row indices routed to one unit."""
        return self.rows[self.bounds[unit] : self.bounds[unit + 1]]


@dataclass(frozen=True)
class WorkerTask:
    """The batched local join of every unit owned by one worker.

    ``s_rows`` / ``t_rows`` are original row indices into the relation's
    join matrix; ``s_offsets`` / ``t_offsets`` are the per-tuple unit-
    separation shifts applied to the first join dimension before joining.
    """

    worker_id: int
    n_units: int
    s_rows: np.ndarray
    s_offsets: np.ndarray
    t_rows: np.ndarray
    t_offsets: np.ndarray

    @property
    def n_input(self) -> int:
        """Return the number of input tuple copies processed by the task."""
        return int(self.s_rows.size + self.t_rows.size)


def check_coverage(rows: np.ndarray, n_original: int, side: str, method: str) -> None:
    """Raise :class:`ExecutionError` unless every original tuple reached a unit."""
    if n_original == 0:
        return
    covered = np.zeros(n_original, dtype=bool)
    covered[rows] = True
    if not covered.all():
        missing = int(np.count_nonzero(~covered))
        raise ExecutionError(
            f"{missing} {side}-tuples were not routed to any unit by {method!r}"
        )


def route_side(
    partitioning: JoinPartitioning,
    matrix: np.ndarray,
    side: str,
    validate: bool = True,
) -> RoutedSide:
    """Route one relation side and group the copies by unit in one pass."""
    rows, units = partitioning.route(matrix, side)
    if validate:
        check_coverage(rows, matrix.shape[0], side, partitioning.method)
    order = np.argsort(units, kind="stable")
    sorted_rows = rows[order].astype(np.int64, copy=False)
    sorted_units = units[order].astype(np.int64, copy=False)
    bounds = np.searchsorted(sorted_units, np.arange(partitioning.n_units + 1))
    return RoutedSide(rows=sorted_rows, units=sorted_units, bounds=bounds)


def unit_offset_step(
    s_matrix: np.ndarray, t_matrix: np.ndarray, condition: BandCondition
) -> float:
    """Return a per-unit shift of the first join dimension that no band can bridge.

    The step must exceed the spread of the *combined* S and T value range:
    tuples of units shifted by k and j steps end up ``(k - j) * step`` apart
    plus their original difference, and that original difference can be as
    large as the gap between the two relations' ranges (e.g. S in [0, 1]
    joined against T in [10, 11]).  Using each relation's own spread — as an
    earlier revision did — lets distant unit pairs alias back into the band
    and produce phantom output.
    """
    predicate = condition.predicates[0]
    lows = []
    highs = []
    for matrix in (s_matrix, t_matrix):
        if matrix.shape[0]:
            lows.append(float(matrix[:, 0].min()))
            highs.append(float(matrix[:, 0].max()))
    spread = (max(highs) - min(lows)) if lows else 1.0
    return spread + predicate.eps_left + predicate.eps_right + 1.0


def gather_side(
    unit_ids: np.ndarray, routed: RoutedSide, offset_step: float
) -> tuple[np.ndarray, np.ndarray]:
    """Collect one relation side of a worker's units plus per-tuple unit offsets.

    The offset of a tuple is ``position of its unit within unit_ids *
    offset_step``; S and T use the same ``unit_ids`` order, so tuples of the
    same unit land in the same shifted band on both sides.
    """
    bounds = routed.bounds
    lengths = bounds[unit_ids + 1] - bounds[unit_ids]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    pieces = [
        routed.rows[bounds[unit] : bounds[unit + 1]]
        for unit, length in zip(unit_ids, lengths)
        if length
    ]
    rows = np.concatenate(pieces)
    local_index = np.repeat(np.arange(unit_ids.size), lengths)
    return rows, local_index.astype(float) * offset_step


def build_worker_tasks(
    partitioning: JoinPartitioning,
    s_routed: RoutedSide,
    t_routed: RoutedSide,
    offset_step: float,
) -> list[WorkerTask]:
    """Build one batched task per worker that owns at least one unit."""
    owners = partitioning.unit_workers()
    tasks: list[WorkerTask] = []
    for worker_id in range(partitioning.workers):
        unit_ids = np.nonzero(owners == worker_id)[0]
        if unit_ids.size == 0:
            continue
        s_rows, s_offsets = gather_side(unit_ids, s_routed, offset_step)
        t_rows, t_offsets = gather_side(unit_ids, t_routed, offset_step)
        tasks.append(
            WorkerTask(
                worker_id=worker_id,
                n_units=int(unit_ids.size),
                s_rows=s_rows,
                s_offsets=s_offsets,
                t_rows=t_rows,
                t_offsets=t_offsets,
            )
        )
    return tasks


def gather_task_inputs(
    task: WorkerTask, s_matrix: np.ndarray, t_matrix: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Materialise a task's shifted S/T join matrices (fresh copies)."""
    worker_s = s_matrix[task.s_rows]
    worker_t = t_matrix[task.t_rows]
    if worker_s.shape[0]:
        worker_s[:, 0] += task.s_offsets
    if worker_t.shape[0]:
        worker_t[:, 0] += task.t_offsets
    return worker_s, worker_t


def dedup_worker_copies(
    rows: np.ndarray, workers_per_copy: np.ndarray, n_workers: int
) -> np.ndarray:
    """Collapse (tuple, worker) copies so each tuple counts once per worker.

    Returns the worker id of every retained copy (suitable for ``bincount``);
    this is the per-worker input accounting of paper Definition 1.
    """
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    combined = rows.astype(np.int64) * n_workers + workers_per_copy.astype(np.int64)
    unique = np.unique(combined)
    return (unique % n_workers).astype(np.int64)


def dedup_workers(partitioning: JoinPartitioning, routed: RoutedSide) -> np.ndarray:
    """Return the worker id of every deduplicated tuple copy of one side."""
    owners = partitioning.unit_workers()
    return dedup_worker_copies(routed.rows, owners[routed.units], partitioning.workers)


def worker_input_counts(
    partitioning: JoinPartitioning, routed: RoutedSide
) -> np.ndarray:
    """Return per-worker deduplicated input counts for one routed side."""
    return np.bincount(
        dedup_workers(partitioning, routed), minlength=partitioning.workers
    )
