"""Thread-local request deadlines propagated into execution backends.

The scheduler wraps each dispatch in :func:`deadline_scope`; anything on
that thread's call path (backends waiting on pool futures, long loops) can
ask :func:`remaining` how much time is left or :func:`check` to fail fast
with :class:`~repro.exceptions.DeadlineExceededError`.  Deadlines are
*monotonic* timestamps (``time.monotonic()``), so wall-clock jumps never
expire a request spuriously.

A scope is per-thread by design: worker threads of a pool backend do not
see the driver's deadline — the driver bounds its *waits* on their futures
instead, which is what actually frees the scheduler worker.  Nested scopes
take the tighter deadline.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.exceptions import DeadlineExceededError

__all__ = ["check", "current_deadline", "deadline_scope", "remaining"]

_state = threading.local()


@contextmanager
def deadline_scope(deadline_at: float | None):
    """Bind a monotonic deadline to the current thread for the duration.

    ``None`` binds nothing (the existing scope, if any, stays in force);
    a nested scope tightens but never loosens the effective deadline.
    """
    if deadline_at is None:
        yield
        return
    previous = getattr(_state, "deadline_at", None)
    _state.deadline_at = (
        deadline_at if previous is None else min(previous, deadline_at)
    )
    try:
        yield
    finally:
        _state.deadline_at = previous


def current_deadline() -> float | None:
    """Return the active monotonic deadline of this thread, if any."""
    return getattr(_state, "deadline_at", None)


def remaining() -> float | None:
    """Return seconds until this thread's deadline (``None`` = unbounded).

    Never negative: an expired deadline reports ``0.0`` so callers can pass
    the value straight into a timed wait (which then times out immediately).
    """
    deadline_at = current_deadline()
    if deadline_at is None:
        return None
    return max(0.0, deadline_at - time.monotonic())


def check(what: str = "execution") -> None:
    """Raise :class:`DeadlineExceededError` when this thread's deadline passed."""
    deadline_at = current_deadline()
    if deadline_at is not None and time.monotonic() >= deadline_at:
        raise DeadlineExceededError(f"deadline exceeded during {what}")
