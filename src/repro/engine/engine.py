"""The parallel band-join execution engine.

:class:`ParallelJoinEngine` is the top of the new execution subsystem: given
a :class:`~repro.core.partitioner.JoinPartitioning` and two relations it

1. routes both inputs with one vectorised batch-routing pass
   (:mod:`repro.engine.routing`),
2. builds one batched local-join task per worker,
3. executes the tasks on real hardware through a pluggable backend
   (:mod:`repro.engine.backends` — ``serial``, ``threads`` or
   ``processes``), and
4. folds the outcomes into the same :class:`~repro.distributed.stats.JobStats`
   accounting the simulated executor produces, so every existing metric,
   table and report consumes engine results unchanged.

:meth:`ParallelJoinEngine.join` is the query-level entry point: it runs the
optimizer (RecPart by default) through a :class:`~repro.engine.plan_cache.PlanCache`,
so repeated queries over the same data skip the optimization phase entirely.

The planning layer (partitioners) stays wholly separate from the execution
layer (backends): any partitioning can run on any backend, and all backends
produce the exact pair set of the ``serial`` reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_WORKERS, EngineConfig, LoadWeights
from repro.core.partitioner import JoinPartitioning, Partitioner
from repro.data.relation import Relation
from repro.data.storage import DEFAULT_BLOCK_BYTES, SpillArena
from repro.distributed.stats import JobStats, WorkerStats
from repro.engine.backends import ExecutionBackend, get_backend
from repro.engine.plan_cache import PlanCache
from repro.engine.routing import (
    build_worker_tasks,
    route_side,
    stream_worker_tasks,
    unit_offset_step,
    worker_input_counts,
)
from repro.engine.sources import StoreMatrixSource
from repro.exceptions import ExecutionError
from repro.geometry.band import BandCondition
from repro.local_join import get_local_algorithm
from repro.local_join.base import LocalJoinAlgorithm
from repro.obs import get_logger, tracer

logger = get_logger(__name__)


@dataclass
class EngineResult:
    """Outcome of one engine execution.

    Wraps the standard :class:`~repro.distributed.stats.JobStats` per-worker
    accounting (so the paper's measures — ``I``, ``I_m``, ``O_m``, max
    worker load — apply unchanged) plus the engine's real wall-clock
    timings.
    """

    backend: str
    partitioning: JoinPartitioning
    job: JobStats
    weights: LoadWeights
    wall_seconds: float
    routing_seconds: float
    execution_seconds: float
    optimization_seconds: float = 0.0
    plan_from_cache: bool = False
    pairs: np.ndarray | None = None

    @property
    def total_output(self) -> int:
        """Return the total number of output pairs produced."""
        return self.job.total_output

    @property
    def total_input(self) -> int:
        """Return ``I``: total input including duplicates."""
        return self.job.total_input

    @property
    def duplication_ratio(self) -> float:
        """Return the paper's input-duplication overhead."""
        return self.job.duplication_ratio

    @property
    def max_worker_load(self) -> float:
        """Return ``L_m``: the maximum per-worker load."""
        return self.job.max_worker_load(self.weights)

    @property
    def max_worker_input(self) -> int:
        """Return ``I_m``: input of the most loaded worker."""
        return self.job.max_worker_input(self.weights)

    @property
    def max_worker_output(self) -> int:
        """Return ``O_m``: output of the most loaded worker."""
        return self.job.max_worker_output(self.weights)

    @property
    def max_local_seconds(self) -> float:
        """Return the largest per-worker local-join time."""
        return self.job.max_local_seconds

    @property
    def speedup(self) -> float:
        """Return aggregate local-join seconds over backend wall-clock.

        1.0 means no overlap (serial); values approaching the worker count
        mean the backend ran the per-worker joins fully in parallel.
        """
        if self.execution_seconds <= 0:
            return 1.0
        return self.job.total_local_seconds / self.execution_seconds

    def summary(self) -> dict:
        """Return a JSON-friendly summary row (plugs into the metrics reports)."""
        info = self.job.as_dict(self.weights)
        info.update(
            {
                "method": self.partitioning.method,
                "backend": self.backend,
                "wall_seconds": self.wall_seconds,
                "routing_seconds": self.routing_seconds,
                "execution_seconds": self.execution_seconds,
                "optimization_seconds": self.optimization_seconds,
                "plan_from_cache": self.plan_from_cache,
                "speedup": self.speedup,
                "max_local_seconds": self.max_local_seconds,
            }
        )
        return info


class ParallelJoinEngine:
    """Executes distributed band-joins for real through pluggable backends.

    Parameters
    ----------
    backend:
        Backend name (``"serial"``, ``"threads"``, ``"processes"``) or an
        :class:`~repro.engine.backends.ExecutionBackend` instance.
    algorithm:
        Local join algorithm run inside every task: an instance or a
        registry name (``"index-nested-loop"`` — the paper's default —,
        ``"sort-sweep"``, ``"iejoin-local"``, ``"nested-loop"``, ``"auto"``).
    weights:
        Load weights of the per-worker load measures.
    plan_cache:
        Plan cache used by :meth:`join`; a fresh default cache when ``None``.
    max_parallelism:
        Pool-size cap passed to pool-based backends.
    memory_budget:
        Machine-wide byte budget of the local-join kernels' candidate
        buffers; the backend divides it across concurrent tasks.  ``None``
        keeps each kernel's own default.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "threads",
        algorithm: LocalJoinAlgorithm | str | None = None,
        weights: LoadWeights | None = None,
        plan_cache: PlanCache | None = None,
        max_parallelism: int | None = None,
        memory_budget: int | None = None,
        spill_dir: str | None = None,
        chunk_bytes: int = DEFAULT_BLOCK_BYTES,
    ) -> None:
        self.backend = get_backend(
            backend, max_workers=max_parallelism, memory_budget=memory_budget
        )
        self.algorithm = get_local_algorithm(algorithm)
        self.weights = weights if weights is not None else LoadWeights()
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        #: Root directory of per-join streaming scratch files (``None`` uses
        #: the system temp dir); only touched when a relation is out-of-core.
        self.spill_dir = spill_dir
        #: Byte size of one streamed routing chunk.
        self.chunk_bytes = int(chunk_bytes)

    @classmethod
    def from_config(
        cls,
        config: EngineConfig,
        algorithm: LocalJoinAlgorithm | str | None = None,
        weights: LoadWeights | None = None,
    ) -> "ParallelJoinEngine":
        """Build an engine from an :class:`~repro.config.EngineConfig`.

        ``backend="simulated"`` maps to the ``serial`` reference backend —
        the engine always executes for real; the simulated bookkeeping path
        lives in :class:`~repro.distributed.executor.DistributedBandJoinExecutor`.
        """
        backend = "serial" if config.is_simulated else config.backend
        return cls(
            backend=backend,
            algorithm=algorithm if algorithm is not None else config.local_algorithm,
            weights=weights,
            plan_cache=PlanCache(max_entries=config.plan_cache_size),
            max_parallelism=config.max_parallelism,
            memory_budget=config.kernel_memory_budget,
            spill_dir=config.spill_dir,
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        partitioning: JoinPartitioning,
        materialize: bool = False,
    ) -> EngineResult:
        """Execute a band-join under an existing partitioning.

        Parameters
        ----------
        materialize:
            Materialise the output pairs (original S/T row indices) on the
            result; otherwise only counts are produced.
        """
        condition.validate_against(s.column_names)
        condition.validate_against(t.column_names)
        if s.storage != "memory" or t.storage != "memory":
            return self._execute_streamed(s, t, condition, partitioning, materialize)
        wall_start = time.perf_counter()
        s_matrix = s.join_matrix(condition.attributes)
        t_matrix = t.join_matrix(condition.attributes)

        routing_start = time.perf_counter()
        with tracer().span("route", workers=partitioning.workers):
            s_routed = route_side(partitioning, s_matrix, "S")
            t_routed = route_side(partitioning, t_matrix, "T")
            offset_step = unit_offset_step(s_matrix, t_matrix, condition)
            tasks = build_worker_tasks(partitioning, s_routed, t_routed, offset_step)
        routing_seconds = time.perf_counter() - routing_start

        execution_start = time.perf_counter()
        with tracer().span(
            "local_join", backend=self.backend.name, tasks=len(tasks)
        ) as join_span:
            outcomes = self.backend.run(
                tasks, s_matrix, t_matrix, condition, self.algorithm, materialize,
                trace_ctx=join_span.context,
            )
            for outcome in outcomes:
                if outcome.spans:
                    tracer().attach(join_span.context, outcome.spans)
        execution_seconds = time.perf_counter() - execution_start

        with tracer().span("merge"):
            s_counts = worker_input_counts(partitioning, s_routed)
            t_counts = worker_input_counts(partitioning, t_routed)
            job, pairs = self._merge_outcomes(
                partitioning, outcomes, s_counts, t_counts, materialize,
                baseline_input=len(s) + len(t),
            )
        logger.debug(
            "executed %d tasks on %s: output=%d exec=%.4fs route=%.4fs",
            len(tasks), self.backend.name, job.total_output,
            execution_seconds, routing_seconds,
        )
        return EngineResult(
            backend=self.backend.name,
            partitioning=partitioning,
            job=job,
            weights=self.weights,
            wall_seconds=time.perf_counter() - wall_start,
            routing_seconds=routing_seconds,
            execution_seconds=execution_seconds,
            optimization_seconds=partitioning.stats.optimization_seconds,
            pairs=pairs,
        )

    def _merge_outcomes(
        self,
        partitioning: JoinPartitioning,
        outcomes,
        s_counts: np.ndarray,
        t_counts: np.ndarray,
        materialize: bool,
        baseline_input: int,
    ) -> tuple[JobStats, np.ndarray | None]:
        """Fold task outcomes + routed input counts into job accounting."""
        worker_stats = [WorkerStats(worker_id=i) for i in range(partitioning.workers)]
        for stats in worker_stats:
            stats.input_s = int(s_counts[stats.worker_id])
            stats.input_t = int(t_counts[stats.worker_id])
        pair_chunks: list[np.ndarray] = []
        for outcome in outcomes:
            stats = worker_stats[outcome.worker_id]
            stats.units += outcome.n_units
            stats.output += outcome.output
            stats.local_seconds += outcome.local_seconds
            if materialize and outcome.pairs is not None and outcome.pairs.size:
                pair_chunks.append(outcome.pairs)
        job = JobStats(
            workers=worker_stats,
            total_output=sum(w.output for w in worker_stats),
            baseline_input=baseline_input,
        )
        pairs: np.ndarray | None = None
        if materialize:
            pairs = (
                np.concatenate(pair_chunks)
                if pair_chunks
                else np.empty((0, 2), dtype=np.int64)
            )
        return job, pairs

    def _execute_streamed(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        partitioning: JoinPartitioning,
        materialize: bool,
    ) -> EngineResult:
        """Out-of-core execution: stream column slices, never the matrices.

        Taken whenever a side is mmap-backed.  Routing reads each side in
        bounded float chunks and spills the per-worker row/offset arrays to
        a scratch arena; backends receive :class:`StoreMatrixSource` views
        (segment paths, not data) and tasks gather their inputs into scratch
        memory maps, so peak resident memory is bounded by the chunk and
        kernel budgets rather than the relation sizes.
        """
        wall_start = time.perf_counter()
        s_source = StoreMatrixSource.from_relation(s, condition.attributes)
        t_source = StoreMatrixSource.from_relation(t, condition.attributes)
        with SpillArena.scratch(self.spill_dir) as arena:
            routing_start = time.perf_counter()
            with tracer().span(
                "route", workers=partitioning.workers, streamed=True
            ):
                tasks, s_counts, t_counts, _ = stream_worker_tasks(
                    partitioning, s_source, t_source, condition, arena,
                    self.chunk_bytes,
                )
            routing_seconds = time.perf_counter() - routing_start

            execution_start = time.perf_counter()
            with tracer().span(
                "local_join", backend=self.backend.name, tasks=len(tasks),
                streamed=True,
            ) as join_span:
                outcomes = self.backend.run(
                    tasks, s_source, t_source, condition, self.algorithm,
                    materialize, trace_ctx=join_span.context,
                )
                for outcome in outcomes:
                    if outcome.spans:
                        tracer().attach(join_span.context, outcome.spans)
            execution_seconds = time.perf_counter() - execution_start

            with tracer().span("merge"):
                job, pairs = self._merge_outcomes(
                    partitioning, outcomes, s_counts, t_counts, materialize,
                    baseline_input=len(s) + len(t),
                )
        s_source.release()
        t_source.release()
        logger.debug(
            "streamed %d tasks on %s: output=%d exec=%.4fs route=%.4fs",
            len(tasks), self.backend.name, job.total_output,
            execution_seconds, routing_seconds,
        )
        return EngineResult(
            backend=self.backend.name,
            partitioning=partitioning,
            job=job,
            weights=self.weights,
            wall_seconds=time.perf_counter() - wall_start,
            routing_seconds=routing_seconds,
            execution_seconds=execution_seconds,
            optimization_seconds=partitioning.stats.optimization_seconds,
            pairs=pairs,
        )

    def join(
        self,
        s: Relation,
        t: Relation,
        condition: BandCondition,
        workers: int = DEFAULT_WORKERS,
        partitioner: Partitioner | None = None,
        materialize: bool = False,
        rng: np.random.Generator | None = None,
    ) -> EngineResult:
        """Answer one band-join query end to end, reusing cached plans.

        The optimization phase (``partitioner.partition``) only runs when no
        plan for the same (relation contents, condition, worker budget,
        method) is cached; a hit skips it entirely and is visible as
        ``plan_from_cache`` on the result.
        """
        if workers < 1:
            raise ExecutionError("workers must be at least 1")
        if partitioner is None:
            from repro.core.recpart import RecPartPartitioner

            partitioner = RecPartPartitioner(weights=self.weights)
        with tracer().span("plan", workers=workers) as plan_span:
            partitioning, cached = self.plan_cache.get_or_build(
                partitioner, s, t, condition, workers, rng=rng
            )
            plan_span.set(cached=cached, method=partitioning.method)
        result = self.execute(s, t, condition, partitioning, materialize=materialize)
        result.plan_from_cache = cached
        return result

    def __repr__(self) -> str:
        return (
            f"ParallelJoinEngine(backend={self.backend.name!r}, "
            f"algorithm={self.algorithm.name!r})"
        )
