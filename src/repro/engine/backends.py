"""Pluggable execution backends for the parallel join engine.

A backend takes the per-worker :class:`~repro.engine.routing.WorkerTask`
batch of one join and executes every task's local band-join on real
hardware:

``serial``
    Reference implementation — tasks run one after another in the driver
    process.  Every other backend must produce exactly its pair set.
``threads``
    A ``ThreadPoolExecutor``.  The local join algorithms spend their time in
    numpy kernels, which release the GIL, so worker tasks genuinely overlap
    on multi-core machines without any data transfer at all.
``processes``
    A ``ProcessPoolExecutor`` fed through shared memory: the join matrices
    and routed row indices are written to ``multiprocessing.shared_memory``
    once per join (see :mod:`repro.engine.shared`), so a task crosses the
    process boundary as a few integers instead of a pickled matrix.

Backends are stateless; pools live only for the duration of one
:meth:`ExecutionBackend.run` call.
"""

from __future__ import annotations

import abc
import copy
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import (
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro import faults
from repro.data.storage import SpillArena, block_spans, madvise_dontneed
from repro.engine import deadline
from repro.engine.routing import WorkerTask, gather_task_inputs
from repro.engine.shared import (
    SharedStoreDescriptor,
    SharedTaskReader,
    SharedTaskStore,
    SpilledStoreDescriptor,
    SpilledTaskReader,
    SpilledTaskStore,
)
from repro.exceptions import DeadlineExceededError, ExecutionError
from repro.faults import InjectedWorkerCrash
from repro.geometry.band import BandCondition
from repro.local_join.base import LocalJoinAlgorithm
from repro.local_join.kernels import kernel_scratch
from repro.obs.globals import registry as obs_registry
from repro.obs.globals import tracer
from repro.obs.tracing import SpanContext, span_record

#: Per-side byte size above which an out-of-core task gathers its shifted
#: join matrix into a scratch memory map instead of the heap (and lets the
#: kernels spill their permuted copies the same way).  Only relevant when a
#: side is a matrix *source* — plain in-memory joins never spill.
TASK_SPILL_BYTES: int = 8 * 1024 * 1024

#: Default bound on how many times one lost task is re-executed (and on pool
#: rebuilds per dispatch) before the process backend falls back to in-driver
#: execution.
MAX_TASK_RETRIES: int = 3

#: First retry delay after a worker crash; doubles per crash, capped below.
RETRY_BACKOFF_SECONDS: float = 0.05

#: Upper bound on the exponential retry backoff.
RETRY_BACKOFF_CAP: float = 1.0


def _crash_counter():
    return obs_registry().counter(
        "repro_worker_crashes_total",
        "worker deaths (real or injected) observed by execution backends",
    )


def _retry_counter():
    return obs_registry().counter(
        "repro_task_retries_total",
        "partition tasks re-executed after a worker failure",
    )


def _fallback_counter():
    return obs_registry().counter(
        "repro_backend_fallbacks_total",
        "dispatches completed on a simpler backend after repeated failures",
    )


class _WorkerStall(ExecutionError):
    """No pool progress within the per-task timeout: a worker is hung."""


@dataclass
class TaskOutcome:
    """Result of one executed worker task.

    ``pairs`` holds globally indexed ``(s_row, t_row)`` output pairs when the
    join was materialised, ``None`` otherwise.  ``local_seconds`` times the
    local join itself (gathering the task's input copies is excluded, so the
    value is comparable to the simulated cluster's per-worker accounting).
    ``spans`` carries plain span-record dicts produced when a trace context
    was propagated into the task — picklable, so they survive the process
    boundary and the engine grafts them onto the live trace afterwards.
    """

    worker_id: int
    n_units: int
    output: int
    local_seconds: float
    pairs: np.ndarray | None = None
    spans: list | None = None


def _side_bytes(source, rows: np.ndarray) -> int:
    width = source.shape[1] if isinstance(source, np.ndarray) else source.width
    return int(rows.size) * int(width) * 8


def _gather_task_side(source, rows: np.ndarray, offsets: np.ndarray, arena) -> np.ndarray:
    """Gather one side's shifted task matrix, spilling large gathers to scratch.

    With an arena, an out-of-core side larger than :data:`TASK_SPILL_BYTES`
    lands in a scratch memory map filled block by block (source and scratch
    pages recycled as the fill advances); otherwise the gather goes to the
    heap exactly as before.
    """
    if isinstance(source, np.ndarray):
        mat = source[rows]
        if mat.shape[0]:
            mat[:, 0] += offsets
        return mat
    if arena is None or _side_bytes(source, rows) <= TASK_SPILL_BYTES:
        mat = source.take(np.asarray(rows))
        if mat.shape[0]:
            mat[:, 0] += offsets
        return mat
    n, width = int(rows.size), source.width
    mat = arena.empty_matrix(float, n, width, prefix="task")
    block_rows = max(1, (4 * 1024 * 1024) // (width * 8))
    source.take_into(mat, rows, block_rows)
    for index, (b0, b1) in enumerate(block_spans(n, block_rows)):
        mat[b0:b1, 0] += offsets[b0:b1]
        if index % 4 == 3:
            madvise_dontneed(mat)
    madvise_dontneed(mat)
    return mat


def execute_task(
    task: WorkerTask,
    s_matrix: np.ndarray,
    t_matrix: np.ndarray,
    condition: BandCondition,
    algorithm: LocalJoinAlgorithm,
    materialize: bool,
    trace_ctx: SpanContext | None = None,
) -> TaskOutcome:
    """Run one worker task against the given join matrices.

    Either matrix may be a plain ndarray or a
    :class:`~repro.engine.sources.StoreMatrixSource` over an out-of-core
    relation; large source-backed tasks run with scratch spilling so the
    whole task never needs to fit in memory.
    """
    if task.s_rows.size == 0 or task.t_rows.size == 0:
        return TaskOutcome(
            worker_id=task.worker_id,
            n_units=task.n_units,
            output=0,
            local_seconds=0.0,
            pairs=np.empty((0, 2), dtype=np.int64) if materialize else None,
        )
    # Chaos hook: a fired ``task_slow`` point stalls this task before its
    # kernel runs, simulating a straggling worker — keyed so every task of
    # every dispatch draws independently, whatever kernel is selected (the
    # chunk loop's unkeyed hook only covers windowed kernels).
    faults.maybe_slow("task", task.worker_id)
    streamed = not (isinstance(s_matrix, np.ndarray) and isinstance(t_matrix, np.ndarray))
    if streamed and max(
        _side_bytes(s_matrix, task.s_rows), _side_bytes(t_matrix, task.t_rows)
    ) > TASK_SPILL_BYTES:
        with SpillArena() as arena:
            with kernel_scratch(arena, TASK_SPILL_BYTES):
                return _execute_task_inner(
                    task, s_matrix, t_matrix, condition, algorithm, materialize,
                    trace_ctx, arena,
                )
    return _execute_task_inner(
        task, s_matrix, t_matrix, condition, algorithm, materialize, trace_ctx, None
    )


def _execute_task_inner(
    task: WorkerTask,
    s_matrix,
    t_matrix,
    condition: BandCondition,
    algorithm: LocalJoinAlgorithm,
    materialize: bool,
    trace_ctx: SpanContext | None,
    arena,
) -> TaskOutcome:
    task_wall = time.time() if trace_ctx is not None else 0.0
    task_start = time.perf_counter()
    if arena is not None:
        worker_s = _gather_task_side(s_matrix, task.s_rows, task.s_offsets, arena)
        worker_t = _gather_task_side(t_matrix, task.t_rows, task.t_offsets, arena)
    else:
        worker_s, worker_t = gather_task_inputs(task, s_matrix, t_matrix)
    join_start = time.perf_counter()
    if materialize:
        local = algorithm.join(worker_s, worker_t, condition)
        local_seconds = time.perf_counter() - join_start
        if local.shape[0]:
            pairs = np.column_stack(
                [task.s_rows[local[:, 0]], task.t_rows[local[:, 1]]]
            ).astype(np.int64)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        output = int(local.shape[0])
    else:
        output = int(algorithm.count(worker_s, worker_t, condition))
        local_seconds = time.perf_counter() - join_start
        pairs = None
    spans = None
    if trace_ctx is not None:
        spans = [
            span_record(
                "task",
                parent=trace_ctx,
                start=task_wall,
                duration=time.perf_counter() - task_start,
                worker_id=task.worker_id,
                units=task.n_units,
                output=output,
                algorithm=getattr(algorithm, "name", type(algorithm).__name__),
                pid=os.getpid(),
            )
        ]
    return TaskOutcome(
        worker_id=task.worker_id,
        n_units=task.n_units,
        output=output,
        local_seconds=local_seconds,
        pairs=pairs,
        spans=spans,
    )


class ExecutionBackend(abc.ABC):
    """Interface of an engine execution backend.

    Backends carry an optional machine-wide ``memory_budget`` (bytes) for
    the local-join kernels' transient candidate buffers.  Before dispatch it
    is divided by the number of concurrently running tasks and bound onto
    the algorithm (:meth:`~repro.local_join.base.LocalJoinAlgorithm.with_memory_budget`),
    so a thread or process pool of size ``p`` allocates at most the single
    budget in aggregate rather than ``p`` times it.
    """

    #: Backend name used in configuration, reports and the CLI.
    name: str = "backend"

    #: Machine-wide kernel candidate-buffer budget in bytes (``None`` leaves
    #: each algorithm's own budget untouched).
    memory_budget: int | None = None

    def _budgeted(
        self, algorithm: LocalJoinAlgorithm, concurrency: int
    ) -> LocalJoinAlgorithm:
        """Bind this backend's per-task budget share onto the algorithm."""
        if self.memory_budget is None:
            return algorithm
        per_task = max(1, self.memory_budget // max(1, concurrency))
        return algorithm.with_memory_budget(per_task)

    @abc.abstractmethod
    def run(
        self,
        tasks: list[WorkerTask],
        s_matrix: np.ndarray,
        t_matrix: np.ndarray,
        condition: BandCondition,
        algorithm: LocalJoinAlgorithm,
        materialize: bool,
        trace_ctx: SpanContext | None = None,
    ) -> list[TaskOutcome]:
        """Execute every task and return the outcomes in task order.

        ``trace_ctx`` optionally identifies the enclosing telemetry span;
        backends pass it into :func:`execute_task` so every task produces a
        child span record (shipped back in :attr:`TaskOutcome.spans`).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _default_parallelism() -> int:
    """Return the number of CPUs available to this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class SerialBackend(ExecutionBackend):
    """Reference backend: tasks run sequentially in the driver process."""

    name = "serial"

    def __init__(self, memory_budget: int | None = None) -> None:
        if memory_budget is not None and memory_budget < 1:
            raise ExecutionError("memory_budget must be positive")
        self.memory_budget = memory_budget

    def run(
        self, tasks, s_matrix, t_matrix, condition, algorithm, materialize,
        trace_ctx=None,
    ):
        algorithm = self._budgeted(algorithm, concurrency=1)
        outcomes = []
        for task in tasks:
            deadline.check("serial execution")
            outcomes.append(
                execute_task(
                    task, s_matrix, t_matrix, condition, algorithm, materialize,
                    trace_ctx=trace_ctx,
                )
            )
        return outcomes


def _thread_run_task(
    task, index, attempt, allow_crash,
    s_matrix, t_matrix, condition, algorithm, materialize, trace_ctx,
):
    """Run one task on a pool thread, simulating injected worker crashes.

    A fired ``worker_crash`` point raises :class:`InjectedWorkerCrash` (the
    thread-pool stand-in for a process death); the driver retries the task
    with a fresh attempt number.  ``allow_crash=False`` marks the bounded
    retry loop's final attempt, which always runs to completion.
    """
    injector = faults.active()
    if (
        allow_crash
        and injector is not None
        and injector.fire("worker_crash", "threads", index, attempt)
    ):
        raise InjectedWorkerCrash(
            f"injected crash of thread worker on task {index} (attempt {attempt})"
        )
    return execute_task(
        task, s_matrix, t_matrix, condition, algorithm, materialize,
        trace_ctx=trace_ctx,
    )


class ThreadPoolBackend(ExecutionBackend):
    """Thread-pool backend exploiting numpy's GIL release.

    Simulated worker crashes (:class:`InjectedWorkerCrash` raised by a fault
    injector) are retried per task up to :data:`MAX_TASK_RETRIES` times; the
    final attempt runs crash-free, so availability never depends on a lucky
    draw.  An active request deadline bounds the driver's waits.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the number of CPUs available to the process.
    """

    name = "threads"

    def __init__(
        self, max_workers: int | None = None, memory_budget: int | None = None
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be positive")
        if memory_budget is not None and memory_budget < 1:
            raise ExecutionError("memory_budget must be positive")
        self.max_workers = max_workers
        self.memory_budget = memory_budget

    def run(
        self, tasks, s_matrix, t_matrix, condition, algorithm, materialize,
        trace_ctx=None,
    ):
        if not tasks:
            return []
        pool_size = min(self.max_workers or _default_parallelism(), len(tasks))
        if pool_size <= 1:
            return SerialBackend(memory_budget=self.memory_budget).run(
                tasks, s_matrix, t_matrix, condition, algorithm, materialize,
                trace_ctx=trace_ctx,
            )
        algorithm = self._budgeted(algorithm, concurrency=pool_size)
        outcomes: dict[int, TaskOutcome] = {}
        pool = ThreadPoolExecutor(max_workers=pool_size)
        try:
            pending = {
                pool.submit(
                    _thread_run_task, task, index, 0, True,
                    s_matrix, t_matrix, condition, algorithm, materialize,
                    trace_ctx,
                ): (index, 0)
                for index, task in enumerate(tasks)
            }
            while pending:
                done, _ = futures_wait(
                    set(pending), timeout=deadline.remaining(),
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    raise DeadlineExceededError(
                        "deadline exceeded waiting on thread-pool tasks"
                    )
                for future in done:
                    index, attempt = pending.pop(future)
                    try:
                        outcomes[index] = future.result()
                    except InjectedWorkerCrash:
                        _crash_counter().inc(backend=self.name)
                        _retry_counter().inc(backend=self.name)
                        next_attempt = attempt + 1
                        if trace_ctx is not None:
                            tracer().record(
                                "task_retry", trace_ctx, start=time.time(),
                                duration=0.0, backend=self.name, task=index,
                                attempt=next_attempt,
                            )
                        pending[
                            pool.submit(
                                _thread_run_task, tasks[index], index,
                                next_attempt, next_attempt < MAX_TASK_RETRIES,
                                s_matrix, t_matrix, condition, algorithm,
                                materialize, trace_ctx,
                            )
                        ] = (index, next_attempt)
            pool.shutdown(wait=False)
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        return [outcomes[index] for index in range(len(tasks))]


# Per-process state of the process-pool backend, populated by the pool
# initializer; module-level so the worker function is picklable.
_PROCESS_STATE: dict = {}


def _process_initializer(
    descriptor: SharedStoreDescriptor | SpilledStoreDescriptor,
    condition: BandCondition,
    algorithm: LocalJoinAlgorithm,
    materialize: bool,
    trace_ctx: SpanContext | None = None,
    fault_state: tuple | None = None,
) -> None:
    if isinstance(descriptor, SpilledStoreDescriptor):
        _PROCESS_STATE["reader"] = SpilledTaskReader(descriptor)
    else:
        _PROCESS_STATE["reader"] = SharedTaskReader(descriptor)
    _PROCESS_STATE["condition"] = condition
    _PROCESS_STATE["algorithm"] = algorithm
    _PROCESS_STATE["materialize"] = materialize
    _PROCESS_STATE["trace_ctx"] = trace_ctx
    # Explicit (un)install: with a forked worker the parent's injector is
    # inherited, so the driver's choice must override either way.
    if fault_state is not None:
        rates, seed, slow_seconds = fault_state
        faults.install(faults.FaultInjector(rates, seed=seed, slow_seconds=slow_seconds))
    else:
        faults.uninstall()


def _process_run_task(index: int, attempt: int = 0) -> TaskOutcome:
    injector = faults.active()
    if injector is not None and injector.fire("worker_crash", "processes", index, attempt):
        # Simulated segfault/OOM kill: die without cleanup, exactly like the
        # real thing.  The driver sees BrokenProcessPool and recovers.
        os._exit(17)
    reader: SharedTaskReader = _PROCESS_STATE["reader"]
    return execute_task(
        reader.task(index),
        reader.s_matrix,
        reader.t_matrix,
        _PROCESS_STATE["condition"],
        _PROCESS_STATE["algorithm"],
        _PROCESS_STATE["materialize"],
        trace_ctx=_PROCESS_STATE.get("trace_ctx"),
    )


class ProcessPoolBackend(ExecutionBackend):
    """Process-pool backend with shared-memory column transfer and crash
    recovery.

    The join matrices and the routed row-index/offset arrays are placed into
    shared memory once; each task is submitted as a single integer index.
    Only the output (pair arrays or counts) crosses the process boundary by
    pickling.

    A worker death (``BrokenProcessPool`` — OOM kill, segfault, injected
    crash) or a hang past ``task_timeout`` loses only the tasks that had not
    completed: the pool is rebuilt and exactly those tasks are re-submitted
    with capped exponential backoff, up to ``max_task_retries`` rounds.
    Past that the dispatch falls back to the thread backend (and, should
    that fail too, to serial) — the query still answers with the identical
    pair set, just slower.  Recovery surfaces through the process-wide
    telemetry (``repro_worker_crashes_total``, ``repro_task_retries_total``,
    ``repro_backend_fallbacks_total``) and ``task_retry`` span events.

    Unlike the threads backend, a pool of size 1 is *not* short-circuited to
    the serial path: running off-process is this backend's semantic (a
    1-thread pool is observationally identical to serial, a 1-process pool
    is not), and silently un-processing it would misreport the backend's
    true overhead in comparisons.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the number of CPUs available to the process.
    task_timeout:
        Seconds without any task completing before the pool is declared
        hung, its workers killed, and the round retried (``None`` disables
        the hang detector).
    max_task_retries:
        Crash/hang rounds tolerated per dispatch before falling back.
    """

    name = "processes"

    def __init__(
        self,
        max_workers: int | None = None,
        memory_budget: int | None = None,
        task_timeout: float | None = None,
        max_task_retries: int = MAX_TASK_RETRIES,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be positive")
        if memory_budget is not None and memory_budget < 1:
            raise ExecutionError("memory_budget must be positive")
        if task_timeout is not None and task_timeout <= 0:
            raise ExecutionError("task_timeout must be positive when set")
        if max_task_retries < 0:
            raise ExecutionError("max_task_retries must be non-negative")
        self.max_workers = max_workers
        self.memory_budget = memory_budget
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        #: PIDs of the most recently observed live pool workers (refreshed
        #: while a dispatch runs) — lets chaos tests SIGKILL a real worker.
        self._live_pids: tuple[int, ...] = ()

    @property
    def live_worker_pids(self) -> tuple[int, ...]:
        """Return the worker PIDs observed during the current dispatch."""
        return self._live_pids

    def run(
        self, tasks, s_matrix, t_matrix, condition, algorithm, materialize,
        trace_ctx=None,
    ):
        if not tasks:
            return []
        pool_size = min(self.max_workers or _default_parallelism(), len(tasks))
        algorithm = self._budgeted(algorithm, concurrency=pool_size)
        # Out-of-core joins skip shared memory entirely: workers receive the
        # mmap segment paths (pickled sources) plus per-task spill-file refs
        # and map everything read-only themselves.
        streamed = not (
            isinstance(s_matrix, np.ndarray) and isinstance(t_matrix, np.ndarray)
        )
        store_cls = SpilledTaskStore if streamed else SharedTaskStore
        with store_cls(s_matrix, t_matrix, tasks) as store:
            injector = faults.active()
            fault_state = (
                (injector.rates, injector.seed, injector.slow_seconds)
                if injector is not None
                else None
            )
            initargs = (
                store.descriptor, condition, algorithm, materialize, trace_ctx,
                fault_state,
            )
            outcomes = self._run_with_recovery(
                tasks, pool_size, initargs, trace_ctx
            )
            lost = [index for index in range(len(tasks)) if index not in outcomes]
            if lost:
                for index, outcome in zip(
                    lost,
                    self._run_fallback(
                        [tasks[index] for index in lost], s_matrix, t_matrix,
                        condition, algorithm, materialize, trace_ctx,
                    ),
                ):
                    outcomes[index] = outcome
            return [outcomes[index] for index in range(len(tasks))]

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def _run_with_recovery(
        self, tasks, pool_size: int, initargs: tuple, trace_ctx
    ) -> dict[int, TaskOutcome]:
        """Execute tasks on (re-built) pools; returns what completed.

        Tasks still missing from the returned mapping after
        ``max_task_retries`` crash/hang rounds are the caller's to run on a
        fallback backend.
        """
        outcomes: dict[int, TaskOutcome] = {}
        crashes = 0
        while len(outcomes) < len(tasks):
            remaining_idx = [i for i in range(len(tasks)) if i not in outcomes]
            pool = ProcessPoolExecutor(
                max_workers=min(pool_size, len(remaining_idx)),
                initializer=_process_initializer,
                initargs=initargs,
            )
            try:
                self._dispatch_round(pool, tasks, remaining_idx, crashes, outcomes)
                # Every future resolved: workers are idle, the join is quick,
                # and waiting keeps the shared-memory store's teardown clean.
                pool.shutdown(wait=True)
                break
            except (BrokenProcessPool, _WorkerStall) as exc:
                self._kill_pool(pool)
                crashes += 1
                _crash_counter().inc(backend=self.name)
                lost = [i for i in remaining_idx if i not in outcomes]
                if crashes > self.max_task_retries:
                    _fallback_counter().inc(source=self.name, target="threads")
                    if trace_ctx is not None:
                        tracer().record(
                            "backend_fallback", trace_ctx, start=time.time(),
                            duration=0.0, source=self.name, lost=len(lost),
                            crashes=crashes,
                        )
                    break
                _retry_counter().inc(len(lost), backend=self.name)
                backoff = min(
                    RETRY_BACKOFF_CAP,
                    RETRY_BACKOFF_SECONDS * (2 ** (crashes - 1)),
                )
                budget = deadline.remaining()
                if budget is not None:
                    backoff = min(backoff, budget)
                if trace_ctx is not None:
                    tracer().record(
                        "task_retry", trace_ctx, start=time.time(),
                        duration=0.0, backend=self.name, lost=len(lost),
                        attempt=crashes, backoff_seconds=backoff,
                        cause=type(exc).__name__,
                    )
                if backoff > 0:
                    time.sleep(backoff)
            except BaseException:
                self._kill_pool(pool)
                raise
        return outcomes

    def _dispatch_round(
        self, pool, tasks, remaining_idx, attempt: int, outcomes: dict
    ) -> None:
        """Submit one round of tasks and collect until done, hang or crash."""
        pending = {
            pool.submit(_process_run_task, index, attempt): index
            for index in remaining_idx
        }
        while pending:
            procs = getattr(pool, "_processes", None) or {}
            self._live_pids = tuple(proc.pid for proc in procs.values())
            budget = deadline.remaining()
            timeout = self.task_timeout
            if budget is not None:
                timeout = budget if timeout is None else min(timeout, budget)
            done, _ = futures_wait(
                set(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                remaining_budget = deadline.remaining()
                if remaining_budget is not None and remaining_budget <= 0:
                    self._kill_pool(pool)
                    raise DeadlineExceededError(
                        "deadline exceeded waiting on process-pool tasks"
                    )
                # No completion within the hang window: kill the workers so
                # the lost tasks can retry on a fresh pool.
                raise _WorkerStall(
                    f"no task completed within task_timeout={self.task_timeout}s"
                )
            for future in done:
                index = pending.pop(future)
                outcomes[index] = future.result()

    @staticmethod
    def _kill_pool(pool) -> None:
        """Forcefully tear a (possibly wedged) pool down without waiting."""
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001 - already-dead workers are fine
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - broken pools may refuse shutdown
            pass

    def _run_fallback(
        self, tasks, s_matrix, t_matrix, condition, algorithm, materialize,
        trace_ctx,
    ) -> list[TaskOutcome]:
        """Run lost tasks in-driver: threads first, serial as last resort.

        The thread backend's own bounded retry loop absorbs injected
        crashes; the serial pass additionally runs with injection suppressed
        — the recovery chain terminates even at a 100% crash rate.
        """
        try:
            return ThreadPoolBackend(
                max_workers=self.max_workers, memory_budget=self.memory_budget
            ).run(
                tasks, s_matrix, t_matrix, condition, algorithm, materialize,
                trace_ctx=trace_ctx,
            )
        except (InjectedWorkerCrash, BrokenProcessPool):
            _fallback_counter().inc(source="threads", target="serial")
            with faults.suppressed():
                return SerialBackend(memory_budget=self.memory_budget).run(
                    tasks, s_matrix, t_matrix, condition, algorithm,
                    materialize, trace_ctx=trace_ctx,
                )


#: Name of the legacy in-driver simulated path (not an engine backend; the
#: executor keeps it as its default-compatible execution mode).
SIMULATED = "simulated"

_BACKEND_FACTORIES = {
    SerialBackend.name: SerialBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def available_backends() -> tuple[str, ...]:
    """Return the names of the registered engine backends."""
    return tuple(_BACKEND_FACTORIES)


def get_backend(
    backend: "str | ExecutionBackend",
    max_workers: int | None = None,
    memory_budget: int | None = None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    An explicit ``memory_budget`` is also honoured for instances: the
    instance is shallow-copied with the budget bound (never mutated — it may
    be shared), so ``ParallelJoinEngine(backend=SomeBackend(), memory_budget=...)``
    caps aggregate kernel allocation exactly like the name-based form.
    """
    if isinstance(backend, ExecutionBackend):
        if memory_budget is not None and backend.memory_budget != memory_budget:
            if memory_budget < 1:
                raise ExecutionError("memory_budget must be positive")
            clone = copy.copy(backend)
            clone.memory_budget = memory_budget
            return clone
        return backend
    try:
        factory = _BACKEND_FACTORIES[backend]
    except KeyError:
        raise ExecutionError(
            f"unknown engine backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    if factory is SerialBackend:
        return factory(memory_budget=memory_budget)
    return factory(max_workers=max_workers, memory_budget=memory_budget)
