"""Column-store relations.

A :class:`Relation` is an immutable, numpy-backed column store: a schema
(ordered column names) plus one float/int array per column, all of equal
length.  The band-join machinery only ever needs

* the projection of the relation onto the join attributes as a dense
  ``(n, d)`` float matrix (:meth:`Relation.join_matrix`),
* row subsets / samples (:meth:`Relation.take`, :meth:`Relation.sample`),

so the representation is intentionally simple and fast rather than general.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from typing import Iterator

import numpy as np

from repro.exceptions import SchemaError


def fingerprint_columns(columns: Sequence[tuple[str, np.ndarray]], rows: int) -> str:
    """Return a content hash of named columns (blake2b over the raw bytes).

    The hash covers the row count, the number of columns and — per column —
    its name, dtype and value bytes, so two column sets fingerprint equally
    iff they are byte-identical in the given order.  This is the primitive
    behind :meth:`Relation.fingerprint` and the plan cache's content keys.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{rows}:{len(columns)}".encode())
    for name, values in columns:
        column = np.ascontiguousarray(values)
        digest.update(name.encode())
        digest.update(str(column.dtype).encode())
        digest.update(column.tobytes())
    return digest.hexdigest()


class Relation:
    """An immutable named collection of equally-long numpy columns.

    Parameters
    ----------
    name:
        Human-readable relation name (used in reports and error messages).
    columns:
        Mapping of column name to 1-D array-like; all columns must have the
        same length.  Columns are converted to numpy arrays and never copied
        again afterwards, so callers should not mutate the arrays they pass.
    """

    def __init__(self, name: str, columns: Mapping[str, np.ndarray]) -> None:
        if not columns:
            raise SchemaError(f"relation {name!r} must have at least one column")
        converted: dict[str, np.ndarray] = {}
        length: int | None = None
        for col_name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise SchemaError(
                    f"column {col_name!r} of relation {name!r} must be one-dimensional"
                )
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise SchemaError(
                    f"column {col_name!r} of relation {name!r} has length {arr.shape[0]}, "
                    f"expected {length}"
                )
            converted[col_name] = arr
        self._name = name
        self._columns = converted
        self._length = int(length if length is not None else 0)
        # Memoized content fingerprints per attribute tuple; safe because the
        # relation (and, by contract, its arrays) never change after init.
        self._fingerprints: dict[tuple[str, ...], str] = {}

    @classmethod
    def from_rows(
        cls, name: str, rows: np.ndarray, column_names: Sequence[str]
    ) -> "Relation":
        """Build a relation from an ``(n, d)`` row matrix and column names.

        Columns are views into ``rows`` (dtype preserved, nothing copied), so
        the caller must not mutate the matrix afterwards — the same contract
        as the main constructor.
        """
        matrix = np.asarray(rows)
        names = list(column_names)
        if matrix.ndim != 2:
            raise SchemaError(
                f"from_rows expects an (n, d) matrix for relation {name!r}, "
                f"got shape {matrix.shape}"
            )
        if matrix.shape[1] != len(names):
            raise SchemaError(
                f"relation {name!r}: {len(names)} column names for a matrix "
                f"with {matrix.shape[1]} columns"
            )
        return cls(name, {col: matrix[:, i] for i, col in enumerate(names)})

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Return the relation name."""
        return self._name

    @property
    def column_names(self) -> tuple[str, ...]:
        """Return column names in schema order."""
        return tuple(self._columns.keys())

    @property
    def num_columns(self) -> int:
        """Return the number of columns."""
        return len(self._columns)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def column(self, name: str) -> np.ndarray:
        """Return the array backing column ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"relation {self._name!r} has no column {name!r}; "
                f"available: {list(self._columns)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def has_columns(self, names: Sequence[str]) -> bool:
        """Return ``True`` when every name in ``names`` is a column of this relation."""
        return all(n in self._columns for n in names)

    def fingerprint(self, attributes: Sequence[str]) -> str:
        """Return the memoized content hash of the given columns.

        Relations are immutable, so the hash is computed at most once per
        attribute tuple and then reused — on a serving hot path this turns
        every further plan-cache lookup over the same relation into a pure
        dictionary access instead of a re-hash of the column bytes.
        """
        key = tuple(attributes)
        cached = self._fingerprints.get(key)
        if cached is None:
            cached = fingerprint_columns([(a, self.column(a)) for a in key], self._length)
            self._fingerprints[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Projections and row subsets
    # ------------------------------------------------------------------ #
    def join_matrix(self, attributes: Sequence[str]) -> np.ndarray:
        """Return the ``(n, d)`` float matrix of the given join attributes.

        The column order of the result follows ``attributes``, which is the
        order every geometric component of the library (regions, band
        conditions, split trees) uses for its dimensions.
        """
        missing = [a for a in attributes if a not in self._columns]
        if missing:
            raise SchemaError(f"relation {self._name!r} is missing join attributes {missing}")
        if not attributes:
            raise SchemaError("join_matrix needs at least one attribute")
        return np.column_stack([np.asarray(self._columns[a], dtype=float) for a in attributes])

    def take(self, indices: np.ndarray, name: str | None = None) -> "Relation":
        """Return a new relation holding the rows selected by ``indices``."""
        idx = np.asarray(indices)
        new_columns = {c: arr[idx] for c, arr in self._columns.items()}
        return Relation(name or self._name, new_columns)

    def head(self, n: int) -> "Relation":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    def sample(self, n: int, rng: np.random.Generator, replace: bool = False) -> "Relation":
        """Return a uniform random sample of ``n`` rows.

        When ``n`` exceeds the relation size and ``replace`` is ``False`` the
        whole relation is returned (a sample cannot be larger than the data).
        """
        if self._length == 0:
            return self
        if not replace and n >= self._length:
            return self
        idx = rng.choice(self._length, size=n, replace=replace)
        return self.take(idx, name=f"{self._name}_sample")

    def concat(self, other: "Relation", name: str | None = None) -> "Relation":
        """Return the row-wise concatenation of this relation and ``other``.

        Both relations must have identical schemas.
        """
        if self.column_names != other.column_names:
            raise SchemaError(
                f"cannot concatenate relations with different schemas: "
                f"{self.column_names} vs {other.column_names}"
            )
        new_columns = {
            c: np.concatenate([self._columns[c], other._columns[c]]) for c in self.column_names
        }
        return Relation(name or self._name, new_columns)

    # ------------------------------------------------------------------ #
    # Statistics helpers
    # ------------------------------------------------------------------ #
    def bounds(self, attributes: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Return per-attribute (min, max) arrays over the given attributes."""
        matrix = self.join_matrix(attributes)
        if matrix.shape[0] == 0:
            d = len(attributes)
            return np.zeros(d), np.zeros(d)
        return matrix.min(axis=0), matrix.max(axis=0)

    def describe(self) -> dict[str, dict[str, float]]:
        """Return simple summary statistics (min/max/mean) for every numeric column."""
        summary: dict[str, dict[str, float]] = {}
        for col_name, arr in self._columns.items():
            if not np.issubdtype(arr.dtype, np.number):
                continue
            if arr.size == 0:
                summary[col_name] = {"min": float("nan"), "max": float("nan"), "mean": float("nan")}
                continue
            values = arr.astype(float)
            summary[col_name] = {
                "min": float(values.min()),
                "max": float(values.max()),
                "mean": float(values.mean()),
            }
        return summary

    def to_dict(self) -> dict[str, np.ndarray]:
        """Return a shallow copy of the column mapping."""
        return dict(self._columns)

    def rename(self, name: str) -> "Relation":
        """Return the same relation under a different name (columns are shared)."""
        return Relation(name, self._columns)

    def __repr__(self) -> str:
        return (
            f"Relation(name={self._name!r}, rows={self._length}, "
            f"columns={list(self._columns)})"
        )
