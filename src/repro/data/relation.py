"""Column-store relations.

A :class:`Relation` is an immutable named schema over a pluggable
:class:`~repro.data.storage.ColumnStore`: the historical in-memory
representation (one numpy array per column) or a memory-mapped ``.npy``
segment store for data bigger than RAM.  The band-join machinery only ever
needs

* the projection of the relation onto the join attributes as a dense
  ``(n, d)`` float matrix — whole (:meth:`Relation.join_matrix`) or, for
  out-of-core execution, as bounded row slices
  (:meth:`Relation.join_matrix_slice`, :meth:`Relation.iter_join_matrix`),
* row subsets / samples (:meth:`Relation.take`, :meth:`Relation.sample`),

so the representation is intentionally simple and fast rather than general.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from typing import Iterator

import numpy as np

from repro.exceptions import SchemaError
from repro.data.storage import (
    DEFAULT_BLOCK_BYTES,
    ColumnStore,
    InMemoryColumnStore,
    MmapColumnStore,
    block_spans,
)


def fingerprint_columns(columns: Sequence[tuple[str, np.ndarray]], rows: int) -> str:
    """Return a content hash of named columns (blake2b over the raw bytes).

    The hash covers the row count, the number of columns and — per column —
    its name, dtype and value bytes, so two column sets fingerprint equally
    iff they are byte-identical in the given order.  Hashing streams in
    bounded blocks, so fingerprinting never materializes a full contiguous
    copy of a column (strided views and memory-mapped columns are hashed
    one block at a time).  This is the primitive behind
    :meth:`Relation.fingerprint` and the plan cache's content keys.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{rows}:{len(columns)}".encode())
    for name, values in columns:
        column = np.asarray(values)
        digest.update(name.encode())
        digest.update(str(column.dtype).encode())
        _hash_column_blocks(digest, column)
    return digest.hexdigest()


def _hash_column_blocks(digest, column: np.ndarray) -> None:
    """Feed a column's bytes to ``digest`` in bounded contiguous blocks.

    Block-wise ``tobytes`` over consecutive row spans concatenates to
    exactly the bytes of ``ascontiguousarray(column).tobytes()``, so the
    resulting digest is identical to the historical whole-array hash.
    """
    rows = int(column.shape[0])
    block_rows = max(1, DEFAULT_BLOCK_BYTES // max(1, column.dtype.itemsize))
    if rows <= block_rows and column.flags.c_contiguous:
        digest.update(column.tobytes())
        return
    for start, stop in block_spans(rows, block_rows):
        digest.update(np.ascontiguousarray(column[start:stop]).tobytes())


def fingerprint_store(store: ColumnStore, attributes: Sequence[str], rows: int) -> str:
    """Fingerprint store-resident columns without materializing them."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{rows}:{len(attributes)}".encode())
    for name in attributes:
        dtype = store.dtype(name)
        digest.update(name.encode())
        digest.update(str(dtype).encode())
        block_rows = max(1, DEFAULT_BLOCK_BYTES // max(1, dtype.itemsize))
        for start, stop in block_spans(rows, block_rows):
            digest.update(np.ascontiguousarray(store.read(name, start, stop)).tobytes())
    return digest.hexdigest()


class Relation:
    """An immutable named collection of equally-long columns.

    Parameters
    ----------
    name:
        Human-readable relation name (used in reports and error messages).
    columns:
        Mapping of column name to 1-D array-like; all columns must have the
        same length.  Columns are converted to numpy arrays and never copied
        again afterwards, so callers should not mutate the arrays they pass.
        To wrap an existing :class:`~repro.data.storage.ColumnStore`
        (in particular a memory-mapped one) use :meth:`from_store`.
    """

    def __init__(self, name: str, columns: Mapping[str, np.ndarray]) -> None:
        try:
            store = InMemoryColumnStore(columns)
        except SchemaError as exc:
            raise SchemaError(f"relation {name!r}: {exc}") from None
        self._init_from_store(name, store)

    def _init_from_store(self, name: str, store: ColumnStore) -> None:
        self._name = name
        self._store = store
        self._length = int(store.rows)
        # Memoized content fingerprints per attribute tuple; safe because the
        # relation (and, by contract, its storage) never change after init.
        self._fingerprints: dict[tuple[str, ...], str] = {}

    @classmethod
    def from_store(cls, name: str, store: ColumnStore) -> "Relation":
        """Wrap an existing column store without copying any data."""
        relation = cls.__new__(cls)
        relation._init_from_store(name, store)
        return relation

    @classmethod
    def from_rows(
        cls, name: str, rows: np.ndarray, column_names: Sequence[str]
    ) -> "Relation":
        """Build a relation from an ``(n, d)`` row matrix and column names.

        Columns are views into ``rows`` (dtype preserved, nothing copied), so
        the caller must not mutate the matrix afterwards — the same contract
        as the main constructor.
        """
        matrix = np.asarray(rows)
        names = list(column_names)
        if matrix.ndim != 2:
            raise SchemaError(
                f"from_rows expects an (n, d) matrix for relation {name!r}, "
                f"got shape {matrix.shape}"
            )
        if matrix.shape[1] != len(names):
            raise SchemaError(
                f"relation {name!r}: {len(names)} column names for a matrix "
                f"with {matrix.shape[1]} columns"
            )
        return cls(name, {col: matrix[:, i] for i, col in enumerate(names)})

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Return the relation name."""
        return self._name

    @property
    def store(self) -> ColumnStore:
        """Return the column store backing this relation."""
        return self._store

    @property
    def storage(self) -> str:
        """Return the storage backend name (``"memory"`` or ``"mmap"``)."""
        return self._store.backend

    @property
    def segment_count(self) -> int:
        """Return the number of physical segments backing this relation."""
        return self._store.segment_count

    @property
    def nbytes(self) -> int:
        """Return the logical payload size in bytes."""
        return self._store.nbytes

    @property
    def column_names(self) -> tuple[str, ...]:
        """Return column names in schema order."""
        return self._store.column_names

    @property
    def num_columns(self) -> int:
        """Return the number of columns."""
        return len(self._store.column_names)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, column: str) -> bool:
        return column in self._store.column_names

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.column_names)

    def column(self, name: str) -> np.ndarray:
        """Return column ``name`` as one array (materializes mmap columns)."""
        try:
            return self._store.column(name)
        except SchemaError:
            raise SchemaError(
                f"relation {self._name!r} has no column {name!r}; "
                f"available: {list(self._store.column_names)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def has_columns(self, names: Sequence[str]) -> bool:
        """Return ``True`` when every name in ``names`` is a column of this relation."""
        return all(n in self._store.column_names for n in names)

    def fingerprint(self, attributes: Sequence[str]) -> str:
        """Return the memoized content hash of the given columns.

        Relations are immutable, so the hash is computed at most once per
        attribute tuple and then reused — on a serving hot path this turns
        every further plan-cache lookup over the same relation into a pure
        dictionary access instead of a re-hash of the column bytes.
        """
        key = tuple(attributes)
        cached = self._fingerprints.get(key)
        if cached is None:
            for attr in key:
                if attr not in self._store.column_names:
                    raise SchemaError(
                        f"relation {self._name!r} has no column {attr!r}; "
                        f"available: {list(self._store.column_names)}"
                    )
            cached = fingerprint_store(self._store, key, self._length)
            self._fingerprints[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Projections and row subsets
    # ------------------------------------------------------------------ #
    def _check_attributes(self, attributes: Sequence[str]) -> None:
        missing = [a for a in attributes if a not in self._store.column_names]
        if missing:
            raise SchemaError(
                f"relation {self._name!r} is missing join attributes {missing}"
            )
        if not attributes:
            raise SchemaError("join_matrix needs at least one attribute")

    def join_matrix(self, attributes: Sequence[str]) -> np.ndarray:
        """Return the ``(n, d)`` float matrix of the given join attributes.

        The column order of the result follows ``attributes``, which is the
        order every geometric component of the library (regions, band
        conditions, split trees) uses for its dimensions.  For out-of-core
        relations prefer :meth:`iter_join_matrix`, which streams the same
        matrix in bounded row slices.
        """
        self._check_attributes(attributes)
        return np.column_stack(
            [np.asarray(self._store.column(a), dtype=float) for a in attributes]
        )

    def join_matrix_slice(
        self, attributes: Sequence[str], start: int, stop: int
    ) -> np.ndarray:
        """Return rows ``[start, stop)`` of :meth:`join_matrix` as a float matrix."""
        self._check_attributes(attributes)
        start = max(0, int(start))
        stop = min(self._length, int(stop))
        if stop <= start:
            return np.empty((0, len(attributes)), dtype=float)
        out = np.empty((stop - start, len(attributes)), dtype=float)
        for i, attr in enumerate(attributes):
            out[:, i] = self._store.read(attr, start, stop)
        return out

    def iter_join_matrix(
        self, attributes: Sequence[str], max_bytes: int = DEFAULT_BLOCK_BYTES
    ):
        """Yield ``(start, stop, chunk)`` float slices of the join matrix.

        Each chunk holds at most ``max_bytes`` of float64 payload; the
        concatenation of all chunks equals :meth:`join_matrix`.  This is the
        streaming seam the engine uses to route out-of-core relations
        without ever materializing the whole matrix.
        """
        self._check_attributes(attributes)
        row_bytes = 8 * max(1, len(attributes))
        block_rows = max(1, int(max_bytes) // row_bytes)
        for start, stop in block_spans(self._length, block_rows):
            yield start, stop, self.join_matrix_slice(attributes, start, stop)

    def take(self, indices: np.ndarray, name: str | None = None) -> "Relation":
        """Return a new in-memory relation holding the rows selected by ``indices``."""
        idx = np.asarray(indices)
        new_columns = {c: self._store.take(c, idx) for c in self._store.column_names}
        return Relation(name or self._name, new_columns)

    def head(self, n: int) -> "Relation":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    def sample(self, n: int, rng: np.random.Generator, replace: bool = False) -> "Relation":
        """Return a uniform random sample of ``n`` rows.

        When ``n`` exceeds the relation size and ``replace`` is ``False`` the
        whole relation is returned (a sample cannot be larger than the data).
        """
        if self._length == 0:
            return self
        if not replace and n >= self._length:
            return self
        idx = rng.choice(self._length, size=n, replace=replace)
        return self.take(idx, name=f"{self._name}_sample")

    def concat(self, other: "Relation", name: str | None = None) -> "Relation":
        """Return the row-wise concatenation of this relation and ``other``.

        Both relations must have identical schemas.  When both sides are
        mmap-backed the result simply references the union of their segment
        chains — no data is read or copied.  Otherwise columns concatenate
        one at a time, so peak transient memory is one column pair, not the
        whole pair of relations.
        """
        if self.column_names != other.column_names:
            raise SchemaError(
                f"cannot concatenate relations with different schemas: "
                f"{self.column_names} vs {other.column_names}"
            )
        if len(other) == 0:
            return self.rename(name or self._name)
        if len(self) == 0:
            return other.rename(name or self._name)
        if isinstance(self._store, MmapColumnStore) and isinstance(
            other._store, MmapColumnStore
        ):
            return Relation.from_store(
                name or self._name, self._store.with_appended(other._store)
            )
        new_columns = {}
        for c in self.column_names:
            new_columns[c] = np.concatenate([self._store.column(c), other._store.column(c)])
        return Relation(name or self._name, new_columns)

    # ------------------------------------------------------------------ #
    # Out-of-core conversion
    # ------------------------------------------------------------------ #
    def spill(self, directory: str, **kwargs) -> "Relation":
        """Return an mmap-backed copy of this relation under ``directory``.

        The rewrite streams block-by-block; extra keyword arguments are
        forwarded to :meth:`MmapColumnStore.from_store` (``block_bytes``,
        ``segment_bytes``).  A relation that is already mmap-backed is
        returned unchanged.
        """
        if isinstance(self._store, MmapColumnStore):
            return self
        store = MmapColumnStore.from_store(self._store, directory, **kwargs)
        spilled = Relation.from_store(self._name, store)
        # Content is byte-identical, so memoized fingerprints carry over.
        spilled._fingerprints.update(self._fingerprints)
        return spilled

    # ------------------------------------------------------------------ #
    # Statistics helpers
    # ------------------------------------------------------------------ #
    def bounds(self, attributes: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Return per-attribute (min, max) arrays over the given attributes.

        Served from per-segment statistics when the store caches them
        (mmap segments record min/max at write time), falling back to a
        bounded streaming scan — never a whole-matrix materialization.
        """
        self._check_attributes(attributes)
        d = len(attributes)
        if self._length == 0:
            return np.zeros(d), np.zeros(d)
        lo = np.empty(d)
        hi = np.empty(d)
        pending: list[int] = []
        for i, attr in enumerate(attributes):
            stat = self._store.column_stats(attr)
            if stat is None:
                pending.append(i)
            else:
                lo[i], hi[i] = stat
        if pending:
            first = True
            for _, _, chunk in self.iter_join_matrix([attributes[i] for i in pending]):
                c_lo = chunk.min(axis=0)
                c_hi = chunk.max(axis=0)
                for j, i in enumerate(pending):
                    if first:
                        lo[i], hi[i] = c_lo[j], c_hi[j]
                    else:
                        lo[i] = min(lo[i], c_lo[j])
                        hi[i] = max(hi[i], c_hi[j])
                first = False
        return lo, hi

    def describe(self) -> dict[str, dict[str, float]]:
        """Return simple summary statistics (min/max/mean) for every numeric column."""
        summary: dict[str, dict[str, float]] = {}
        for col_name in self._store.column_names:
            dtype = self._store.dtype(col_name)
            if not np.issubdtype(dtype, np.number):
                continue
            if self._length == 0:
                summary[col_name] = {
                    "min": float("nan"), "max": float("nan"), "mean": float("nan")
                }
                continue
            block_rows = max(1, DEFAULT_BLOCK_BYTES // max(1, dtype.itemsize))
            lo = np.inf
            hi = -np.inf
            total = 0.0
            for start, stop in block_spans(self._length, block_rows):
                values = np.asarray(self._store.read(col_name, start, stop), dtype=float)
                lo = min(lo, float(values.min()))
                hi = max(hi, float(values.max()))
                total += float(values.sum())
            summary[col_name] = {"min": lo, "max": hi, "mean": total / self._length}
        return summary

    def to_dict(self) -> dict[str, np.ndarray]:
        """Return the column mapping (materializes mmap columns)."""
        return {c: self._store.column(c) for c in self._store.column_names}

    def rename(self, name: str) -> "Relation":
        """Return the same relation under a different name (storage is shared)."""
        renamed = Relation.from_store(name, self._store)
        renamed._fingerprints = self._fingerprints
        return renamed

    def __repr__(self) -> str:
        return (
            f"Relation(name={self._name!r}, rows={self._length}, "
            f"columns={list(self._store.column_names)}, storage={self.storage!r})"
        )
