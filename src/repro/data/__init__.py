"""Data substrate: relations, synthetic generators and persistence."""

from repro.data.relation import Relation, fingerprint_columns
from repro.data.storage import (
    ColumnStore,
    InMemoryColumnStore,
    MmapColumnStore,
    SpillArena,
)
from repro.data.generators import (
    pareto_relation,
    reverse_pareto_relation,
    uniform_relation,
    normal_relation,
    zipf_relation,
    clustered_relation,
)
from repro.data.synthetic_real import (
    ebird_like,
    cloud_reports_like,
    ptf_objects_like,
)

__all__ = [
    "Relation",
    "fingerprint_columns",
    "ColumnStore",
    "InMemoryColumnStore",
    "MmapColumnStore",
    "SpillArena",
    "pareto_relation",
    "reverse_pareto_relation",
    "uniform_relation",
    "normal_relation",
    "zipf_relation",
    "clustered_relation",
    "ebird_like",
    "cloud_reports_like",
    "ptf_objects_like",
]
