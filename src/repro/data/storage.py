"""Pluggable column storage: in-memory arrays and memory-mapped segments.

A :class:`ColumnStore` is the physical layer under
:class:`~repro.data.relation.Relation`: a set of equally long named columns
that consumers read as bounded **slices** (``read(name, start, stop)``) or
bounded **gathers** (``take(name, rows)``) instead of whole arrays.  Two
implementations exist:

:class:`InMemoryColumnStore`
    The historical representation — one numpy array per column.  Slices are
    views, gathers are fancy indexing; nothing changes for data that fits
    in RAM.

:class:`MmapColumnStore`
    An out-of-core store: every column lives in one or more ``.npy``
    **segment** files on disk, opened lazily with ``numpy`` memory mapping.
    Appending rows appends segments (no rewrite); compaction coalesces
    small segments by rewriting them block-by-block on disk, never holding
    more than one block in memory.  Reads copy the requested slice out of
    the mapping and periodically drop the mapping's resident pages
    (``madvise(MADV_DONTNEED)``), so a full scan of a 10x-RAM relation
    keeps the process RSS bounded by the recycle threshold instead of the
    data size.

:class:`SpillArena` provides scratch files for the execution layer: routed
row indices, per-task matrices and other O(n) transients can be written
once (append-only, block-buffered) and re-opened as read-only memory maps,
which is how the streaming engine keeps its own bookkeeping off the heap.
"""

from __future__ import annotations

import abc
import json
import mmap as _mmap
import os
import shutil
import tempfile
import threading
import uuid
import zlib
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro import faults
from repro.exceptions import CorruptSegmentError, SchemaError

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "MMAP_RECYCLE_BYTES",
    "DEFAULT_SEGMENT_BYTES",
    "ColumnStore",
    "InMemoryColumnStore",
    "MmapColumnStore",
    "Segment",
    "SpillArena",
    "block_spans",
    "madvise_dontneed",
    "recover_spill_dir",
]

#: Suffix of in-flight segment files; a crash mid-write leaves only files
#: with this suffix behind (finished segments are renamed into place), so
#: startup recovery is "delete every ``*.tmp``".
TMP_SUFFIX: str = ".tmp"


def recover_spill_dir(directory: str) -> list[str]:
    """Sweep orphaned in-flight segment files under ``directory``.

    A crash between segment start and the atomic rename leaves ``*.tmp``
    files that no manifest references; they are garbage by construction
    (finished segments are fsynced and renamed before anything points at
    them).  Returns the removed paths.
    """
    removed: list[str] = []
    if not directory or not os.path.isdir(directory):
        return removed
    for root, _dirs, files in os.walk(directory):
        for name in files:
            if name.endswith(TMP_SUFFIX):
                path = os.path.join(root, name)
                try:
                    os.unlink(path)
                    removed.append(path)
                except OSError:  # pragma: no cover - raced by another sweep
                    pass
    return removed

#: Default byte size of one streamed block (slice reads, segment writes,
#: block-wise hashing).  Large enough to amortize per-call overhead, small
#: enough that a handful of concurrent blocks stay far below any ceiling.
DEFAULT_BLOCK_BYTES: int = 8 * 1024 * 1024

#: Bytes read through one live mapping before its resident pages are
#: dropped (``MADV_DONTNEED``).  Bounds how much of a scanned segment can
#: accumulate in the process RSS.
MMAP_RECYCLE_BYTES: int = 32 * 1024 * 1024

#: Target byte size of one column segment written by
#: :meth:`MmapColumnStore.write` / :meth:`MmapColumnStore.compacted`.
#: Bounded segments bound the worst-case resident set of a random gather
#: (one segment's pages at a time) and give compaction its rewrite unit.
DEFAULT_SEGMENT_BYTES: int = 32 * 1024 * 1024


def block_spans(rows: int, block_rows: int) -> Iterable[tuple[int, int]]:
    """Yield consecutive ``(start, stop)`` spans of at most ``block_rows``."""
    block_rows = max(1, int(block_rows))
    for start in range(0, rows, block_rows):
        yield start, min(start + block_rows, rows)


def madvise_dontneed(array: np.ndarray) -> bool:
    """Best-effort drop of the resident pages behind a memory-mapped array.

    Walks the array's base chain looking for the underlying ``mmap`` object
    (``np.memmap`` exposes it as ``_mmap``); returns ``True`` when pages
    were advised away.  A no-op (``False``) for plain in-memory arrays and
    on platforms without ``madvise``.
    """
    target = array
    while target is not None:
        raw = getattr(target, "_mmap", None)
        if raw is not None:
            try:
                raw.madvise(_mmap.MADV_DONTNEED)
                return True
            except (AttributeError, OSError, ValueError):  # pragma: no cover
                return False
        target = getattr(target, "base", None)
    return False


class ColumnStore(abc.ABC):
    """Physical column storage behind a :class:`~repro.data.relation.Relation`.

    The contract deliberately centres on *bounded* access: ``read`` returns
    one row slice of one column, ``take`` gathers an explicit row subset.
    ``column`` (the whole array) exists for compatibility with in-memory
    consumers and is allowed to materialize.
    """

    #: Storage backend name surfaced in catalogs, EXPLAIN and stats.
    backend: str = "store"

    @property
    @abc.abstractmethod
    def rows(self) -> int:
        """Return the number of rows (shared by every column)."""

    @property
    @abc.abstractmethod
    def column_names(self) -> tuple[str, ...]:
        """Return the column names in schema order."""

    @abc.abstractmethod
    def dtype(self, name: str) -> np.dtype:
        """Return the dtype of one column."""

    @abc.abstractmethod
    def read(self, name: str, start: int, stop: int) -> np.ndarray:
        """Return rows ``[start, stop)`` of one column.

        In-memory stores return views; memory-mapped stores return fresh
        in-memory copies (never a live mapping), so callers may hold the
        slice without pinning file pages.
        """

    @abc.abstractmethod
    def take(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Return an explicit row subset of one column (positional gather)."""

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Return the logical payload size of the store in bytes."""

    @property
    def segment_count(self) -> int:
        """Return the number of on-disk segments (1 for in-memory stores)."""
        return 1

    def column(self, name: str) -> np.ndarray:
        """Return one whole column (materializes for out-of-core stores)."""
        return self.read(name, 0, self.rows)

    def column_stats(self, name: str) -> tuple[float, float] | None:
        """Return cached ``(min, max)`` of a numeric column, if known."""
        return None

    def describe(self) -> dict:
        """Return a JSON-friendly summary of the physical layout."""
        return {
            "backend": self.backend,
            "rows": self.rows,
            "segments": self.segment_count,
            "bytes": self.nbytes,
        }

    def _check_column(self, name: str) -> None:
        if name not in self.column_names:
            raise SchemaError(
                f"store has no column {name!r}; available: {list(self.column_names)}"
            )


class InMemoryColumnStore(ColumnStore):
    """The historical representation: one numpy array per column.

    Arrays are adopted without copying (the relation contract: callers must
    not mutate what they pass in), so wrapping existing columns is free.
    """

    backend = "memory"

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        if not columns:
            raise SchemaError("a column store needs at least one column")
        converted: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise SchemaError(f"column {name!r} must be one-dimensional")
            if length is None:
                length = int(arr.shape[0])
            elif arr.shape[0] != length:
                raise SchemaError(
                    f"column {name!r} has length {arr.shape[0]}, expected {length}"
                )
            converted[name] = arr
        self._columns = converted
        self._rows = int(length if length is not None else 0)

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def dtype(self, name: str) -> np.dtype:
        self._check_column(name)
        return self._columns[name].dtype

    def read(self, name: str, start: int, stop: int) -> np.ndarray:
        self._check_column(name)
        return self._columns[name][start:stop]

    def take(self, name: str, rows: np.ndarray) -> np.ndarray:
        self._check_column(name)
        return self._columns[name][np.asarray(rows)]

    def column(self, name: str) -> np.ndarray:
        self._check_column(name)
        return self._columns[name]

    @property
    def nbytes(self) -> int:
        return int(sum(arr.nbytes for arr in self._columns.values()))

    def mapping(self) -> dict[str, np.ndarray]:
        """Return a shallow copy of the column mapping (arrays shared)."""
        return dict(self._columns)


@dataclass(frozen=True)
class Segment:
    """One row range of a :class:`MmapColumnStore`.

    ``files`` maps column name to the ``.npy`` file holding that column's
    rows of this segment; ``stats`` optionally caches per-column (min, max)
    so bounds queries never touch the data; ``checksums`` holds the CRC32 of
    each column file's payload bytes, letting :meth:`MmapColumnStore.verify`
    detect bit rot and torn writes without trusting the writer.
    """

    rows: int
    files: dict
    stats: dict
    checksums: dict = field(default_factory=dict)

    def spec(self) -> dict:
        return {
            "rows": self.rows,
            "files": dict(self.files),
            "stats": dict(self.stats),
            "checksums": dict(self.checksums),
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "Segment":
        return cls(
            rows=int(spec["rows"]),
            files=dict(spec["files"]),
            stats={k: tuple(v) for k, v in spec.get("stats", {}).items()},
            checksums={k: int(v) for k, v in spec.get("checksums", {}).items()},
        )


class _MappingCache:
    """Lazily opened memory maps with resident-page recycling.

    Every mapping tracks how many bytes have been read through it; past
    :data:`MMAP_RECYCLE_BYTES` the mapping's pages are advised away
    (``MADV_DONTNEED``), so scanning arbitrarily large segments keeps the
    process RSS bounded.  Thread-safe: the engine's thread backend scans
    one store from several worker threads.
    """

    def __init__(self, recycle_bytes: int = MMAP_RECYCLE_BYTES) -> None:
        self._lock = threading.Lock()
        self._maps: dict[str, np.memmap] = {}
        self._read_bytes: dict[str, int] = {}
        self.recycle_bytes = int(recycle_bytes)

    def open(self, path: str) -> np.memmap:
        with self._lock:
            mapped = self._maps.get(path)
            if mapped is None:
                mapped = np.load(path, mmap_mode="r")
                self._maps[path] = mapped
                self._read_bytes[path] = 0
            return mapped

    def charge(self, path: str, mapped: np.memmap, nbytes: int) -> None:
        """Account one read; recycle the mapping's pages past the threshold."""
        with self._lock:
            total = self._read_bytes.get(path, 0) + int(nbytes)
            if total >= self.recycle_bytes:
                madvise_dontneed(mapped)
                total = 0
            self._read_bytes[path] = total

    def release(self) -> None:
        """Drop resident pages of every live mapping (keeps the maps open)."""
        with self._lock:
            for mapped in self._maps.values():
                madvise_dontneed(mapped)
            for path in self._read_bytes:
                self._read_bytes[path] = 0


class MmapColumnStore(ColumnStore):
    """Columns stored as memory-mapped ``.npy`` segments on disk.

    A store is an ordered list of :class:`Segment` row ranges; every
    segment holds one ``.npy`` file per column.  Appending rows is a
    segment-list extension (zero data movement), which is what makes the
    catalog's delta appends cheap; :meth:`compacted` rewrites the segment
    chain into evenly sized segments block-by-block when the chain grows
    ragged.

    Stores are picklable through :meth:`spec` / :meth:`from_spec` — a spec
    is just file paths plus shapes, which is how the process-pool backend
    hands an out-of-core relation to worker processes without copying it.
    """

    backend = "mmap"

    def __init__(
        self,
        segments: list[Segment],
        directory: str | None = None,
        recycle_bytes: int = MMAP_RECYCLE_BYTES,
    ) -> None:
        if not segments:
            raise SchemaError("an mmap column store needs at least one segment")
        names = tuple(segments[0].files)
        for segment in segments:
            if tuple(segment.files) != names:
                raise SchemaError("every segment must hold the same columns")
        self._segments = list(segments)
        self._names = names
        self._starts = np.cumsum([0] + [s.rows for s in segments])
        self._rows = int(self._starts[-1])
        self.directory = directory
        self._cache = _MappingCache(recycle_bytes)
        self._dtypes: dict[str, np.dtype] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def write(
        cls,
        directory: str,
        columns,
        *,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        recycle_bytes: int = MMAP_RECYCLE_BYTES,
    ) -> "MmapColumnStore":
        """Write columns into fresh segments under ``directory``.

        ``columns`` is either a ``{name: array}`` mapping (spilled
        block-by-block, so even an in-memory→disk conversion never doubles
        the resident set) or an *iterator of chunk mappings* — the
        streaming form used by generators producing data larger than RAM.
        Segments are capped at ``segment_bytes`` per column so later random
        gathers and compaction rewrites touch bounded files.
        """
        os.makedirs(directory, exist_ok=True)
        if isinstance(columns, Mapping):
            store = InMemoryColumnStore(columns)
            row_bytes = max(
                1, sum(store.dtype(n).itemsize for n in store.column_names)
            )
            block_rows = max(1, block_bytes // row_bytes)
            chunks = (
                {n: store.read(n, start, stop) for n in store.column_names}
                for start, stop in block_spans(store.rows, block_rows)
            )
        else:
            chunks = iter(columns)
        writer = _SegmentWriter(directory, segment_bytes)
        for chunk in chunks:
            writer.append({name: np.asarray(values) for name, values in chunk.items()})
        segments = writer.finish()
        store = cls(segments, directory=directory, recycle_bytes=recycle_bytes)
        # Validate before anything references the store: a torn write (crash,
        # full disk, injected fault) surfaces here as CorruptSegmentError,
        # while the caller can still retry into a fresh directory.
        store.validate()
        return store

    @classmethod
    def from_store(
        cls,
        store: ColumnStore,
        directory: str,
        *,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "MmapColumnStore":
        """Spill any column store to disk, block by block."""
        row_bytes = max(1, sum(store.dtype(n).itemsize for n in store.column_names))
        block_rows = max(1, block_bytes // row_bytes)
        chunks = (
            {n: store.read(n, start, stop) for n in store.column_names}
            for start, stop in block_spans(store.rows, block_rows)
        )
        return cls.write(
            directory, chunks, block_bytes=block_bytes, segment_bytes=segment_bytes
        )

    def spec(self) -> dict:
        """Return the picklable description of this store (paths + layout)."""
        return {
            "backend": self.backend,
            "directory": self.directory,
            "recycle_bytes": self._cache.recycle_bytes,
            "segments": [segment.spec() for segment in self._segments],
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "MmapColumnStore":
        return cls(
            [Segment.from_spec(s) for s in spec["segments"]],
            directory=spec.get("directory"),
            recycle_bytes=int(spec.get("recycle_bytes", MMAP_RECYCLE_BYTES)),
        )

    def save_manifest(self, path: str) -> str:
        """Persist the store layout as JSON (re-open with :meth:`load_manifest`)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.spec(), handle)
        return path

    @classmethod
    def load_manifest(cls, path: str) -> "MmapColumnStore":
        with open(path, encoding="utf-8") as handle:
            return cls.from_spec(json.load(handle))

    # ------------------------------------------------------------------ #
    # ColumnStore API
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> int:
        return self._rows

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._names

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def segments(self) -> tuple[Segment, ...]:
        return tuple(self._segments)

    def dtype(self, name: str) -> np.dtype:
        self._check_column(name)
        cached = self._dtypes.get(name)
        if cached is None:
            cached = self._open(self._segments[0], name).dtype
            self._dtypes[name] = cached
        return cached

    def _open(self, segment: Segment, name: str) -> np.memmap:
        """Open one segment column, validating it against the metadata.

        A missing file, an unreadable/truncated ``.npy``, or a row count
        that disagrees with the segment spec raises
        :class:`~repro.exceptions.CorruptSegmentError` — torn segments must
        fail loudly on open, never be served as data.
        """
        path = segment.files[name]
        try:
            mapped = self._cache.open(path)
        except FileNotFoundError:
            raise CorruptSegmentError(
                f"segment file {path!r} is missing (expected {segment.rows} rows "
                f"of column {name!r})"
            ) from None
        except (ValueError, OSError) as exc:
            raise CorruptSegmentError(
                f"segment file {path!r} is unreadable or truncated: {exc}"
            ) from None
        if int(mapped.shape[0]) != segment.rows:
            raise CorruptSegmentError(
                f"segment file {path!r} holds {int(mapped.shape[0])} rows, "
                f"expected {segment.rows}"
            )
        return mapped

    def validate(self) -> int:
        """Open-validate every segment column (existence, readability, rows).

        Cheap (metadata only — no payload scan); the write path calls this
        so a torn write is caught while the writer can still recover.
        Returns the number of files checked.
        """
        checked = 0
        for segment in self._segments:
            for name in self._names:
                self._open(segment, name)
                checked += 1
        return checked

    def verify(self, block_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
        """Deep-verify payload checksums of every segment column.

        Recomputes each file's CRC32 block-by-block (bounded memory) and
        compares against the checksum recorded at write time; raises
        :class:`~repro.exceptions.CorruptSegmentError` on the first
        mismatch.  Segments written before checksums existed are skipped.
        Returns the number of files whose checksum was verified.
        """
        verified = 0
        for segment in self._segments:
            for name in self._names:
                expected = segment.checksums.get(name)
                if expected is None:
                    continue
                mapped = self._open(segment, name)
                block_rows = max(1, block_bytes // max(1, mapped.itemsize))
                crc = 0
                for start, stop in block_spans(segment.rows, block_rows):
                    crc = zlib.crc32(mapped[start:stop].tobytes(), crc)
                self._cache.charge(segment.files[name], mapped, mapped.nbytes)
                if crc != int(expected):
                    raise CorruptSegmentError(
                        f"segment file {segment.files[name]!r} checksum mismatch: "
                        f"payload crc32={crc}, recorded {int(expected)}"
                    )
                verified += 1
        return verified

    def read(self, name: str, start: int, stop: int) -> np.ndarray:
        self._check_column(name)
        start = max(0, int(start))
        stop = min(self._rows, int(stop))
        if stop <= start:
            return np.empty(0, dtype=self.dtype(name))
        out = np.empty(stop - start, dtype=self.dtype(name))
        first = int(np.searchsorted(self._starts, start, side="right")) - 1
        cursor = start
        for index in range(first, len(self._segments)):
            if cursor >= stop:
                break
            segment = self._segments[index]
            seg_start = int(self._starts[index])
            lo = cursor - seg_start
            hi = min(stop - seg_start, segment.rows)
            mapped = self._open(segment, name)
            piece = mapped[lo:hi]
            out[cursor - start : cursor - start + (hi - lo)] = piece
            self._cache.charge(segment.files[name], mapped, piece.nbytes)
            cursor = seg_start + hi
        return out

    def take(self, name: str, rows: np.ndarray) -> np.ndarray:
        self._check_column(name)
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty(rows.shape[0], dtype=self.dtype(name))
        if rows.size == 0:
            return out
        # One pass per overlapping segment: gather that segment's hits with
        # one fancy index, charge the mapping, move on.  Peak resident pages
        # per gather are bounded by one segment.
        seg_of_row = np.searchsorted(self._starts, rows, side="right") - 1
        for index in np.unique(seg_of_row):
            segment = self._segments[int(index)]
            mask = seg_of_row == index
            local = rows[mask] - int(self._starts[int(index)])
            mapped = self._open(segment, name)
            gathered = mapped[local]
            out[mask] = gathered
            self._cache.charge(
                segment.files[name], mapped, int(mask.sum()) * out.itemsize
            )
        return out

    @property
    def nbytes(self) -> int:
        return int(
            sum(
                segment.rows * self.dtype(name).itemsize
                for segment in self._segments
                for name in self._names
            )
        )

    def column_stats(self, name: str) -> tuple[float, float] | None:
        self._check_column(name)
        los: list[float] = []
        his: list[float] = []
        for segment in self._segments:
            stat = segment.stats.get(name)
            if stat is None:
                return None
            los.append(float(stat[0]))
            his.append(float(stat[1]))
        if not los:
            return None
        return min(los), max(his)

    def release(self) -> None:
        """Drop resident pages of every open mapping."""
        self._cache.release()

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def with_appended(self, other: "ColumnStore | MmapColumnStore") -> "MmapColumnStore":
        """Return a store extending this one with another store's segments.

        ``other`` must be mmap-backed with the same columns (spill it first
        via :meth:`write`); no data is moved — the result simply references
        both segment chains, which is what makes a delta append O(delta)
        I/O instead of O(base + delta).
        """
        if not isinstance(other, MmapColumnStore):
            raise SchemaError(
                "with_appended expects an mmap-backed store; spill the delta first"
            )
        if other.column_names != self.column_names:
            raise SchemaError(
                f"appended store has columns {other.column_names}, "
                f"expected {self.column_names}"
            )
        return MmapColumnStore(
            list(self._segments) + list(other._segments),
            directory=self.directory,
            recycle_bytes=self._cache.recycle_bytes,
        )

    def compacted(
        self,
        directory: str | None = None,
        *,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "MmapColumnStore":
        """Rewrite the segment chain into evenly sized segments on disk.

        The rewrite streams block-by-block (never more than one block in
        memory), so compacting a 10x-RAM relation is pure bounded I/O.  The
        old segment files are left in place — live readers may still map
        them; the owner decides when to retire them (see
        :meth:`RelationCatalog.cleanup <repro.service.catalog.RelationCatalog.cleanup>`).
        """
        target = directory or self.directory
        if target is None:
            raise SchemaError("compacted() needs a directory for the new segments")
        fresh = os.path.join(target, f"compact-{uuid.uuid4().hex[:8]}")
        return MmapColumnStore.from_store(
            self, fresh, block_bytes=block_bytes, segment_bytes=segment_bytes
        )

    def file_paths(self) -> list[str]:
        """Return every segment file backing this store."""
        return [segment.files[name] for segment in self._segments for name in self._names]

    def __reduce__(self):
        return (MmapColumnStore.from_spec, (self.spec(),))


class _SegmentWriter:
    """Accumulates chunk mappings into bounded ``.npy`` segments.

    Segments are **crash-safe**: every column file is written to a
    ``*.tmp`` sibling, flushed and fsynced, then atomically renamed into
    place — a crash at any point leaves either a complete, durable segment
    or an orphaned tmp file that startup recovery
    (:func:`recover_spill_dir`) sweeps.  The payload CRC32 of each column is
    recorded on the :class:`Segment` for later deep verification.
    """

    def __init__(self, directory: str, segment_bytes: int) -> None:
        self.directory = directory
        self.segment_bytes = max(1, int(segment_bytes))
        self.segments: list[Segment] = []
        self._open_files: dict[str, object] = {}
        self._open_paths: dict[str, str] = {}
        self._open_rows = 0
        self._open_bytes = 0
        self._open_stats: dict[str, tuple[float, float]] = {}
        self._open_crc: dict[str, int] = {}
        self._names: tuple[str, ...] | None = None
        self._dtypes: dict[str, np.dtype] = {}

    def append(self, chunk: Mapping[str, np.ndarray]) -> None:
        names = tuple(chunk)
        if self._names is None:
            self._names = names
            self._dtypes = {n: np.asarray(chunk[n]).dtype for n in names}
        elif names != self._names:
            raise SchemaError(
                f"chunk columns {names} do not match first chunk {self._names}"
            )
        rows = {int(np.asarray(v).shape[0]) for v in chunk.values()}
        if len(rows) != 1:
            raise SchemaError("chunk columns must have equal lengths")
        n = rows.pop()
        if n == 0:
            return
        if not self._open_files:
            self._start_segment()
        for name in self._names:
            values = np.ascontiguousarray(chunk[name])
            if values.dtype != self._dtypes[name]:
                values = values.astype(self._dtypes[name])
            payload = values.tobytes()
            self._open_files[name].write(payload)
            self._open_crc[name] = zlib.crc32(payload, self._open_crc.get(name, 0))
            stat = self._open_stats.get(name)
            if np.issubdtype(values.dtype, np.number) and values.size:
                lo, hi = float(values.min()), float(values.max())
                self._open_stats[name] = (
                    (lo, hi) if stat is None else (min(stat[0], lo), max(stat[1], hi))
                )
            self._open_bytes += values.nbytes
        self._open_rows += n
        if self._open_bytes >= self.segment_bytes * len(self._names):
            self._close_segment()

    def _start_segment(self) -> None:
        index = len(self.segments)
        self._open_paths = {}
        self._open_files = {}
        self._open_stats = {}
        self._open_crc = {}
        self._open_rows = 0
        self._open_bytes = 0
        for name in self._names or ():
            path = os.path.join(self.directory, f"seg{index:05d}__{name}.npy")
            # In-flight data lives under the tmp name; the finished segment
            # is fsynced and renamed into place, so ``path`` either holds a
            # complete segment or nothing.
            handle = open(path + TMP_SUFFIX, "wb")
            # Placeholder header; rewritten with the true shape on close.
            np.lib.format.write_array_header_2_0(
                handle,
                {"descr": np.lib.format.dtype_to_descr(self._dtypes[name]),
                 "fortran_order": False, "shape": (0,)},
            )
            self._header_len = handle.tell()
            self._open_paths[name] = path
            self._open_files[name] = handle

    def _close_segment(self) -> None:
        if not self._open_files or self._open_rows == 0:
            for name, handle in self._open_files.items():
                handle.close()
                try:
                    os.unlink(self._open_paths[name] + TMP_SUFFIX)
                except OSError:  # pragma: no cover - nothing was written
                    pass
            self._open_files = {}
            return
        for name, handle in self._open_files.items():
            handle.seek(0)
            np.lib.format.write_array_header_2_0(
                handle,
                {"descr": np.lib.format.dtype_to_descr(self._dtypes[name]),
                 "fortran_order": False, "shape": (self._open_rows,)},
            )
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()
            os.rename(self._open_paths[name] + TMP_SUFFIX, self._open_paths[name])
        self.segments.append(
            Segment(
                rows=self._open_rows,
                files=dict(self._open_paths),
                stats=dict(self._open_stats),
                checksums=dict(self._open_crc),
            )
        )
        self._inject_torn_segment()
        self._open_files = {}

    def _inject_torn_segment(self) -> None:
        """Chaos hook: truncate a just-finished segment file when a
        ``spill_torn`` fault fires, simulating a torn write that slipped
        past the crash window.  The read path must turn this into
        :class:`~repro.exceptions.CorruptSegmentError`, never wrong data."""
        injector = faults.active()
        if injector is None or not injector.fire(
            "spill_torn", self.directory, len(self.segments)
        ):
            return
        path = next(iter(self._open_paths.values()))
        size = os.path.getsize(path)
        os.truncate(path, max(1, size - 16))

    def finish(self) -> list[Segment]:
        self._close_segment()
        if not self.segments:
            raise SchemaError("cannot build an mmap store from zero rows")
        return self.segments


class SpillArena:
    """Scratch-file allocator for the streaming execution layer.

    Owns one directory; hands out append-only array writers whose contents
    re-open as read-only memory maps.  ``cleanup()`` removes everything —
    arenas are per-join scratch, not durable storage.
    """

    def __init__(self, directory: str | None = None) -> None:
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-spill-")
            self._owned = True
        else:
            os.makedirs(directory, exist_ok=True)
            self._owned = False
        self.directory = directory
        self._counter = 0
        self._lock = threading.Lock()

    @classmethod
    def scratch(cls, root: str | None = None, prefix: str = "repro-spill-") -> "SpillArena":
        """Return an owned (cleaned-up) arena in a fresh directory under ``root``.

        Unlike passing ``directory=`` (which adopts an existing directory
        without deleting it), the arena creates — and on cleanup removes — a
        unique subdirectory, so concurrent joins sharing one spill root
        never collide.
        """
        if root is not None:
            os.makedirs(root, exist_ok=True)
        arena = cls(tempfile.mkdtemp(prefix=prefix, dir=root))
        arena._owned = True
        return arena

    def new_path(self, prefix: str = "scratch", suffix: str = ".bin") -> str:
        with self._lock:
            self._counter += 1
            return os.path.join(self.directory, f"{prefix}-{self._counter:05d}{suffix}")

    def writer(self, dtype, prefix: str = "scratch") -> "SpillWriter":
        """Return an append-only writer for one flat array."""
        return SpillWriter(self.new_path(prefix), np.dtype(dtype))

    def empty(self, dtype, rows: int, prefix: str = "scratch") -> np.memmap:
        """Allocate a writable scratch memmap of ``rows`` elements."""
        path = self.new_path(prefix, suffix=".npy")
        return np.lib.format.open_memmap(
            path, mode="w+", dtype=np.dtype(dtype), shape=(int(rows),)
        )

    def empty_matrix(self, dtype, rows: int, cols: int, prefix: str = "scratch") -> np.memmap:
        """Allocate a writable 2-D scratch memmap."""
        path = self.new_path(prefix, suffix=".npy")
        return np.lib.format.open_memmap(
            path, mode="w+", dtype=np.dtype(dtype), shape=(int(rows), int(cols))
        )

    def cleanup(self) -> None:
        """Delete the arena directory (only if this arena created it)."""
        if self._owned:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "SpillArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()


class SpillWriter:
    """Append-only flat-array writer backing a :class:`SpillArena` file."""

    def __init__(self, path: str, dtype: np.dtype) -> None:
        self.path = path
        self.dtype = dtype
        self.rows = 0
        self._handle = open(path, "wb")

    def append(self, values: np.ndarray) -> None:
        values = np.ascontiguousarray(values, dtype=self.dtype)
        if values.size:
            self._handle.write(values.tobytes())
            self.rows += int(values.size)

    def finish(self) -> np.ndarray:
        """Close the file and return its contents as a read-only memmap."""
        self._handle.close()
        if self.rows == 0:
            return np.empty(0, dtype=self.dtype)
        return np.memmap(self.path, dtype=self.dtype, mode="r", shape=(self.rows,))
