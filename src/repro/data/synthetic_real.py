"""Synthetic stand-ins for the paper's real datasets.

The paper evaluates on three real datasets that are not redistributable here:

* **ebird** — 508M bird sightings with time, latitude, longitude plus 1655
  observation-site features,
* **cloud** — 382M synoptic cloud/weather reports with time, latitude,
  longitude plus 25 weather attributes,
* **ptf_objects** — 1.2B Palomar Transient Factory celestial objects with
  right ascension and declination.

What matters for the band-join partitioning experiments is the *shape* of
these datasets in join-attribute space: strong spatial clustering (cities,
observation hot spots, the galactic plane), seasonal/temporal banding, and a
partial (but not perfect) correlation between the hot spots of the two
joined inputs.  The generators below synthesise data with exactly those
properties so the same experiments can run end-to-end; the substitution is
documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import clustered_relation
from repro.data.relation import Relation
from repro.exceptions import WorkloadError

#: Join attributes used by the ebird/cloud experiments in the paper.
SPATIOTEMPORAL_ATTRIBUTES: tuple[str, str, str] = ("time", "latitude", "longitude")

#: Join attributes used by the PTF experiments in the paper.
SKY_ATTRIBUTES: tuple[str, str] = ("ra", "dec")


def _hotspot_centers(
    n_hotspots: int, rng: np.random.Generator, time_span: float
) -> np.ndarray:
    """Draw observation hot spots: (time, latitude, longitude) cluster centers.

    Latitude hot spots are biased toward the northern mid-latitudes and
    longitudes toward a few "continental" bands, loosely mirroring where
    birders and weather stations actually are; times are spread over the span
    with a mild seasonal preference.
    """
    times = rng.uniform(0.0, time_span, n_hotspots)
    latitudes = np.clip(rng.normal(40.0, 12.0, n_hotspots), -60.0, 75.0)
    lon_bands = rng.choice([-100.0, -75.0, 5.0, 25.0, 115.0], size=n_hotspots)
    longitudes = np.clip(lon_bands + rng.normal(0.0, 15.0, n_hotspots), -180.0, 180.0)
    return np.column_stack([times, latitudes, longitudes])


def ebird_like(
    n_rows: int,
    seed: int = 0,
    n_hotspots: int = 40,
    time_span: float = 3650.0,
    n_features: int = 4,
) -> Relation:
    """Generate a bird-observation-like relation.

    Columns: ``time`` (days), ``latitude``, ``longitude`` (degrees),
    ``species`` (integer code), ``count`` and ``n_features`` site features.
    Sightings cluster around observation hot spots with per-hotspot spreads of
    a few degrees / a few weeks.
    """
    if n_rows < 0:
        raise WorkloadError("n_rows must be non-negative")
    rng = np.random.default_rng(seed)
    centers = _hotspot_centers(n_hotspots, rng, time_span)
    weights = rng.pareto(1.2, n_hotspots) + 0.1
    base = clustered_relation(
        "ebird",
        n_rows,
        centers=centers,
        spreads=rng.uniform(1.0, 6.0, n_hotspots),
        weights=weights,
        seed=rng,
        attribute_names=list(SPATIOTEMPORAL_ATTRIBUTES),
    )
    columns = base.to_dict()
    columns["time"] = np.clip(columns["time"], 0.0, time_span)
    columns["latitude"] = np.clip(columns["latitude"], -90.0, 90.0)
    columns["longitude"] = np.clip(columns["longitude"], -180.0, 180.0)
    columns["species"] = rng.integers(0, 1655, n_rows).astype(float)
    columns["count"] = rng.poisson(3.0, n_rows).astype(float) + 1.0
    for k in range(n_features):
        columns[f"site_feature_{k + 1}"] = rng.random(n_rows)
    return Relation("ebird", columns)


def cloud_reports_like(
    n_rows: int,
    seed: int = 1,
    n_hotspots: int = 60,
    time_span: float = 3650.0,
    n_weather_attrs: int = 4,
    hotspot_overlap: float = 0.6,
) -> Relation:
    """Generate a weather-report-like relation.

    A fraction ``hotspot_overlap`` of its spatial hot spots coincides with
    the ebird-like generator's hot-spot model (stations near where people
    observe birds), the rest are independent (ocean ships, remote stations).
    Weather reports are also more uniformly spread over time than sightings.
    """
    if n_rows < 0:
        raise WorkloadError("n_rows must be non-negative")
    if not 0.0 <= hotspot_overlap <= 1.0:
        raise WorkloadError("hotspot_overlap must be in [0, 1]")
    rng = np.random.default_rng(seed)
    # Re-create part of the ebird hot-spot set with the ebird seed so the two
    # relations share dense regions (correlated but not identical skew).
    ebird_rng = np.random.default_rng(0)
    shared = _hotspot_centers(n_hotspots, ebird_rng, time_span)
    own = _hotspot_centers(n_hotspots, rng, time_span)
    n_shared = int(round(hotspot_overlap * n_hotspots))
    centers = np.vstack([shared[:n_shared], own[n_shared:]])
    base = clustered_relation(
        "cloud",
        n_rows,
        centers=centers,
        spreads=rng.uniform(2.0, 10.0, n_hotspots),
        weights=rng.pareto(1.5, n_hotspots) + 0.5,
        seed=rng,
        attribute_names=list(SPATIOTEMPORAL_ATTRIBUTES),
    )
    columns = base.to_dict()
    columns["time"] = np.clip(columns["time"], 0.0, time_span)
    columns["latitude"] = np.clip(columns["latitude"], -90.0, 90.0)
    columns["longitude"] = np.clip(columns["longitude"], -180.0, 180.0)
    columns["precipitation"] = np.abs(rng.normal(2.0, 3.0, n_rows))
    columns["temperature"] = rng.normal(12.0, 10.0, n_rows)
    for k in range(max(0, n_weather_attrs - 2)):
        columns[f"weather_attr_{k + 1}"] = rng.random(n_rows)
    return Relation("cloud", columns)


def ptf_objects_like(
    n_rows: int,
    seed: int = 2,
    n_fields: int = 80,
    name: str = "ptf_objects",
) -> Relation:
    """Generate a sky-survey-object-like relation with ``ra`` and ``dec`` columns.

    Objects cluster into telescope "fields" (the survey revisits the same
    pointings), and declination is restricted to the northern sky as for the
    Palomar Transient Factory.  Repeat observations of the same object are
    modelled by drawing several rows per underlying source with arc-second
    scale jitter, which is what makes the paper's self-band-join (band width
    of 1-3 arc seconds) meaningful.
    """
    if n_rows < 0:
        raise WorkloadError("n_rows must be non-negative")
    rng = np.random.default_rng(seed)
    field_ra = rng.uniform(0.0, 360.0, n_fields)
    field_dec = rng.uniform(-20.0, 85.0, n_fields)
    field_weights = rng.pareto(1.0, n_fields) + 0.2
    field_weights = field_weights / field_weights.sum()

    # Underlying sources: ~1 source per 4 observations, placed inside fields.
    n_sources = max(1, n_rows // 4)
    source_fields = rng.choice(n_fields, size=n_sources, p=field_weights)
    source_ra = field_ra[source_fields] + rng.normal(0.0, 1.5, n_sources)
    source_dec = field_dec[source_fields] + rng.normal(0.0, 1.5, n_sources)

    observation_sources = rng.integers(0, n_sources, n_rows)
    jitter_scale = 2.78e-4  # about one arc second in degrees
    ra = np.mod(source_ra[observation_sources] + rng.normal(0.0, jitter_scale, n_rows), 360.0)
    dec = np.clip(source_dec[observation_sources] + rng.normal(0.0, jitter_scale, n_rows), -30.0, 90.0)
    columns = {
        "ra": ra,
        "dec": dec,
        "magnitude": rng.normal(19.0, 1.5, n_rows),
        "mjd": rng.uniform(54000.0, 56500.0, n_rows),
    }
    return Relation(name, columns)


def ebird_cloud_pair(
    n_rows_each: int, seed: int = 0
) -> tuple[Relation, Relation]:
    """Return a correlated (ebird-like, cloud-like) relation pair of equal size."""
    return (
        ebird_like(n_rows_each, seed=seed),
        cloud_reports_like(n_rows_each, seed=seed + 1),
    )
