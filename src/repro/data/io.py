"""Relation persistence.

Simple, dependency-free persistence for :class:`~repro.data.relation.Relation`
objects so that generated workloads can be cached on disk between benchmark
runs: ``.npz`` for compact binary storage and ``.csv`` for interoperability.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.relation import Relation
from repro.exceptions import SchemaError


def save_npz(relation: Relation, path: str | Path) -> Path:
    """Save a relation to a compressed ``.npz`` archive and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, __name__=np.array([relation.name]), **relation.to_dict())
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def load_npz(path: str | Path) -> Relation:
    """Load a relation previously saved by :func:`save_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        keys = [k for k in archive.files if k != "__name__"]
        if not keys:
            raise SchemaError(f"archive {path} contains no columns")
        name = str(archive["__name__"][0]) if "__name__" in archive.files else path.stem
        columns = {k: archive[k] for k in keys}
    return Relation(name, columns)


def save_csv(relation: Relation, path: str | Path) -> Path:
    """Save a relation to CSV (header row of column names, then data rows)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = relation.column_names
    columns = [relation.column(c) for c in names]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in zip(*columns):
            writer.writerow(row)
    return path


def load_csv(path: str | Path, name: str | None = None) -> Relation:
    """Load a relation from a CSV file written by :func:`save_csv`.

    All columns are parsed as floats; non-numeric CSVs are out of scope for
    this library.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty") from None
        rows = [row for row in reader if row]
    if not header:
        raise SchemaError(f"CSV file {path} has no header")
    data = np.array(rows, dtype=float) if rows else np.empty((0, len(header)))
    return Relation.from_rows(name or path.stem, data, header)
