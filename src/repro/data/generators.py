"""Synthetic data generators.

The paper's synthetic workloads are built from Pareto-distributed join
attributes (Section 6.1):

* ``pareto-z`` — every join attribute of both inputs follows a Pareto
  distribution with PDF ``z / x^(z+1)`` on ``[1, inf)``; high-frequency
  values of S are also high-frequency values of T.
* ``rv-pareto-z`` ("reverse" Pareto) — S follows the same distribution while
  T is mirrored (``10^6 - y``), so dense regions of S are sparse regions of
  T and vice versa.

These generators reproduce those distributions (at laptop-scale
cardinalities) plus a few extra shapes (uniform, normal, Zipf-like discrete,
Gaussian clusters) used by tests and the extension experiments.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.relation import Relation
from repro.exceptions import WorkloadError

#: Mirror constant used by the paper for reverse-Pareto data: T-values are
#: generated as ``REVERSE_PARETO_OFFSET - y`` with ``y ~ Pareto(z)``.
REVERSE_PARETO_OFFSET: float = 1.0e6


def _check_size(n_rows: int) -> None:
    if n_rows < 0:
        raise WorkloadError(f"number of rows must be non-negative, got {n_rows}")


def _attribute_names(dimensions: int) -> list[str]:
    return [f"A{i + 1}" for i in range(dimensions)]


def pareto_values(n: int, z: float, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` values from the Pareto distribution with shape ``z`` on ``[1, inf)``.

    Uses inverse-transform sampling: if ``U ~ Uniform(0, 1)`` then
    ``X = (1 - U)^(-1/z)`` has PDF ``z / x^(z+1)`` on ``[1, inf)``.
    """
    if z <= 0:
        raise WorkloadError(f"Pareto shape parameter must be positive, got {z}")
    u = rng.random(n)
    return np.power(1.0 - u, -1.0 / z)


def pareto_relation(
    name: str,
    n_rows: int,
    dimensions: int = 1,
    z: float = 1.5,
    seed: int | np.random.Generator = 0,
    extra_columns: int = 0,
    decimals: int | None = None,
) -> Relation:
    """Generate a ``pareto-z`` relation with ``dimensions`` join attributes.

    Parameters
    ----------
    name:
        Relation name.
    n_rows:
        Number of tuples.
    dimensions:
        Number of join attributes ``A1 .. Ad`` (each independently Pareto).
    z:
        Pareto shape (skew) parameter; larger means more skew near 1.
    seed:
        Integer seed or an existing :class:`numpy.random.Generator`.
    extra_columns:
        Number of additional non-join payload columns ``P1 .. Pk`` to attach
        (uniform noise), mimicking the wide real tables of the paper.
    decimals:
        Optionally round join-attribute values to this many decimal digits.
        Rounding creates repeated values (heavy hitters near 1), which is
        what makes the paper's band-width-zero (equi-join) workloads produce
        non-empty output.
    """
    _check_size(n_rows)
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    columns: dict[str, np.ndarray] = {}
    for attr in _attribute_names(dimensions):
        values = pareto_values(n_rows, z, rng)
        columns[attr] = np.round(values, decimals) if decimals is not None else values
    for k in range(extra_columns):
        columns[f"P{k + 1}"] = rng.random(n_rows)
    return Relation(name, columns)


def reverse_pareto_relation(
    name: str,
    n_rows: int,
    dimensions: int = 1,
    z: float = 1.5,
    seed: int | np.random.Generator = 0,
    offset: float = REVERSE_PARETO_OFFSET,
    extra_columns: int = 0,
) -> Relation:
    """Generate the mirrored T-side of an ``rv-pareto-z`` pair.

    Values are ``offset - y`` with ``y ~ Pareto(z)``, so the distribution is
    skewed toward ``offset`` (large values) and sparse toward ``-inf`` —
    exactly anti-correlated with :func:`pareto_relation` output.
    """
    _check_size(n_rows)
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    columns: dict[str, np.ndarray] = {}
    for attr in _attribute_names(dimensions):
        columns[attr] = offset - pareto_values(n_rows, z, rng)
    for k in range(extra_columns):
        columns[f"P{k + 1}"] = rng.random(n_rows)
    return Relation(name, columns)


def uniform_relation(
    name: str,
    n_rows: int,
    dimensions: int = 1,
    low: float = 0.0,
    high: float = 1.0,
    seed: int | np.random.Generator = 0,
) -> Relation:
    """Generate a relation with independent uniform join attributes on ``[low, high)``."""
    _check_size(n_rows)
    if not low < high:
        raise WorkloadError(f"uniform range [{low}, {high}) is empty")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    columns = {attr: rng.uniform(low, high, n_rows) for attr in _attribute_names(dimensions)}
    return Relation(name, columns)


def normal_relation(
    name: str,
    n_rows: int,
    dimensions: int = 1,
    mean: float = 0.0,
    std: float = 1.0,
    seed: int | np.random.Generator = 0,
) -> Relation:
    """Generate a relation with independent normal join attributes."""
    _check_size(n_rows)
    if std <= 0:
        raise WorkloadError(f"standard deviation must be positive, got {std}")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    columns = {attr: rng.normal(mean, std, n_rows) for attr in _attribute_names(dimensions)}
    return Relation(name, columns)


def zipf_relation(
    name: str,
    n_rows: int,
    dimensions: int = 1,
    n_distinct: int = 1000,
    exponent: float = 1.2,
    seed: int | np.random.Generator = 0,
) -> Relation:
    """Generate a relation whose join attributes take ``n_distinct`` integer values
    with Zipf-like frequencies (heavy hitters), useful for equi-join-style skew tests."""
    _check_size(n_rows)
    if n_distinct < 1:
        raise WorkloadError("n_distinct must be at least 1")
    if exponent <= 0:
        raise WorkloadError("Zipf exponent must be positive")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    ranks = np.arange(1, n_distinct + 1, dtype=float)
    probs = ranks ** (-exponent)
    probs /= probs.sum()
    columns = {
        attr: rng.choice(n_distinct, size=n_rows, p=probs).astype(float)
        for attr in _attribute_names(dimensions)
    }
    return Relation(name, columns)


def clustered_relation(
    name: str,
    n_rows: int,
    centers: Sequence[Sequence[float]],
    spreads: Sequence[float] | float,
    weights: Sequence[float] | None = None,
    seed: int | np.random.Generator = 0,
    attribute_names: Sequence[str] | None = None,
) -> Relation:
    """Generate a Gaussian-mixture relation (clustered hot spots).

    Parameters
    ----------
    centers:
        Sequence of cluster centers, each a length-``d`` sequence.
    spreads:
        Per-cluster standard deviation (scalar applied to all clusters, or
        one value per cluster).
    weights:
        Relative cluster weights; uniform when omitted.
    attribute_names:
        Join-attribute names; defaults to ``A1 .. Ad``.
    """
    _check_size(n_rows)
    centers_arr = np.atleast_2d(np.asarray(centers, dtype=float))
    n_clusters, d = centers_arr.shape
    if n_clusters == 0:
        raise WorkloadError("clustered_relation needs at least one cluster center")
    if isinstance(spreads, (int, float)):
        spreads_arr = np.full(n_clusters, float(spreads))
    else:
        spreads_arr = np.asarray(spreads, dtype=float)
        if spreads_arr.shape != (n_clusters,):
            raise WorkloadError("spreads must be a scalar or have one entry per cluster")
    if np.any(spreads_arr <= 0):
        raise WorkloadError("cluster spreads must be positive")
    if weights is None:
        weights_arr = np.full(n_clusters, 1.0 / n_clusters)
    else:
        weights_arr = np.asarray(weights, dtype=float)
        if weights_arr.shape != (n_clusters,) or np.any(weights_arr < 0) or weights_arr.sum() == 0:
            raise WorkloadError("weights must be non-negative with a positive sum")
        weights_arr = weights_arr / weights_arr.sum()
    names = list(attribute_names) if attribute_names is not None else _attribute_names(d)
    if len(names) != d:
        raise WorkloadError("attribute_names must have one entry per dimension")

    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    assignments = rng.choice(n_clusters, size=n_rows, p=weights_arr)
    points = centers_arr[assignments] + rng.normal(size=(n_rows, d)) * spreads_arr[assignments][:, None]
    return Relation.from_rows(name, points, names)


def correlated_pair(
    n_rows_s: int,
    n_rows_t: int,
    dimensions: int = 1,
    z: float = 1.5,
    reverse: bool = False,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Convenience constructor for a (S, T) pair of Pareto relations.

    With ``reverse=False`` this is the paper's ``pareto-z`` setting (both
    inputs skewed toward small values, hot spots coincide).  With
    ``reverse=True`` it is ``rv-pareto-z`` (T mirrored, hot spots
    anti-correlated).
    """
    rng = np.random.default_rng(seed)
    s = pareto_relation("S", n_rows_s, dimensions=dimensions, z=z, seed=rng)
    if reverse:
        t = reverse_pareto_relation("T", n_rows_t, dimensions=dimensions, z=z, seed=rng)
    else:
        t = pareto_relation("T", n_rows_t, dimensions=dimensions, z=z, seed=rng)
    return s, t
