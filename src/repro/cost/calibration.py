"""Cost-model calibration from in-process micro-benchmarks.

The paper calibrates its running-time model by running a benchmark of ~100
training queries on the target cluster and fitting the beta coefficients with
linear regression.  The same procedure is reproduced here against the only
"hardware" available — this process — by timing real local band-joins of
varying input and output size and regressing the measured wall-clock times.

The resulting coefficients capture the actual relative cost of shuffling an
input tuple (array copying / partition bookkeeping) versus probing it in the
local join versus producing an output tuple on this machine, which is exactly
the information RecPart's applied termination condition and the Grid*
baseline need.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cost.model import RunningTimeModel
from repro.data.generators import uniform_relation
from repro.exceptions import CostModelError
from repro.geometry.band import BandCondition
from repro.local_join.base import LocalJoinAlgorithm
from repro.local_join.index_nested_loop import IndexNestedLoopJoin


@dataclass
class CalibrationObservation:
    """One training point: partitioning characteristics plus the measured time."""

    total_input: float
    max_input: float
    max_output: float
    seconds: float


@dataclass
class CalibrationResult:
    """Outcome of a calibration run."""

    model: RunningTimeModel
    observations: list[CalibrationObservation] = field(default_factory=list)
    shuffle_cost_per_tuple: float = 0.0

    @property
    def n_observations(self) -> int:
        """Return the number of training observations used."""
        return len(self.observations)

    def mean_relative_error(self) -> float:
        """Return the mean absolute relative error of the fitted model on its training data."""
        if not self.observations:
            return 0.0
        errors = []
        for obs in self.observations:
            if obs.seconds <= 0:
                continue
            predicted = self.model.predict(obs.total_input, obs.max_input, obs.max_output)
            errors.append(abs(predicted - obs.seconds) / obs.seconds)
        return float(np.mean(errors)) if errors else 0.0


def _time_local_join(
    algorithm: LocalJoinAlgorithm,
    n_s: int,
    n_t: int,
    band_width: float,
    rng: np.random.Generator,
    repeats: int = 1,
) -> tuple[float, int]:
    """Time a local band-join of two uniform inputs; returns (seconds, output size)."""
    s = uniform_relation("cal_s", n_s, dimensions=1, low=0.0, high=1.0, seed=rng)
    t = uniform_relation("cal_t", n_t, dimensions=1, low=0.0, high=1.0, seed=rng)
    condition = BandCondition({"A1": band_width})
    s_matrix = s.join_matrix(condition.attributes)
    t_matrix = t.join_matrix(condition.attributes)
    best = np.inf
    output = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        output = algorithm.count(s_matrix, t_matrix, condition)
        best = min(best, time.perf_counter() - start)
    return float(best), int(output)


def calibrate_running_time_model(
    n_queries: int = 24,
    base_input: int = 4000,
    algorithm: LocalJoinAlgorithm | None = None,
    seed: int = 7,
    shuffle_cost_per_tuple: float | None = None,
) -> CalibrationResult:
    """Calibrate a :class:`RunningTimeModel` by timing local band-joins in-process.

    Parameters
    ----------
    n_queries:
        Number of training queries (the paper uses 100; two dozen varied
        sizes are plenty for a 4-coefficient linear model).
    base_input:
        Baseline per-side input size of the training joins; sizes are swept
        between 0.5x and 4x of this value.
    algorithm:
        Local join algorithm to profile (defaults to the paper's
        index-nested-loop join).
    shuffle_cost_per_tuple:
        Per-tuple shuffle cost in seconds.  ``None`` measures a proxy
        (partition-and-copy over a numpy array); pass an explicit value to
        model faster or slower networks (Table 8 explores this knob).

    Returns
    -------
    CalibrationResult with the fitted model and the raw observations.
    """
    if n_queries < 3:
        raise CostModelError("need at least 3 calibration queries")
    if base_input < 10:
        raise CostModelError("base_input is too small to produce meaningful timings")
    algo = algorithm if algorithm is not None else IndexNestedLoopJoin()
    rng = np.random.default_rng(seed)

    if shuffle_cost_per_tuple is None:
        shuffle_cost_per_tuple = _measure_shuffle_cost(base_input * 4, rng)

    observations: list[CalibrationObservation] = []
    size_factors = np.linspace(0.5, 4.0, n_queries)
    for factor in size_factors:
        n_s = max(10, int(base_input * factor))
        n_t = max(10, int(base_input * factor))
        # Vary band width so output/input ratios span selective to heavy joins.
        band_width = float(rng.uniform(0.2, 3.0)) / n_s
        seconds, output = _time_local_join(algo, n_s, n_t, band_width, rng)
        total_input = float(n_s + n_t)
        # The training joins run on a single "worker", so the max worker's
        # input/output equal the totals; the shuffle term is added from the
        # per-tuple shuffle cost.
        observations.append(
            CalibrationObservation(
                total_input=total_input,
                max_input=total_input,
                max_output=float(output),
                seconds=seconds + shuffle_cost_per_tuple * total_input,
            )
        )

    model = RunningTimeModel.fit(
        np.array([o.total_input for o in observations]),
        np.array([o.max_input for o in observations]),
        np.array([o.max_output for o in observations]),
        np.array([o.seconds for o in observations]),
    )
    return CalibrationResult(
        model=model,
        observations=observations,
        shuffle_cost_per_tuple=float(shuffle_cost_per_tuple),
    )


def _measure_shuffle_cost(n_tuples: int, rng: np.random.Generator) -> float:
    """Measure a per-tuple proxy for shuffle cost: hash-partitioning and copying rows."""
    values = rng.random(n_tuples)
    start = time.perf_counter()
    partitions = (values * 16).astype(np.int64)
    order = np.argsort(partitions, kind="stable")
    _ = values[order].copy()
    elapsed = time.perf_counter() - start
    return max(elapsed / n_tuples, 1e-9)
