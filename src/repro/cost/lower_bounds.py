"""Lower bounds on total input and max worker load (paper Lemma 1).

* Total input ``I`` can never be below ``|S| + |T|`` because every input
  tuple must reach at least one worker.
* Max worker load ``L_m`` can never be below
  ``L_0 = (beta2 * (|S| + |T|) + beta3 * |S join T|) / w`` because the total
  input and the total output have to be spread over the ``w`` workers.

The *overhead* measures used throughout the paper's evaluation (and by this
library's metrics and figures) are the relative distances from those bounds:
``(I - (|S|+|T|)) / (|S|+|T|)`` and ``(L_m - L_0) / L_0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LoadWeights
from repro.data.relation import Relation
from repro.exceptions import CostModelError
from repro.geometry.band import BandCondition
from repro.local_join.base import join_pair_count


@dataclass(frozen=True)
class LowerBounds:
    """Lower bounds for one band-join problem instance."""

    total_input: float
    max_worker_load: float
    output_size: float
    workers: int

    def input_overhead(self, total_input: float) -> float:
        """Return the relative input-duplication overhead of a partitioning."""
        if self.total_input <= 0:
            return 0.0
        return (total_input - self.total_input) / self.total_input

    def load_overhead(self, max_worker_load: float) -> float:
        """Return the relative max-worker-load overhead of a partitioning."""
        if self.max_worker_load <= 0:
            return 0.0
        return (max_worker_load - self.max_worker_load) / self.max_worker_load


def compute_lower_bounds(
    s: Relation,
    t: Relation,
    condition: BandCondition,
    workers: int,
    weights: LoadWeights | None = None,
    output_size: float | None = None,
) -> LowerBounds:
    """Compute Lemma 1's lower bounds for a band-join instance.

    ``output_size`` may be passed when the exact join cardinality is already
    known (e.g. computed by the execution engine); otherwise it is computed
    exactly with a local join over the full inputs.
    """
    if workers < 1:
        raise CostModelError("workers must be at least 1")
    weights = weights if weights is not None else LoadWeights()
    total_input = float(len(s) + len(t))
    if output_size is None:
        attrs = condition.attributes
        output_size = float(
            join_pair_count(s.join_matrix(attrs), t.join_matrix(attrs), condition)
        )
    max_worker_load = weights.load(total_input, output_size) / workers
    return LowerBounds(
        total_input=total_input,
        max_worker_load=float(max_worker_load),
        output_size=float(output_size),
        workers=workers,
    )
