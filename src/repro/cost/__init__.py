"""Running-time model, calibration and lower bounds."""

from repro.cost.model import ModelCoefficients, RunningTimeModel, default_running_time_model
from repro.cost.calibration import CalibrationResult, calibrate_running_time_model
from repro.cost.lower_bounds import LowerBounds, compute_lower_bounds

__all__ = [
    "ModelCoefficients",
    "RunningTimeModel",
    "default_running_time_model",
    "CalibrationResult",
    "calibrate_running_time_model",
    "LowerBounds",
    "compute_lower_bounds",
]
