"""The running-time model ``M(I, I_m, O_m)``.

Following Li et al. (Abstract cost models for distributed data-intensive
computations) and the paper's Section 2, the join time of a distributed
band-join is estimated with the piecewise-linear model

    M(I, I_m, O_m) = beta0 + beta1 * I + beta2 * I_m + beta3 * O_m

where ``I`` is the total input shipped through the shuffle (original tuples
plus duplicates), and ``I_m`` / ``O_m`` are the input and output of the most
loaded worker.  ``beta1`` captures the per-tuple shuffle cost, ``beta2`` and
``beta3`` the per-input-tuple and per-output-tuple local join cost.

Coefficients are obtained by linear regression over a benchmark of training
queries (:mod:`repro.cost.calibration`) or set explicitly; the paper's EMR
cluster profile had ``beta2 / beta3`` of roughly 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CostModelError


@dataclass(frozen=True)
class ModelCoefficients:
    """Coefficients of the running-time model (all non-negative)."""

    beta0: float = 0.0
    beta1: float = 1.0
    beta2: float = 4.0
    beta3: float = 1.0

    def __post_init__(self) -> None:
        for name in ("beta0", "beta1", "beta2", "beta3"):
            if getattr(self, name) < 0:
                raise CostModelError(f"{name} must be non-negative")

    @property
    def local_cost_ratio(self) -> float:
        """Return ``beta2 / beta3`` — relative weight of an input vs an output tuple."""
        if self.beta3 == 0:
            return float("inf")
        return self.beta2 / self.beta3

    def as_array(self) -> np.ndarray:
        """Return the coefficients as ``[beta0, beta1, beta2, beta3]``."""
        return np.array([self.beta0, self.beta1, self.beta2, self.beta3], dtype=float)


class RunningTimeModel:
    """Linear join-time estimator ``beta0 + beta1*I + beta2*I_m + beta3*O_m``."""

    def __init__(self, coefficients: ModelCoefficients | None = None) -> None:
        self.coefficients = coefficients if coefficients is not None else ModelCoefficients()

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, total_input: float, max_input: float, max_output: float) -> float:
        """Return the estimated join time for the given partitioning characteristics."""
        if total_input < 0 or max_input < 0 or max_output < 0:
            raise CostModelError("model inputs must be non-negative")
        c = self.coefficients
        return c.beta0 + c.beta1 * total_input + c.beta2 * max_input + c.beta3 * max_output

    def predict_many(
        self, total_input: np.ndarray, max_input: np.ndarray, max_output: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`predict` over parallel arrays."""
        total_input = np.asarray(total_input, dtype=float)
        max_input = np.asarray(max_input, dtype=float)
        max_output = np.asarray(max_output, dtype=float)
        c = self.coefficients
        return c.beta0 + c.beta1 * total_input + c.beta2 * max_input + c.beta3 * max_output

    def local_load(self, max_input: float, max_output: float) -> float:
        """Return only the local-processing component ``beta2*I_m + beta3*O_m``."""
        c = self.coefficients
        return c.beta2 * max_input + c.beta3 * max_output

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    @classmethod
    def fit(
        cls,
        total_inputs: np.ndarray,
        max_inputs: np.ndarray,
        max_outputs: np.ndarray,
        observed_times: np.ndarray,
        fit_intercept: bool = True,
    ) -> "RunningTimeModel":
        """Fit coefficients with non-negative least squares over training observations.

        Ordinary least squares can produce negative coefficients on small or
        collinear training sets, which would make the model non-monotonic in
        load; scipy's NNLS keeps every coefficient physically meaningful.
        """
        from scipy.optimize import nnls

        total_inputs = np.asarray(total_inputs, dtype=float)
        max_inputs = np.asarray(max_inputs, dtype=float)
        max_outputs = np.asarray(max_outputs, dtype=float)
        observed_times = np.asarray(observed_times, dtype=float)
        n = observed_times.shape[0]
        if n < 3:
            raise CostModelError("need at least 3 training observations to fit the model")
        if not (total_inputs.shape[0] == max_inputs.shape[0] == max_outputs.shape[0] == n):
            raise CostModelError("training arrays must have the same length")
        if np.any(observed_times < 0):
            raise CostModelError("observed times must be non-negative")

        columns = [total_inputs, max_inputs, max_outputs]
        if fit_intercept:
            design = np.column_stack([np.ones(n)] + columns)
        else:
            design = np.column_stack(columns)
        solution, _ = nnls(design, observed_times)
        if fit_intercept:
            beta0, beta1, beta2, beta3 = solution
        else:
            beta0 = 0.0
            beta1, beta2, beta3 = solution
        return cls(ModelCoefficients(float(beta0), float(beta1), float(beta2), float(beta3)))

    def relative_error(self, predicted: float, actual: float) -> float:
        """Return the signed relative error ``(predicted - actual) / actual``."""
        if actual <= 0:
            raise CostModelError("actual time must be positive to compute a relative error")
        return (predicted - actual) / actual

    def __repr__(self) -> str:
        c = self.coefficients
        return (
            f"RunningTimeModel(beta0={c.beta0:.4g}, beta1={c.beta1:.4g}, "
            f"beta2={c.beta2:.4g}, beta3={c.beta3:.4g})"
        )


def default_running_time_model(beta_ratio: float = 4.0, shuffle_weight: float = 1.0) -> RunningTimeModel:
    """Return an uncalibrated model with the paper's cluster-profile shape.

    ``beta_ratio`` is the input/output local-cost ratio (the paper measured
    about 4 on EMR); ``shuffle_weight`` is the weight of total input relative
    to the per-output-tuple local cost.
    """
    if beta_ratio < 0 or shuffle_weight < 0:
        raise CostModelError("beta_ratio and shuffle_weight must be non-negative")
    return RunningTimeModel(
        ModelCoefficients(beta0=0.0, beta1=shuffle_weight, beta2=beta_ratio, beta3=1.0)
    )
