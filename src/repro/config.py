"""Global defaults used across the library.

Every default here can be overridden per call; the constants only centralize
the values so that tests, benchmarks and examples agree on a baseline
configuration.  The values mirror the paper's setup where possible
(``DEFAULT_BETA_RATIO`` = 4 matches the beta2/beta3 ratio profiled on the
paper's EMR cluster) and otherwise pick laptop-scale equivalents
(``DEFAULT_WORKERS`` = 8 instead of the paper's 30 EMR nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default number of simulated workers (the paper uses 15/30/60 EMR nodes).
DEFAULT_WORKERS: int = 8

#: Default combined sample size ``k`` (input sample + output sample) used by
#: the optimization phase.  The paper samples 100,000 input records from
#: 400M and sizes the output sample so statistics time stays below 5% of join
#: time; for the scaled-down inputs used here a sample of 8192 keeps the
#: per-leaf estimates accurate while optimization still takes well under a
#: second.
DEFAULT_SAMPLE_SIZE: int = 8192

#: Default per-input-tuple load weight (beta2 in the paper's load model).
DEFAULT_BETA_INPUT: float = 4.0

#: Default per-output-tuple load weight (beta3 in the paper's load model).
DEFAULT_BETA_OUTPUT: float = 1.0

#: beta2 / beta3 ratio profiled on the paper's cluster.
DEFAULT_BETA_RATIO: float = DEFAULT_BETA_INPUT / DEFAULT_BETA_OUTPUT

#: Default random seed so that every experiment is reproducible end-to-end.
DEFAULT_SEED: int = 20200413  # arXiv submission date of the paper.

#: Window size multiplier for the applied (cost-model) termination condition:
#: the paper uses a window of the last ``w`` repeat-loop iterations.
TERMINATION_WINDOW_PER_WORKER: int = 1

#: Relative improvement threshold for the applied termination condition.
TERMINATION_IMPROVEMENT_THRESHOLD: float = 0.01

#: A leaf is "small" in a dimension once its extent drops below this multiple
#: of the band width in that dimension (the paper uses twice the band width).
SMALL_PARTITION_FACTOR: float = 2.0

#: Safety cap on RecPart repeat-loop iterations (a small multiple of ``w`` is
#: expected; the cap only guards against pathological configurations).
MAX_ITERATIONS_PER_WORKER: int = 64

#: Execution modes accepted everywhere an engine choice is taken:
#: ``"simulated"`` is the legacy in-driver sequential path with per-worker
#: accounting; the rest are real :mod:`repro.engine` backends.
ENGINE_BACKENDS: tuple[str, ...] = ("simulated", "serial", "threads", "processes")

#: Default execution mode (the simulated path keeps every existing
#: experiment bit-for-bit reproducible).
DEFAULT_ENGINE_BACKEND: str = "simulated"

#: Local-join kernel names accepted wherever an algorithm choice is taken
#: (must match the registry in :mod:`repro.local_join`).
LOCAL_ALGORITHM_NAMES: tuple[str, ...] = (
    "index-nested-loop",
    "sort-sweep",
    "iejoin-local",
    "nested-loop",
    "auto",
)

#: Default local-join kernel (the paper's choice).
DEFAULT_LOCAL_ALGORITHM: str = "index-nested-loop"

#: Default machine-wide byte budget for the local-join kernels' transient
#: candidate buffers.  Pool-based backends divide it by the pool size so
#: concurrently running kernels do not over-allocate in aggregate.
DEFAULT_KERNEL_MEMORY_BUDGET: int = 256 * 1024 * 1024

#: Default maximum number of cached partitioning plans.
DEFAULT_PLAN_CACHE_SIZE: int = 32

#: Default maximum number of materialized results cached per prepared query.
DEFAULT_RESULT_CACHE_SIZE: int = 64

#: Default delta-to-base row fraction past which a catalog relation is
#: considered stale and re-partitioning (compaction) is triggered.
DEFAULT_STALENESS_THRESHOLD: float = 0.25

#: Default number of scheduler worker threads serving queries.
DEFAULT_SCHEDULER_WORKERS: int = 4

#: Default admission-control limit on pending (queued + executing) queries.
DEFAULT_MAX_PENDING: int = 128

#: Default maximum number of compatible requests micro-batched onto one
#: engine dispatch.
DEFAULT_MAX_BATCH: int = 8

#: Default capacity of the workload recorder's in-memory event ring.
DEFAULT_CAPTURE_RING: int = 4096

#: Default background cadence (seconds) of the SLO monitor's evaluations.
DEFAULT_SLO_INTERVAL: float = 5.0

#: Default retention bound of the on-disk cost-model calibration spool.
DEFAULT_CALIBRATION_MAX_RECORDS: int = 4096

#: Relation storage backends accepted by the catalog and the service:
#: ``"memory"`` keeps every relation on the heap (the historical behavior);
#: ``"mmap"`` spills large relations to memory-mapped ``.npy`` segments so
#: the catalog can hold data bigger than RAM.
STORAGE_BACKENDS: tuple[str, ...] = ("memory", "mmap")

#: Default relation storage backend.
DEFAULT_STORAGE_BACKEND: str = "memory"

#: Default relation byte size past which ``--storage mmap`` spills a
#: registered relation to disk segments (smaller relations stay on the heap
#: — out-of-core machinery only pays off once data is big).
DEFAULT_SPILL_THRESHOLD_BYTES: int = 64 * 1024 * 1024

#: Segment-chain length past which an mmap relation's delta compaction
#: coalesces the chain into evenly sized segments (below it, compaction is a
#: pure O(delta) segment append).
MAX_SEGMENTS_BEFORE_REWRITE: int = 16


@dataclass(frozen=True)
class LoadWeights:
    """Weights of the linear per-worker load model ``L = beta_input * I + beta_output * O``.

    The paper (Section 2) models the load of worker ``i`` as
    ``L_i = beta2 * I_i + beta3 * O_i`` where ``I_i`` is the number of input
    tuples (including duplicates) assigned to the worker and ``O_i`` the
    number of output tuples it produces.
    """

    beta_input: float = DEFAULT_BETA_INPUT
    beta_output: float = DEFAULT_BETA_OUTPUT

    def __post_init__(self) -> None:
        if self.beta_input < 0 or self.beta_output < 0:
            raise ValueError("load weights must be non-negative")
        if self.beta_input == 0 and self.beta_output == 0:
            raise ValueError("at least one load weight must be positive")

    @property
    def ratio(self) -> float:
        """Return ``beta_input / beta_output`` (``inf`` if beta_output is 0)."""
        if self.beta_output == 0:
            return float("inf")
        return self.beta_input / self.beta_output

    def load(self, n_input: float, n_output: float) -> float:
        """Return the load induced by ``n_input`` input and ``n_output`` output tuples."""
        return self.beta_input * n_input + self.beta_output * n_output


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of the parallel execution engine.

    Attributes
    ----------
    backend:
        Execution mode: ``"simulated"`` (legacy in-driver path) or one of
        the real backends ``"serial"``, ``"threads"``, ``"processes"``.
    max_parallelism:
        Pool-size cap for pool-based backends; ``None`` uses every CPU
        available to the process.
    plan_cache_size:
        Maximum number of cached partitioning plans.
    local_algorithm:
        Local-join kernel run inside every worker task (one of
        ``LOCAL_ALGORITHM_NAMES``).
    kernel_memory_budget:
        Machine-wide byte budget of the kernels' transient candidate
        buffers; backends split it across concurrently running tasks.
    spill_dir:
        Root directory of the engine's streaming scratch files for
        out-of-core joins (``None`` uses the system temp dir).
    """

    backend: str = DEFAULT_ENGINE_BACKEND
    max_parallelism: int | None = None
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE
    local_algorithm: str = DEFAULT_LOCAL_ALGORITHM
    kernel_memory_budget: int = DEFAULT_KERNEL_MEMORY_BUDGET
    spill_dir: str | None = None

    def __post_init__(self) -> None:
        if self.backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"backend must be one of {ENGINE_BACKENDS}, got {self.backend!r}"
            )
        if self.max_parallelism is not None and self.max_parallelism < 1:
            raise ValueError("max_parallelism must be positive")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be at least 1")
        if self.local_algorithm not in LOCAL_ALGORITHM_NAMES:
            raise ValueError(
                f"local_algorithm must be one of {LOCAL_ALGORITHM_NAMES}, "
                f"got {self.local_algorithm!r}"
            )
        if self.kernel_memory_budget < 1:
            raise ValueError("kernel_memory_budget must be positive")

    @property
    def is_simulated(self) -> bool:
        """Return ``True`` when the legacy simulated path is selected."""
        return self.backend == "simulated"


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of the online band-join serving layer.

    Attributes
    ----------
    backend:
        Execution backend of the underlying engine (``"simulated"`` maps to
        the ``serial`` reference, as everywhere in :mod:`repro.engine`).
    workers:
        Default partition-worker budget of served queries.
    plan_cache_size / result_cache_size:
        Capacity of the shared plan cache and of each prepared query's
        materialized-result cache.
    staleness_threshold:
        Delta-to-base row fraction past which a relation is compacted
        (deltas merged into the base, plans re-optimized).
    compaction:
        ``"background"`` (compact on a background thread, the serving
        default), ``"sync"`` (compact inside the triggering append — used by
        tests and single-threaded scripts) or ``"off"``.
    scheduler_workers / max_pending / max_batch:
        Query-scheduler thread count, admission-control limit on pending
        queries, and micro-batching fan-in per engine dispatch.
    local_algorithm / kernel_memory_budget:
        Local-join kernel of the underlying engine and the machine-wide
        byte budget of its transient candidate buffers.
    max_estimated_pairs:
        Output-size admission control: a query whose cheap sampled output
        estimate exceeds this is rejected at submit time instead of tying a
        scheduler worker to a runaway dispatch.  ``None`` disables it.
    telemetry:
        Turn the process-wide telemetry switch on when the service starts
        (tracing spans, kernel profiling).  The library default is off;
        serving turns it on because a long-running server is exactly where
        the live stats surface pays for its (small) overhead.
    capture / capture_ring_size / capture_log:
        Workload capture: when ``capture`` is on (the default), a
        :class:`~repro.obs.workload.QueryLogRecorder` records one structured
        event per request into a bounded in-memory ring of
        ``capture_ring_size`` events; ``capture_log`` additionally spools
        every event (including relation data, so the log is replayable) to a
        JSONL file.
    trace_ring_size:
        Capacity of the process-wide finished-trace ring (``None`` keeps the
        current size — the :data:`~repro.obs.tracing.DEFAULT_TRACE_BUFFER`
        default or whatever ``REPRO_TRACE_RING`` selected).
    slo_p99_seconds / slo_error_rate / slo_cache_hit_floor / slo_queue_depth:
        Declarative service-level objectives, each ``None`` (disabled) by
        default: p99 total-latency ceiling in seconds, failed-request
        fraction ceiling, result-cache hit-rate floor, and pending-queue
        depth ceiling.  Breaches are structured events, counted in the
        service registry and surfaced by ``{"op": "health"}``.
    slo_max_estimate_qerror:
        Ceiling on the mean output-cardinality estimate q-error over the
        recent executed-query window — sustained miscalibration of the cost
        model becomes a health breach.  ``None`` disables it.
    slo_interval:
        Background evaluation cadence of the SLO monitor in seconds
        (``0`` evaluates only on demand, i.e. per ``health`` request).
    calibration_log / calibration_max_records:
        Persistent cost-model calibration: when ``calibration_log`` is set,
        every executed query appends one ``(estimate, actual, features)``
        JSON line to that spool (bounded at ``calibration_max_records``
        records), from which ``CalibrationStore.calibrate()`` refits the
        running-time betas.
    storage / spill_dir / spill_threshold_bytes:
        Relation storage: ``storage="mmap"`` spills registered relations of
        at least ``spill_threshold_bytes`` bytes to memory-mapped ``.npy``
        segments under ``spill_dir`` (a temp directory when ``None``), and
        out-of-core joins stream column slices instead of materializing
        matrices — the catalog can then hold data bigger than RAM.
        ``storage="memory"`` (default) keeps the historical all-heap
        behavior.
    inject_faults / fault_seed:
        Deterministic chaos: ``inject_faults`` is a fault spec like
        ``"worker_crash:0.1,task_slow:0.05,spill_torn:1"`` (see
        :func:`repro.faults.parse_fault_spec`), installed process-wide when
        the service starts; ``fault_seed`` makes firing decisions
        replayable.  ``None`` (default) injects nothing.
    degraded_mode:
        Overload behavior: ``"stale"`` (default) answers an overloaded
        request from a version-stale cached result — explicitly marked —
        when one exists; ``"reject"`` always raises
        :class:`~repro.exceptions.ServiceOverloadError`.
    default_deadline_seconds:
        End-to-end deadline applied to every query that does not pass its
        own (``None`` = unbounded): expired-in-queue requests fail fast and
        the remaining budget bounds execution waits.
    shutdown_drain_seconds:
        Graceful-shutdown budget: how long ``close()`` lets in-flight
        requests finish before failing the remainder.
    """

    backend: str = "threads"
    workers: int = DEFAULT_WORKERS
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE
    result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE
    staleness_threshold: float = DEFAULT_STALENESS_THRESHOLD
    compaction: str = "background"
    scheduler_workers: int = DEFAULT_SCHEDULER_WORKERS
    max_pending: int = DEFAULT_MAX_PENDING
    max_batch: int = DEFAULT_MAX_BATCH
    local_algorithm: str = DEFAULT_LOCAL_ALGORITHM
    kernel_memory_budget: int = DEFAULT_KERNEL_MEMORY_BUDGET
    max_estimated_pairs: int | None = None
    telemetry: bool = True
    capture: bool = True
    capture_ring_size: int = DEFAULT_CAPTURE_RING
    capture_log: str | None = None
    trace_ring_size: int | None = None
    slo_p99_seconds: float | None = None
    slo_error_rate: float | None = None
    slo_cache_hit_floor: float | None = None
    slo_queue_depth: int | None = None
    slo_max_estimate_qerror: float | None = None
    slo_interval: float = DEFAULT_SLO_INTERVAL
    calibration_log: str | None = None
    calibration_max_records: int = DEFAULT_CALIBRATION_MAX_RECORDS
    storage: str = DEFAULT_STORAGE_BACKEND
    spill_dir: str | None = None
    spill_threshold_bytes: int = DEFAULT_SPILL_THRESHOLD_BYTES
    inject_faults: str | None = None
    fault_seed: int = DEFAULT_SEED
    degraded_mode: str = "stale"
    default_deadline_seconds: float | None = None
    shutdown_drain_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.backend not in ENGINE_BACKENDS:
            raise ValueError(f"backend must be one of {ENGINE_BACKENDS}, got {self.backend!r}")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.plan_cache_size < 1 or self.result_cache_size < 1:
            raise ValueError("cache sizes must be at least 1")
        if self.staleness_threshold <= 0:
            raise ValueError("staleness_threshold must be positive")
        if self.compaction not in ("background", "sync", "off"):
            raise ValueError("compaction must be 'background', 'sync' or 'off'")
        if self.scheduler_workers < 1:
            raise ValueError("scheduler_workers must be at least 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.local_algorithm not in LOCAL_ALGORITHM_NAMES:
            raise ValueError(
                f"local_algorithm must be one of {LOCAL_ALGORITHM_NAMES}, "
                f"got {self.local_algorithm!r}"
            )
        if self.kernel_memory_budget < 1:
            raise ValueError("kernel_memory_budget must be positive")
        if self.max_estimated_pairs is not None and self.max_estimated_pairs < 1:
            raise ValueError("max_estimated_pairs must be positive when set")
        if self.capture_ring_size < 1:
            raise ValueError("capture_ring_size must be at least 1")
        if self.trace_ring_size is not None and self.trace_ring_size < 1:
            raise ValueError("trace_ring_size must be at least 1 when set")
        if self.slo_p99_seconds is not None and self.slo_p99_seconds <= 0:
            raise ValueError("slo_p99_seconds must be positive when set")
        if self.slo_error_rate is not None and not 0 <= self.slo_error_rate <= 1:
            raise ValueError("slo_error_rate must be within [0, 1] when set")
        if self.slo_cache_hit_floor is not None and not 0 <= self.slo_cache_hit_floor <= 1:
            raise ValueError("slo_cache_hit_floor must be within [0, 1] when set")
        if self.slo_queue_depth is not None and self.slo_queue_depth < 1:
            raise ValueError("slo_queue_depth must be at least 1 when set")
        if self.slo_max_estimate_qerror is not None and self.slo_max_estimate_qerror < 1:
            raise ValueError(
                "slo_max_estimate_qerror must be at least 1 when set "
                "(a q-error of 1 is a perfect estimate)"
            )
        if self.slo_interval < 0:
            raise ValueError("slo_interval must be non-negative")
        if self.calibration_max_records < 1:
            raise ValueError("calibration_max_records must be at least 1")
        if self.storage not in STORAGE_BACKENDS:
            raise ValueError(
                f"storage must be one of {STORAGE_BACKENDS}, got {self.storage!r}"
            )
        if self.spill_threshold_bytes < 1:
            raise ValueError("spill_threshold_bytes must be positive")
        if self.inject_faults is not None:
            from repro.faults import parse_fault_spec

            parse_fault_spec(self.inject_faults)  # validates kinds and rates
        if self.degraded_mode not in ("stale", "reject"):
            raise ValueError(
                f"degraded_mode must be 'stale' or 'reject', got {self.degraded_mode!r}"
            )
        if self.default_deadline_seconds is not None and self.default_deadline_seconds <= 0:
            raise ValueError("default_deadline_seconds must be positive when set")
        if self.shutdown_drain_seconds < 0:
            raise ValueError("shutdown_drain_seconds must be non-negative")


@dataclass(frozen=True)
class RecPartConfig:
    """Tunable knobs of the RecPart optimizer.

    Attributes
    ----------
    sample_size:
        Total number of sample tuples (input sample plus output sample).
    symmetric:
        If ``True``, each split may duplicate either S or T (RecPart);
        if ``False``, T is always the duplicated side (RecPart-S).
    small_partition_factor:
        A leaf stops regular splitting in a dimension once its extent is
        below ``small_partition_factor * epsilon`` in that dimension.
    max_iterations:
        Hard cap on repeat-loop iterations; ``None`` derives the cap from the
        number of workers.
    termination:
        ``"applied"`` (cost-model window, the paper's default for the cloud
        experiments) or ``"theoretical"`` (lower-bound overhead balance).
    improvement_threshold:
        Minimum relative improvement over the termination window for the
        applied condition to keep going.
    scoring:
        Split-scoring measure: ``"ratio"`` (the paper's variance-reduction /
        duplication-increase ratio), ``"variance"`` (variance reduction only)
        or ``"duplication"`` (least duplication first).  The non-default
        modes exist for the ablation study of the scoring measure.
    """

    sample_size: int = DEFAULT_SAMPLE_SIZE
    symmetric: bool = True
    small_partition_factor: float = SMALL_PARTITION_FACTOR
    max_iterations: int | None = None
    termination: str = "applied"
    improvement_threshold: float = TERMINATION_IMPROVEMENT_THRESHOLD
    scoring: str = "ratio"
    weights: LoadWeights = field(default_factory=LoadWeights)

    def __post_init__(self) -> None:
        if self.sample_size < 2:
            raise ValueError("sample_size must be at least 2")
        if self.small_partition_factor <= 0:
            raise ValueError("small_partition_factor must be positive")
        if self.termination not in ("applied", "theoretical"):
            raise ValueError("termination must be 'applied' or 'theoretical'")
        if not 0 < self.improvement_threshold < 1:
            raise ValueError("improvement_threshold must be in (0, 1)")
        if self.scoring not in ("ratio", "variance", "duplication"):
            raise ValueError("scoring must be 'ratio', 'variance' or 'duplication'")

    def iteration_cap(self, workers: int) -> int:
        """Return the effective repeat-loop iteration cap for ``workers`` workers."""
        if self.max_iterations is not None:
            return self.max_iterations
        return max(workers * MAX_ITERATIONS_PER_WORKER, 32)
