"""Success measures used throughout the paper's evaluation.

The two headline measures (Section 2, "System Model and Measures of
Success") are the relative overheads over the lower bounds:

* input-duplication overhead ``(I - (|S| + |T|)) / (|S| + |T|)`` — how much
  more data is shuffled than strictly necessary, and
* max-worker-load overhead ``(L_m - L_0) / L_0`` — how much longer the most
  loaded worker works compared to a perfectly balanced, duplication-free
  execution.

Figure 4 / Figure 10 of the paper plot one point per (method, workload) in
this overhead plane; :class:`OverheadPoint` is that point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LoadWeights
from repro.cost.lower_bounds import LowerBounds
from repro.distributed.executor import ExecutionResult
from repro.exceptions import ReproError


def input_duplication_overhead(total_input: float, baseline_input: float) -> float:
    """Return ``(I - (|S|+|T|)) / (|S|+|T|)``."""
    if baseline_input <= 0:
        raise ReproError("baseline input must be positive")
    return (total_input - baseline_input) / baseline_input


def load_overhead(max_worker_load: float, lower_bound_load: float) -> float:
    """Return ``(L_m - L_0) / L_0``."""
    if lower_bound_load <= 0:
        raise ReproError("lower-bound load must be positive")
    return (max_worker_load - lower_bound_load) / lower_bound_load


def replication_rate(total_input: float, baseline_input: float) -> float:
    """Return the average number of copies made per input tuple (1.0 = none)."""
    if baseline_input <= 0:
        raise ReproError("baseline input must be positive")
    return total_input / baseline_input


@dataclass(frozen=True)
class OverheadPoint:
    """One point of the Figure 4 / Figure 10 scatter plot.

    Attributes
    ----------
    method:
        Partitioning method that produced the point.
    workload:
        Workload label (dataset, band width, workers).
    duplication_overhead:
        x-axis value ``I / (|S|+|T|) - 1``.
    load_overhead:
        y-axis value ``L_m / L_0 - 1``.
    """

    method: str
    workload: str
    duplication_overhead: float
    load_overhead: float

    @property
    def within_ten_percent(self) -> bool:
        """Return ``True`` when the point is within 10% of both lower bounds."""
        return self.duplication_overhead <= 0.10 and self.load_overhead <= 0.10


def overhead_point(
    result: ExecutionResult,
    bounds: LowerBounds,
    workload: str,
    weights: LoadWeights | None = None,
) -> OverheadPoint:
    """Build the Figure-4 point of one executed partitioning."""
    weights = weights if weights is not None else result.weights
    return OverheadPoint(
        method=result.partitioning.method,
        workload=workload,
        duplication_overhead=input_duplication_overhead(
            result.total_input, bounds.total_input
        ),
        load_overhead=load_overhead(result.max_worker_load, bounds.max_worker_load),
    )
