"""Plain-text and Markdown rendering of experiment tables.

The benchmark harness prints tables with the same row structure the paper
reports (per-method optimization time, estimated join time, ``I``, ``I_m``,
``O_m``); the helpers here keep that formatting in one place so every bench
and example renders consistently.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ReproError


def _format_cell(value) -> str:
    """Render one cell: compact numbers, pass-through strings."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_row(values: Sequence, widths: Sequence[int] | None = None) -> str:
    """Format one row of cells, optionally padded to column widths."""
    cells = [_format_cell(v) for v in values]
    if widths is None:
        return " | ".join(cells)
    if len(widths) != len(cells):
        raise ReproError("widths must match the number of cells")
    return " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None) -> str:
    """Render an aligned plain-text table."""
    string_rows = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ReproError("every row must have one cell per header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in string_rows:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Render a GitHub-flavoured Markdown table (used by EXPERIMENTS.md tooling)."""
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    for row in rows:
        if len(row) != len(headers):
            raise ReproError("every row must have one cell per header")
        lines.append("| " + " | ".join(_format_cell(v) for v in row) + " |")
    return "\n".join(lines)
