"""Success measures and report rendering."""

from repro.metrics.measures import (
    input_duplication_overhead,
    load_overhead,
    replication_rate,
    overhead_point,
    OverheadPoint,
)
from repro.metrics.report import format_table, format_row, render_markdown_table

__all__ = [
    "input_duplication_overhead",
    "load_overhead",
    "replication_rate",
    "overhead_point",
    "OverheadPoint",
    "format_table",
    "format_row",
    "render_markdown_table",
]
