"""repro — reproduction of "Near-Optimal Distributed Band-Joins through
Recursive Partitioning" (Li, Gatterbauer, Riedewald; SIGMOD 2020).

The package implements the paper's contribution (the RecPart recursive
partitioner) together with every substrate its evaluation depends on:
synthetic and real-data-shaped workload generators, input/output sampling,
local band-join algorithms, the baseline partitioners (1-Bucket, Grid-eps,
Grid*, CSIO, distributed IEJoin), a simulated MapReduce-style execution
engine with per-worker accounting, a real parallel execution engine with
pluggable backends and plan caching (:mod:`repro.engine`), the calibrated
running-time model, and an experiment harness that regenerates every table
and figure of the paper's evaluation section.

Quickstart
----------
>>> import repro
>>> s, t = repro.correlated_pair(50_000, 50_000, dimensions=3, z=1.5, seed=0)
>>> condition = repro.BandCondition.symmetric(["A1", "A2", "A3"], 2.0)
>>> partitioning = repro.RecPartPartitioner().partition(s, t, condition, workers=8)
>>> result = repro.DistributedBandJoinExecutor().execute(s, t, condition, partitioning)
>>> result.duplication_ratio < 0.1
True
"""

from repro.config import EngineConfig, LoadWeights, RecPartConfig, ServiceConfig
from repro.exceptions import (
    BandConditionError,
    CostModelError,
    ExecutionError,
    OptimizationError,
    PartitioningError,
    ReproError,
    SamplingError,
    SchemaError,
    ServiceError,
    ServiceOverloadError,
    WorkloadError,
)
from repro.geometry.band import BandCondition
from repro.geometry.region import Region
from repro.data.relation import Relation
from repro.data.generators import (
    clustered_relation,
    correlated_pair,
    normal_relation,
    pareto_relation,
    reverse_pareto_relation,
    uniform_relation,
    zipf_relation,
)
from repro.data.synthetic_real import (
    cloud_reports_like,
    ebird_cloud_pair,
    ebird_like,
    ptf_objects_like,
)
from repro.sampling.input_sampler import InputSample, draw_input_sample
from repro.sampling.output_sampler import OutputSample, draw_output_sample
from repro.local_join.nested_loop import NestedLoopJoin
from repro.local_join.index_nested_loop import IndexNestedLoopJoin
from repro.local_join.sort_band import SortSweepJoin
from repro.local_join.iejoin_local import IEJoinLocal
from repro.core.partitioner import JoinPartitioning, Partitioner, PartitioningStats
from repro.core.recpart import RecPartPartitioner, RecPartSPartitioner
from repro.core.split_tree import SplitTree, SplitTreePartitioning
from repro.baselines.one_bucket import OneBucketPartitioner
from repro.baselines.grid import GridEpsilonPartitioner
from repro.baselines.grid_star import GridStarPartitioner
from repro.baselines.csio import CSIOPartitioner
from repro.baselines.iejoin import IEJoinPartitioner
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.executor import DistributedBandJoinExecutor, ExecutionResult
from repro.engine import EngineResult, ParallelJoinEngine, PlanCache, available_backends
from repro.service import (
    BandJoinService,
    PreparedQuery,
    QueryResult,
    QueryScheduler,
    RelationCatalog,
)
from repro.cost.model import ModelCoefficients, RunningTimeModel, default_running_time_model
from repro.cost.calibration import calibrate_running_time_model
from repro.cost.lower_bounds import LowerBounds, compute_lower_bounds
from repro.metrics.measures import OverheadPoint, overhead_point

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration / errors
    "LoadWeights",
    "RecPartConfig",
    "ReproError",
    "SchemaError",
    "BandConditionError",
    "PartitioningError",
    "OptimizationError",
    "SamplingError",
    "CostModelError",
    "ExecutionError",
    "WorkloadError",
    # geometry and data
    "BandCondition",
    "Region",
    "Relation",
    "pareto_relation",
    "reverse_pareto_relation",
    "uniform_relation",
    "normal_relation",
    "zipf_relation",
    "clustered_relation",
    "correlated_pair",
    "ebird_like",
    "cloud_reports_like",
    "ebird_cloud_pair",
    "ptf_objects_like",
    # sampling
    "InputSample",
    "OutputSample",
    "draw_input_sample",
    "draw_output_sample",
    # local joins
    "NestedLoopJoin",
    "IndexNestedLoopJoin",
    "SortSweepJoin",
    "IEJoinLocal",
    # partitioners
    "Partitioner",
    "JoinPartitioning",
    "PartitioningStats",
    "RecPartPartitioner",
    "RecPartSPartitioner",
    "SplitTree",
    "SplitTreePartitioning",
    "OneBucketPartitioner",
    "GridEpsilonPartitioner",
    "GridStarPartitioner",
    "CSIOPartitioner",
    "IEJoinPartitioner",
    # execution
    "SimulatedCluster",
    "DistributedBandJoinExecutor",
    "ExecutionResult",
    "ParallelJoinEngine",
    "EngineResult",
    "PlanCache",
    "available_backends",
    "EngineConfig",
    # serving layer
    "BandJoinService",
    "RelationCatalog",
    "PreparedQuery",
    "QueryResult",
    "QueryScheduler",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadError",
    # cost model and metrics
    "ModelCoefficients",
    "RunningTimeModel",
    "default_running_time_model",
    "calibrate_running_time_model",
    "LowerBounds",
    "compute_lower_bounds",
    "OverheadPoint",
    "overhead_point",
]
