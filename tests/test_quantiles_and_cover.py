"""Tests for quantile orderings and join-matrix covering (repro.baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.matrix_cover import (
    CoarsenedMatrix,
    Rectangle,
    cover_matrix,
)
from repro.baselines.quantiles import (
    approximate_quantiles,
    assign_ranges,
    morton_key,
    ordering_key,
    row_major_key,
)
from repro.config import LoadWeights
from repro.exceptions import OptimizationError, PartitioningError


class TestQuantiles:
    def test_quantiles_split_evenly(self, rng):
        values = rng.uniform(0, 100, 10_000)
        boundaries = approximate_quantiles(values, 4)
        ranges = assign_ranges(values, boundaries)
        counts = np.bincount(ranges, minlength=4)
        assert counts.min() > 0.8 * len(values) / 4

    def test_skewed_data_deduplicates_boundaries(self):
        values = np.concatenate([np.zeros(1000), np.arange(10)])
        boundaries = approximate_quantiles(values, 8)
        assert np.unique(boundaries).size == boundaries.size

    def test_single_range(self, rng):
        assert approximate_quantiles(rng.uniform(size=100), 1).size == 0

    def test_invalid_range_count(self):
        with pytest.raises(PartitioningError):
            approximate_quantiles(np.arange(10.0), 0)

    def test_assign_ranges_boundaries(self):
        boundaries = np.array([1.0, 2.0])
        values = np.array([0.5, 1.0, 1.5, 2.5])
        np.testing.assert_array_equal(assign_ranges(values, boundaries), [0, 1, 1, 2])


class TestOrderings:
    def test_row_major_key_is_primary_dimension(self, rng):
        matrix = rng.uniform(size=(20, 3))
        np.testing.assert_array_equal(row_major_key(matrix), matrix[:, 0])
        np.testing.assert_array_equal(row_major_key(matrix, 2), matrix[:, 2])

    def test_row_major_invalid_dimension(self, rng):
        with pytest.raises(PartitioningError):
            row_major_key(rng.uniform(size=(5, 2)), 7)

    def test_morton_key_locality(self):
        """Points that are close in space should receive closer Morton keys than
        points far apart (on average), which is what makes blocks square-ish."""
        near_a = np.array([[0.1, 0.1]])
        near_b = np.array([[0.12, 0.11]])
        far = np.array([[0.9, 0.95]])
        bounds = (np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        key_a = morton_key(near_a, *bounds)[0]
        key_b = morton_key(near_b, *bounds)[0]
        key_far = morton_key(far, *bounds)[0]
        assert abs(int(key_a) - int(key_b)) < abs(int(key_a) - int(key_far))

    def test_morton_key_empty(self):
        assert morton_key(np.empty((0, 2))).size == 0

    def test_ordering_key_dispatch(self, rng):
        matrix = rng.uniform(size=(10, 2))
        np.testing.assert_array_equal(ordering_key(matrix, "row-major"), matrix[:, 0])
        assert ordering_key(matrix, "block").shape == (10,)
        with pytest.raises(PartitioningError):
            ordering_key(matrix, "zigzag")


def _toy_matrix(n_rows=6, n_cols=6, band=1) -> CoarsenedMatrix:
    """A diagonal-band candidate matrix with uniform inputs."""
    candidate = np.zeros((n_rows, n_cols), dtype=bool)
    for i in range(n_rows):
        for j in range(n_cols):
            if abs(i - j) <= band:
                candidate[i, j] = True
    output = np.where(candidate, 10.0, 0.0)
    return CoarsenedMatrix(
        s_row_input=np.full(n_rows, 100.0),
        t_col_input=np.full(n_cols, 100.0),
        cell_output=output,
        candidate=candidate,
    )


class TestRectangle:
    def test_rectangle_properties(self):
        rect = Rectangle(0, 2, 1, 4)
        assert rect.n_cells == 6
        assert rect.contains_cell(1, 3)
        assert not rect.contains_cell(2, 3)

    def test_empty_rectangle_rejected(self):
        with pytest.raises(PartitioningError):
            Rectangle(0, 0, 0, 1)

    def test_rectangle_load(self):
        matrix = _toy_matrix()
        rect = Rectangle(0, 2, 0, 3)
        load = matrix.rectangle_load(rect, LoadWeights())
        expected_input = 2 * 100 + 3 * 100
        expected_output = matrix.cell_output[0:2, 0:3].sum()
        assert load == pytest.approx(4 * expected_input + expected_output)


class TestCoverMatrix:
    def test_cover_respects_worker_budget(self):
        matrix = _toy_matrix()
        cover = cover_matrix(matrix, workers=4, weights=LoadWeights())
        assert 1 <= cover.n_rectangles <= 4
        cover.validate_covers(matrix)

    def test_cover_is_cell_disjoint_and_complete(self):
        matrix = _toy_matrix(n_rows=10, n_cols=10, band=2)
        cover = cover_matrix(matrix, workers=6, weights=LoadWeights())
        cover.validate_covers(matrix)

    def test_more_workers_reduce_max_load(self):
        matrix = _toy_matrix(n_rows=12, n_cols=12, band=1)
        few = cover_matrix(matrix, workers=2, weights=LoadWeights())
        many = cover_matrix(matrix, workers=8, weights=LoadWeights())
        assert many.max_load <= few.max_load

    def test_skewed_rows_get_more_rectangles(self):
        """A row group holding most of the load should receive most of the
        rectangle budget."""
        n = 8
        candidate = np.ones((n, n), dtype=bool)
        s_input = np.full(n, 10.0)
        s_input[0] = 1000.0
        matrix = CoarsenedMatrix(
            s_row_input=s_input,
            t_col_input=np.full(n, 10.0),
            cell_output=np.zeros((n, n)),
            candidate=candidate,
        )
        cover = cover_matrix(matrix, workers=6, weights=LoadWeights())
        cover.validate_covers(matrix)
        first_row_group = cover.row_group_of_row[0]
        assert len(cover.rectangles_of_group(first_row_group)) >= 1

    def test_invalid_worker_count(self):
        with pytest.raises(OptimizationError):
            cover_matrix(_toy_matrix(), workers=0, weights=LoadWeights())

    def test_matrix_without_candidates(self):
        matrix = CoarsenedMatrix(
            s_row_input=np.full(3, 10.0),
            t_col_input=np.full(3, 10.0),
            cell_output=np.zeros((3, 3)),
            candidate=np.zeros((3, 3), dtype=bool),
        )
        with pytest.raises(OptimizationError):
            cover_matrix(matrix, workers=2, weights=LoadWeights())

    def test_total_load_helper(self):
        matrix = _toy_matrix()
        assert matrix.total_load(LoadWeights()) == pytest.approx(
            4 * (600 + 600) + matrix.cell_output.sum()
        )

    def test_shape_validation(self):
        with pytest.raises(OptimizationError):
            CoarsenedMatrix(
                s_row_input=np.ones(2),
                t_col_input=np.ones(3),
                cell_output=np.zeros((3, 3)),
                candidate=np.zeros((2, 3), dtype=bool),
            )
