"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "available tables" in output
        assert "pareto" in output

    def test_demo_command_small(self, capsys):
        code = main(
            [
                "demo",
                "--rows",
                "1200",
                "--workers",
                "3",
                "--dimensions",
                "2",
                "--band-width",
                "0.1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "RecPart" in output
        assert "fastest method" in output

    def test_demo_command_with_engine_backend(self, capsys):
        code = main(
            [
                "demo",
                "--rows",
                "900",
                "--workers",
                "3",
                "--dimensions",
                "2",
                "--band-width",
                "0.1",
                "--engine",
                "threads",
            ]
        )
        assert code == 0
        assert "fastest method" in capsys.readouterr().out

    def test_engine_command_compares_backends(self, capsys):
        code = main(
            [
                "engine",
                "--rows",
                "4000",
                "--workers",
                "4",
                "--band-width",
                "0.05",
                "--backends",
                "serial,threads",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "engine backend comparison" in output
        assert "serial" in output and "threads" in output
        assert "identical output counts" in output

    def test_engine_command_rejects_unknown_backend(self, capsys):
        assert main(["engine", "--rows", "500", "--backends", "gpu"]) == 2
        assert "unknown backends" in capsys.readouterr().out

    def test_table_command(self, capsys):
        assert main(["table", "2b", "--scale", "0.03"]) == 0
        output = capsys.readouterr().out
        assert "Table 2b" in output

    def test_table_command_accepts_table_prefix(self, capsys):
        assert main(["table", "Table 16", "--scale", "0.03"]) == 0
        assert "Table 16" in capsys.readouterr().out

    def test_unknown_table(self, capsys):
        assert main(["table", "99"]) == 2
        assert "unknown table" in capsys.readouterr().out

    def test_calibrate_command(self, capsys):
        assert main(["calibrate", "--queries", "5", "--base-input", "600"]) == 0
        output = capsys.readouterr().out
        assert "beta2" in output

    def test_figure4_command(self, capsys, tmp_path):
        csv_path = tmp_path / "fig4.csv"
        assert main(["figure4", "--scale", "0.03", "--csv", str(csv_path)]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert csv_path.exists()

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
