"""Tests for input and output sampling (repro.sampling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import correlated_pair, uniform_relation
from repro.exceptions import SamplingError
from repro.geometry.band import BandCondition
from repro.local_join.base import join_pair_count
from repro.sampling.input_sampler import draw_input_sample
from repro.sampling.output_sampler import draw_output_sample


class TestInputSampler:
    def test_sample_shapes_and_scales(self, rng):
        s, t = correlated_pair(4000, 2000, dimensions=2, seed=0)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        sample = draw_input_sample(s, t, condition, 1000, rng)
        assert sample.s_values.shape == (500, 2)
        assert sample.t_values.shape == (500, 2)
        assert sample.s_scale == pytest.approx(4000 / 500)
        assert sample.t_scale == pytest.approx(2000 / 500)
        assert sample.total_input == 6000
        assert sample.dimensionality == 2

    def test_sample_larger_than_relation_uses_whole_relation(self, rng):
        s, t = correlated_pair(100, 100, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.1)
        sample = draw_input_sample(s, t, condition, 10_000, rng)
        assert sample.s_values.shape[0] == 100
        assert sample.s_scale == 1.0

    def test_combined_values(self, rng):
        s, t = correlated_pair(500, 500, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.1)
        sample = draw_input_sample(s, t, condition, 200, rng)
        assert sample.combined_values().shape[0] == (
            sample.s_values.shape[0] + sample.t_values.shape[0]
        )

    def test_data_bounds_cover_sample(self, rng):
        s, t = correlated_pair(1000, 1000, dimensions=3, seed=0)
        condition = BandCondition.symmetric(["A1", "A2", "A3"], 0.1)
        sample = draw_input_sample(s, t, condition, 512, rng)
        lower, upper = sample.data_bounds()
        combined = sample.combined_values()
        assert np.all(combined >= lower)
        assert np.all(combined <= upper)

    def test_data_bounds_with_padding(self, rng):
        s, t = correlated_pair(500, 500, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.5)
        sample = draw_input_sample(s, t, condition, 200, rng)
        lower_plain, upper_plain = sample.data_bounds()
        lower_padded, upper_padded = sample.data_bounds(padding=np.array([2.0]))
        assert lower_padded[0] < lower_plain[0]
        assert upper_padded[0] > upper_plain[0]

    def test_sample_size_validation(self, rng):
        s, t = correlated_pair(100, 100, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.1)
        with pytest.raises(SamplingError):
            draw_input_sample(s, t, condition, 1, rng)

    def test_scales_convert_counts_to_estimates(self, rng):
        """Scaled sample counts over a predicate approximate the true count."""
        s = uniform_relation("S", 20_000, dimensions=1, seed=0)
        t = uniform_relation("T", 20_000, dimensions=1, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.1)
        sample = draw_input_sample(s, t, condition, 4000, rng)
        true_below = float(np.sum(s["A1"] < 0.5))
        estimated_below = float(np.sum(sample.s_values[:, 0] < 0.5)) * sample.s_scale
        assert abs(estimated_below - true_below) / true_below < 0.15


class TestOutputSampler:
    def test_output_sample_estimates_total_output(self, rng):
        s = uniform_relation("S", 5000, dimensions=1, seed=0)
        t = uniform_relation("T", 5000, dimensions=1, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.01)
        sample = draw_output_sample(s, t, condition, 500, rng, initial_fraction=0.1)
        exact = join_pair_count(s.join_matrix(["A1"]), t.join_matrix(["A1"]), condition)
        assert exact > 0
        assert 0.5 * exact < sample.estimated_output < 1.6 * exact

    def test_sampled_pairs_actually_join(self, rng):
        s, t = correlated_pair(3000, 3000, dimensions=2, z=1.5, seed=1)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        sample = draw_output_sample(s, t, condition, 300, rng)
        if len(sample):
            assert condition.matches(sample.s_coords, sample.t_coords).all()

    def test_empty_join_gives_empty_sample(self, rng):
        s = uniform_relation("S", 500, dimensions=1, low=0.0, high=1.0, seed=0)
        t = uniform_relation("T", 500, dimensions=1, low=100.0, high=101.0, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.5)
        sample = draw_output_sample(s, t, condition, 100, rng)
        assert sample.is_empty
        assert sample.estimated_output == 0.0
        assert sample.pair_scale == 0.0

    def test_empty_relation(self, rng):
        s = uniform_relation("S", 0, dimensions=1, seed=0)
        t = uniform_relation("T", 10, dimensions=1, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.5)
        sample = draw_output_sample(s, t, condition, 10, rng)
        assert sample.is_empty

    def test_sample_capped_at_requested_size(self, rng):
        s = uniform_relation("S", 2000, dimensions=1, seed=0)
        t = uniform_relation("T", 2000, dimensions=1, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.2)  # huge output
        sample = draw_output_sample(s, t, condition, 64, rng, initial_fraction=0.2)
        assert len(sample) <= 64
        assert sample.pair_scale > 0

    def test_progressive_growth_for_small_output(self, rng):
        """A very selective join forces the sampler to enlarge its cross-sample."""
        s = uniform_relation("S", 4000, dimensions=1, seed=0)
        t = uniform_relation("T", 4000, dimensions=1, seed=1)
        condition = BandCondition.symmetric(["A1"], 1e-4)
        sample = draw_output_sample(
            s, t, condition, 200, rng, initial_fraction=0.01, max_fraction=0.5
        )
        # The exact output is ~ 4000*4000*2e-4 = 3200, so some pairs must be found.
        assert len(sample) > 0

    def test_parameter_validation(self, rng):
        s, t = correlated_pair(100, 100, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.5)
        with pytest.raises(SamplingError):
            draw_output_sample(s, t, condition, 0, rng)
        with pytest.raises(SamplingError):
            draw_output_sample(s, t, condition, 10, rng, initial_fraction=0.0)
        with pytest.raises(SamplingError):
            draw_output_sample(s, t, condition, 10, rng, initial_fraction=0.6, max_fraction=0.5)
        with pytest.raises(SamplingError):
            draw_output_sample(s, t, condition, 10, rng, growth=1.0)


class TestSelectivityEstimates:
    def test_uniform_window_fraction_matches_analytic_value(self):
        from repro.sampling.selectivity import window_fractions

        rng = np.random.default_rng(5)
        s = rng.uniform(0, 1, size=(5000, 1))
        t = rng.uniform(0, 1, size=(5000, 1))
        condition = BandCondition.symmetric(["A1"], 0.05)
        fraction = window_fractions(s, t, condition)[0]
        # P(|x - y| <= 0.05) for uniform [0, 1) is ~2 * 0.05 = 0.1.
        assert 0.07 < fraction < 0.13

    def test_output_estimate_tracks_exact_count(self):
        from repro.sampling.selectivity import estimate_join_output

        rng = np.random.default_rng(9)
        s = rng.uniform(0, 2, size=(3000, 1))
        t = rng.uniform(0, 2, size=(3000, 1))
        condition = BandCondition.symmetric(["A1"], 0.02)
        estimate = estimate_join_output(s, t, condition)
        exact = join_pair_count(s, t, condition)
        assert 0.5 * exact <= estimate <= 2.0 * exact

    def test_empty_inputs_estimate_zero(self):
        from repro.sampling.selectivity import (
            estimate_join_output,
            window_fractions,
        )

        condition = BandCondition.symmetric(["A1"], 0.1)
        empty = np.empty((0, 1))
        some = np.ones((5, 1))
        assert estimate_join_output(empty, some, condition) == 0.0
        np.testing.assert_array_equal(window_fractions(some, empty, condition), [0.0])

    def test_invalid_sample_size(self):
        from repro.sampling.selectivity import window_fractions

        condition = BandCondition.symmetric(["A1"], 0.1)
        values = np.ones((5, 1))
        with pytest.raises(ValueError):
            window_fractions(values, values, condition, sample_size=0)
