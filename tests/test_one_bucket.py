"""Tests for the 1-Bucket baseline (repro.baselines.one_bucket)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.one_bucket import (
    OneBucketPartitioner,
    OneBucketPartitioning,
    choose_matrix_shape,
)
from repro.core.partitioner import PartitioningStats
from repro.data.generators import correlated_pair
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition


class TestMatrixShape:
    def test_square_for_equal_inputs(self):
        rows, cols = choose_matrix_shape(1000, 1000, 16)
        assert rows * cols <= 16
        assert rows == cols == 4

    def test_skewed_inputs_prefer_rectangular_shape(self):
        rows, cols = choose_matrix_shape(100_000, 100, 16)
        # Large S should get many rows so each cell receives a small S share.
        assert rows > cols

    def test_single_worker(self):
        assert choose_matrix_shape(10, 10, 1) == (1, 1)

    def test_invalid_workers(self):
        with pytest.raises(PartitioningError):
            choose_matrix_shape(10, 10, 0)

    def test_prime_worker_count_still_uses_most_workers(self):
        rows, cols = choose_matrix_shape(1000, 1000, 7)
        assert rows * cols <= 7
        assert rows * cols >= 6  # 1x7 (or 7x1) is the best factorisation


class TestRouting:
    def test_replication_factors(self, rng):
        """S is shipped to every column of its row; T to every row of its column."""
        partitioning = OneBucketPartitioning(rows=3, cols=4, workers=12, seed=1)
        values = rng.uniform(0, 1, size=(50, 2))
        s_rows, s_units = partitioning.route(values, "S")
        t_rows, t_units = partitioning.route(values, "T")
        assert s_rows.size == 50 * 4
        assert t_rows.size == 50 * 3
        assert np.unique(s_units).size <= 12

    def test_every_pair_of_cells_is_covered(self, rng):
        """Any (s, t) combination meets in exactly one cell: the intersection of
        s's row and t's column — this is what makes 1-Bucket correct for any
        join condition."""
        partitioning = OneBucketPartitioning(rows=3, cols=3, workers=9, seed=5)
        values = rng.uniform(0, 1, size=(30, 1))
        s_rows, s_units = partitioning.route(values, "S")
        t_rows, t_units = partitioning.route(values, "T")
        s_map = {}
        for row, unit in zip(s_rows, s_units):
            s_map.setdefault(int(row), set()).add(int(unit))
        t_map = {}
        for row, unit in zip(t_rows, t_units):
            t_map.setdefault(int(row), set()).add(int(unit))
        for i in range(30):
            for j in range(30):
                assert len(s_map[i] & t_map[j]) == 1

    def test_route_is_deterministic(self, rng):
        partitioning = OneBucketPartitioning(rows=2, cols=2, workers=4, seed=3)
        values = rng.uniform(0, 1, size=(40, 1))
        first = partitioning.route(values, "S")
        second = partitioning.route(values, "S")
        np.testing.assert_array_equal(first[1], second[1])

    def test_invalid_shapes(self):
        with pytest.raises(PartitioningError):
            OneBucketPartitioning(rows=0, cols=2, workers=4, seed=0)
        with pytest.raises(PartitioningError):
            OneBucketPartitioning(rows=3, cols=3, workers=4, seed=0)

    def test_unit_workers_one_to_one(self):
        partitioning = OneBucketPartitioning(rows=2, cols=3, workers=8, seed=0)
        workers = partitioning.unit_workers()
        assert np.unique(workers).size == 6


class TestEndToEnd:
    def test_partition_and_execute(self):
        s, t = correlated_pair(2000, 2000, dimensions=2, z=1.5, seed=2)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        partitioner = OneBucketPartitioner()
        partitioning = partitioner.partition(s, t, condition, workers=8)
        assert isinstance(partitioning.stats, PartitioningStats)
        result = DistributedBandJoinExecutor().execute(
            s, t, condition, partitioning, verify="count"
        )
        # Input duplication is about sqrt(w): with an (2, 4) or (4, 2) shape the
        # total input is rows*|T| + cols*|S|, far above |S| + |T|.
        assert result.total_input > 1.5 * (len(s) + len(t))

    def test_load_balance_is_good_despite_duplication(self):
        """1-Bucket's selling point: near-perfect load balance for any condition."""
        s, t = correlated_pair(4000, 4000, dimensions=1, z=2.0, seed=3)
        condition = BandCondition.symmetric(["A1"], 0.05)
        partitioning = OneBucketPartitioner().partition(s, t, condition, workers=4)
        result = DistributedBandJoinExecutor().execute(s, t, condition, partitioning)
        assert result.job.load_imbalance(result.weights) < 1.5

    def test_independent_of_dimensionality(self):
        """The matrix cover ignores the join condition entirely (paper Table 2a vs 2b)."""
        s1, t1 = correlated_pair(1000, 1000, dimensions=1, seed=4)
        s3, t3 = correlated_pair(1000, 1000, dimensions=3, seed=4)
        one_d = OneBucketPartitioner().partition(
            s1, t1, BandCondition.symmetric(["A1"], 0.1), workers=8
        )
        three_d = OneBucketPartitioner().partition(
            s3, t3, BandCondition.symmetric(["A1", "A2", "A3"], 0.1), workers=8
        )
        assert (one_d.rows, one_d.cols) == (three_d.rows, three_d.cols)
