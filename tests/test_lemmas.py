"""Empirical checks of the paper's analytical results (Lemmas 1-3).

These are not proofs, of course — they verify that the implemented grid
machinery exhibits exactly the behaviour the lemmas predict on constructed
and random inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.grid import GridEpsilonPartitioner
from repro.config import LoadWeights
from repro.cost.lower_bounds import compute_lower_bounds
from repro.data.generators import pareto_relation, uniform_relation
from repro.data.relation import Relation
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.geometry.band import BandCondition
from repro.local_join.base import join_pair_count


class TestLemma1LowerBounds:
    def test_no_partitioning_beats_the_lower_bounds(self):
        """Lemma 1: every partitioning ships at least |S|+|T| tuples and some
        worker carries at least 1/w of the total load."""
        from repro.core.recpart import RecPartPartitioner
        from repro.baselines.one_bucket import OneBucketPartitioner
        from repro.baselines.csio import CSIOPartitioner

        s = pareto_relation("S", 2000, dimensions=2, z=1.5, seed=0)
        t = pareto_relation("T", 2000, dimensions=2, z=1.5, seed=1)
        condition = BandCondition.symmetric(["A1", "A2"], 0.05)
        weights = LoadWeights()
        workers = 4
        bounds = compute_lower_bounds(s, t, condition, workers, weights=weights)
        executor = DistributedBandJoinExecutor(weights=weights)
        for partitioner in (RecPartPartitioner(), OneBucketPartitioner(), CSIOPartitioner()):
            partitioning = partitioner.partition(s, t, condition, workers)
            result = executor.execute(s, t, condition, partitioning)
            assert result.total_input >= bounds.total_input
            assert result.max_worker_load >= bounds.max_worker_load * (1 - 1e-9)


class TestLemma2GridDensityFloor:
    def test_dense_epsilon_range_forces_a_heavy_grid_cell(self):
        """Lemma 2: if some epsilon-range holds n T-tuples, every grid partitioning
        has a partition with at least n T-tuples — no matter the grid size."""
        rng = np.random.default_rng(0)
        epsilon = 1.0
        # Cluster of n T-tuples packed inside one epsilon-range.
        n_dense = 500
        dense = rng.uniform(50.0, 50.0 + epsilon, n_dense)
        sparse = rng.uniform(0.0, 1000.0, 2000)
        t = Relation("T", {"A1": np.concatenate([dense, sparse])})
        s = Relation("S", {"A1": rng.uniform(0.0, 1000.0, 2000)})
        condition = BandCondition.symmetric(["A1"], epsilon)

        for multiplier in (1.0, 2.0, 5.0, 10.0):
            partitioner = GridEpsilonPartitioner(multiplier=multiplier)
            partitioning = partitioner.partition(s, t, condition, workers=8)
            rows, units = partitioning.route(t.join_matrix(["A1"]), "T")
            # Count T-tuples (with duplicates) per grid cell and find the densest.
            per_unit = np.bincount(units, minlength=partitioning.n_units)
            assert per_unit.max() >= n_dense

    def test_finer_grid_does_not_dilute_the_dense_cell(self):
        """The stronger reading of Lemma 2: refining the grid cannot push the
        densest cell below the epsilon-range population."""
        rng = np.random.default_rng(1)
        epsilon = 0.5
        dense = rng.uniform(10.0, 10.0 + epsilon, 300)
        t = Relation("T", {"A1": np.concatenate([dense, rng.uniform(0, 200, 1000)])})
        s = Relation("S", {"A1": rng.uniform(0, 200, 1000)})
        condition = BandCondition.symmetric(["A1"], epsilon)
        maxima = []
        for multiplier in (4.0, 2.0, 1.0):
            partitioning = GridEpsilonPartitioner(multiplier=multiplier).partition(
                s, t, condition, workers=4
            )
            _, units = partitioning.route(t.join_matrix(["A1"]), "T")
            maxima.append(int(np.bincount(units).max()))
        assert min(maxima) >= 300


class TestLemma3GridUpperBound:
    def test_epsilon_range_fraction_shrinks_with_input_size(self):
        """Lemma 3: for self-similar inputs with bounded output/input ratio, the
        largest epsilon-range input fraction decreases like 1/sqrt(|S|)."""
        epsilon = 0.01
        condition = BandCondition.symmetric(["A1"], epsilon)
        fractions = {}
        for n in (2000, 8000, 32_000):
            s = uniform_relation("S", n, dimensions=1, seed=3)
            values = np.sort(s["A1"])
            # Densest window of width epsilon (sliding-window count).
            right = np.searchsorted(values, values + epsilon, side="right")
            densest = int((right - np.arange(n)).max())
            fractions[n] = densest / n
        assert fractions[32_000] < fractions[8000] < fractions[2000]
        # The densest-window fraction keeps shrinking as the input grows (it
        # converges toward the window width itself for uniform data).
        assert fractions[32_000] < 0.8 * fractions[2000]

    def test_output_bounded_by_constant_times_input_precondition(self):
        """Sanity-check the lemma's precondition machinery: for a narrow band on
        uniform data, output stays within a small constant times input."""
        s = uniform_relation("S", 5000, dimensions=1, seed=4)
        t = uniform_relation("T", 5000, dimensions=1, seed=5)
        condition = BandCondition.symmetric(["A1"], 1e-4)
        output = join_pair_count(s.join_matrix(["A1"]), t.join_matrix(["A1"]), condition)
        assert output <= 3 * (len(s) + len(t))
