"""Tests for the synthetic stand-ins of the paper's real datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_real import (
    SPATIOTEMPORAL_ATTRIBUTES,
    cloud_reports_like,
    ebird_cloud_pair,
    ebird_like,
    ptf_objects_like,
)
from repro.exceptions import WorkloadError


class TestEbirdLike:
    def test_schema_and_ranges(self):
        rel = ebird_like(2000, seed=0)
        for attribute in SPATIOTEMPORAL_ATTRIBUTES:
            assert attribute in rel
        assert rel["latitude"].min() >= -90 and rel["latitude"].max() <= 90
        assert rel["longitude"].min() >= -180 and rel["longitude"].max() <= 180
        assert rel["time"].min() >= 0
        assert "species" in rel and "count" in rel

    def test_spatial_clustering(self):
        """Observations should concentrate in a few hot spots, not spread uniformly."""
        rel = ebird_like(5000, seed=0)
        lat = rel["latitude"]
        hist, _ = np.histogram(lat, bins=36, range=(-90, 90))
        # The densest bin should hold far more than a uniform share.
        assert hist.max() > 3 * (len(rel) / 36)

    def test_negative_rows_rejected(self):
        with pytest.raises(WorkloadError):
            ebird_like(-5)

    def test_deterministic(self):
        a = ebird_like(500, seed=3)
        b = ebird_like(500, seed=3)
        np.testing.assert_array_equal(a["latitude"], b["latitude"])


class TestCloudReportsLike:
    def test_schema(self):
        rel = cloud_reports_like(1000, seed=1)
        assert "precipitation" in rel and "temperature" in rel
        for attribute in SPATIOTEMPORAL_ATTRIBUTES:
            assert attribute in rel

    def test_hotspot_overlap_creates_correlated_skew(self):
        """With full overlap, weather hot spots coincide with ebird hot spots."""
        birds = ebird_like(4000, seed=0)
        weather = cloud_reports_like(4000, seed=1, hotspot_overlap=1.0)
        # Compare the densest latitude bins of both relations: they should share bins.
        bird_hist, edges = np.histogram(birds["latitude"], bins=18, range=(-90, 90))
        cloud_hist, _ = np.histogram(weather["latitude"], bins=18, range=(-90, 90))
        top_bird = set(np.argsort(bird_hist)[-5:])
        top_cloud = set(np.argsort(cloud_hist)[-5:])
        assert top_bird & top_cloud

    def test_invalid_overlap(self):
        with pytest.raises(WorkloadError):
            cloud_reports_like(10, hotspot_overlap=1.5)

    def test_pair_helper(self):
        s, t = ebird_cloud_pair(300, seed=0)
        assert len(s) == len(t) == 300


class TestPtfObjectsLike:
    def test_schema_and_ranges(self):
        rel = ptf_objects_like(2000, seed=2)
        assert set(rel.column_names) >= {"ra", "dec", "magnitude", "mjd"}
        assert rel["ra"].min() >= 0 and rel["ra"].max() < 360

    def test_repeat_observations_within_arcseconds(self):
        """The generator must produce repeat observations of the same source
        within a few arc seconds, otherwise the paper's self-match has no output."""
        rel = ptf_objects_like(4000, seed=2)
        ra = np.sort(rel["ra"])
        gaps = np.diff(ra)
        arcsec = 2.78e-4
        assert np.mean(gaps < 2 * arcsec) > 0.05

    def test_negative_rows_rejected(self):
        with pytest.raises(WorkloadError):
            ptf_objects_like(-1)
