"""Tests for success measures, report rendering and relation persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LoadWeights
from repro.cost.lower_bounds import LowerBounds
from repro.data.generators import uniform_relation
from repro.data.io import load_csv, load_npz, save_csv, save_npz
from repro.exceptions import ReproError, SchemaError
from repro.metrics.measures import (
    OverheadPoint,
    input_duplication_overhead,
    load_overhead,
    replication_rate,
)
from repro.metrics.report import format_row, format_table, render_markdown_table


class TestMeasures:
    def test_duplication_overhead(self):
        assert input_duplication_overhead(110, 100) == pytest.approx(0.1)
        assert input_duplication_overhead(100, 100) == 0.0

    def test_load_overhead(self):
        assert load_overhead(12.0, 10.0) == pytest.approx(0.2)

    def test_replication_rate(self):
        assert replication_rate(300, 100) == pytest.approx(3.0)

    def test_invalid_baselines(self):
        with pytest.raises(ReproError):
            input_duplication_overhead(10, 0)
        with pytest.raises(ReproError):
            load_overhead(10, 0)
        with pytest.raises(ReproError):
            replication_rate(10, 0)

    def test_overhead_point_within_ten_percent(self):
        good = OverheadPoint("RecPart", "w1", 0.05, 0.08)
        bad = OverheadPoint("Grid", "w1", 2.0, 0.05)
        assert good.within_ten_percent
        assert not bad.within_ten_percent

    def test_lower_bounds_overheads_consistency(self, weights):
        bounds = LowerBounds(total_input=1000, max_worker_load=500, output_size=100, workers=4)
        assert bounds.input_overhead(1100) == pytest.approx(0.1)
        assert bounds.load_overhead(550) == pytest.approx(0.1)


class TestReportRendering:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [30, "x"]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ReproError):
            format_table(["a"], [[1, 2]])

    def test_format_row_with_widths(self):
        row = format_row([1, "x"], widths=[4, 4])
        assert row == "   1 |    x"

    def test_format_row_width_mismatch(self):
        with pytest.raises(ReproError):
            format_row([1], widths=[2, 3])

    def test_cell_formatting_variants(self):
        text = format_table(
            ["v"],
            [[None], [True], [1234567], [0.00001], [12.3456], [0.5]],
        )
        assert "-" in text
        assert "yes" in text
        assert "1,234,567" in text

    def test_markdown_table(self):
        text = render_markdown_table(["a", "b"], [[1, 2]], title="T")
        assert text.startswith("**T**")
        assert "| a | b |" in text
        assert "| 1 | 2 |" in text

    def test_markdown_table_mismatch(self):
        with pytest.raises(ReproError):
            render_markdown_table(["a"], [[1, 2]])


class TestRelationIO:
    def test_npz_roundtrip(self, tmp_path):
        relation = uniform_relation("R", 100, dimensions=2, seed=0)
        path = save_npz(relation, tmp_path / "rel.npz")
        loaded = load_npz(path)
        assert loaded.name == "R"
        np.testing.assert_array_equal(loaded["A1"], relation["A1"])

    def test_csv_roundtrip(self, tmp_path):
        relation = uniform_relation("R", 50, dimensions=3, seed=1)
        path = save_csv(relation, tmp_path / "rel.csv")
        loaded = load_csv(path)
        assert loaded.column_names == relation.column_names
        np.testing.assert_allclose(loaded["A2"], relation["A2"])

    def test_csv_custom_name(self, tmp_path):
        relation = uniform_relation("R", 10, dimensions=1, seed=2)
        path = save_csv(relation, tmp_path / "data.csv")
        assert load_csv(path, name="custom").name == "custom"

    def test_empty_csv_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SchemaError):
            load_csv(empty)

    def test_empty_relation_roundtrip(self, tmp_path):
        relation = uniform_relation("R", 0, dimensions=1, seed=0)
        path = save_csv(relation, tmp_path / "empty_rel.csv")
        loaded = load_csv(path)
        assert len(loaded) == 0
