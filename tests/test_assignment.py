"""Tests for unit-to-worker assignment policies (repro.core.assignment)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import (
    load_imbalance,
    lpt_assignment,
    max_worker_load,
    random_assignment,
    round_robin_assignment,
    worker_loads,
)
from repro.exceptions import PartitioningError


class TestLPT:
    def test_balances_equal_loads(self):
        loads = np.ones(8)
        assignment = lpt_assignment(loads, 4)
        totals = worker_loads(loads, assignment, 4)
        assert np.allclose(totals, 2.0)

    def test_heavy_units_spread_out(self):
        loads = np.array([10.0, 10.0, 1.0, 1.0, 1.0, 1.0])
        assignment = lpt_assignment(loads, 2)
        assert assignment[0] != assignment[1]

    def test_single_worker(self):
        loads = np.array([3.0, 2.0, 1.0])
        assignment = lpt_assignment(loads, 1)
        assert np.all(assignment == 0)

    def test_empty_units(self):
        assert lpt_assignment(np.empty(0), 4).shape == (0,)

    def test_negative_loads_rejected(self):
        with pytest.raises(PartitioningError):
            lpt_assignment(np.array([-1.0]), 2)

    def test_zero_workers_rejected(self):
        with pytest.raises(PartitioningError):
            lpt_assignment(np.array([1.0]), 0)

    @settings(max_examples=50, deadline=None)
    @given(
        loads=st.lists(st.floats(0, 100), min_size=1, max_size=40),
        workers=st.integers(1, 8),
    )
    def test_lpt_within_approximation_bound(self, loads, workers):
        """LPT is a 4/3-approximation of the optimal makespan: in particular it is
        never worse than max(largest unit, total/workers) * 4/3 + largest unit."""
        loads_arr = np.array(loads)
        assignment = lpt_assignment(loads_arr, workers)
        achieved = max_worker_load(loads_arr, assignment, workers)
        lower_bound = max(loads_arr.max(initial=0.0), loads_arr.sum() / workers)
        # The greedy bound: the last-finishing worker's load before receiving
        # its final unit is at most total/workers <= lower_bound * 4/3, plus
        # at most one largest unit on top (the bound the docstring states —
        # lower_bound * 4/3 alone is violated by e.g. four unit loads on
        # three workers, where the optimal makespan itself is 2 > 16/9).
        assert achieved <= lower_bound * 4 / 3 + loads_arr.max(initial=0.0) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        loads=st.lists(st.floats(0, 100), min_size=1, max_size=30),
        workers=st.integers(1, 6),
    )
    def test_every_unit_assigned(self, loads, workers):
        loads_arr = np.array(loads)
        assignment = lpt_assignment(loads_arr, workers)
        assert assignment.shape == loads_arr.shape
        assert assignment.min() >= 0 and assignment.max() < workers


class TestOtherPolicies:
    def test_random_assignment_range(self, rng):
        assignment = random_assignment(100, 5, rng)
        assert assignment.min() >= 0 and assignment.max() < 5

    def test_random_assignment_invalid(self, rng):
        with pytest.raises(PartitioningError):
            random_assignment(10, 0, rng)
        with pytest.raises(PartitioningError):
            random_assignment(-1, 2, rng)

    def test_round_robin(self):
        assignment = round_robin_assignment(6, 3)
        assert assignment.tolist() == [0, 1, 2, 0, 1, 2]

    def test_round_robin_invalid(self):
        with pytest.raises(PartitioningError):
            round_robin_assignment(5, 0)


class TestAggregation:
    def test_worker_loads_sums(self):
        loads = np.array([1.0, 2.0, 3.0])
        assignment = np.array([0, 0, 1])
        np.testing.assert_array_equal(worker_loads(loads, assignment, 3), [3.0, 3.0, 0.0])

    def test_worker_loads_shape_mismatch(self):
        with pytest.raises(PartitioningError):
            worker_loads(np.ones(3), np.zeros(2, dtype=int), 2)

    def test_max_worker_load(self):
        loads = np.array([5.0, 1.0])
        assignment = np.array([1, 0])
        assert max_worker_load(loads, assignment, 2) == 5.0

    def test_load_imbalance_perfect(self):
        loads = np.ones(4)
        assignment = np.array([0, 1, 2, 3])
        assert load_imbalance(loads, assignment, 4) == pytest.approx(1.0)

    def test_load_imbalance_zero_load(self):
        assert load_imbalance(np.zeros(2), np.array([0, 1]), 2) == 1.0
