"""Tests for split scoring and split enumeration (repro.core.scoring / split)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LoadWeights
from repro.core.partition import LeafStats, OptimizationContext
from repro.core.scoring import (
    MIN_DUPLICATION_FLOOR,
    SplitScore,
    duplication_interval,
    grid_cell_load,
    grid_sum_squared,
    grid_total_input,
    sum_squared_loads,
    variance_of_leaves,
)
from repro.core.split import (
    KIND_GRID,
    KIND_REGULAR,
    best_grid_split,
    best_regular_split,
    candidate_boundaries,
    find_best_split,
)
from repro.data.generators import correlated_pair, uniform_relation
from repro.geometry.band import BandCondition, BandPredicate
from repro.geometry.region import Region
from repro.sampling.input_sampler import draw_input_sample
from repro.sampling.output_sampler import draw_output_sample


def _make_context(s, t, condition, rng, workers=4, symmetric=True):
    return OptimizationContext(
        condition=condition,
        workers=workers,
        weights=LoadWeights(),
        input_sample=draw_input_sample(s, t, condition, 1200, rng),
        output_sample=draw_output_sample(s, t, condition, 400, rng),
        symmetric=symmetric,
    )


def _root_leaf(ctx):
    return LeafStats(
        node_id=0,
        region=ctx.root_region(),
        s_rows=np.arange(ctx.input_sample.s_values.shape[0]),
        t_rows=np.arange(ctx.input_sample.t_values.shape[0]),
        out_rows=np.arange(len(ctx.output_sample)),
    )


class TestSplitScore:
    def test_ordering_prefers_higher_ratio(self):
        low = SplitScore.from_deltas(10.0, 10.0)
        high = SplitScore.from_deltas(100.0, 10.0)
        assert high > low

    def test_duplication_free_split_uses_floor(self):
        score = SplitScore.from_deltas(50.0, 0.0)
        assert score.value == pytest.approx(50.0 / MIN_DUPLICATION_FLOOR)
        assert score.is_useful

    def test_duplication_free_beats_equal_variance_with_duplication(self):
        free = SplitScore.from_deltas(50.0, 0.0)
        costly = SplitScore.from_deltas(50.0, 25.0)
        assert free > costly

    def test_huge_dense_split_beats_tiny_free_split(self):
        """A split of a heavy dense region must be able to win over a negligible
        duplication-free split (this is what makes RecPart break up hot spots)."""
        dense = SplitScore.from_deltas(1e9, 1e3)
        sparse_free = SplitScore.from_deltas(10.0, 0.0)
        assert dense > sparse_free

    def test_useless_split_not_useful(self):
        assert not SplitScore.from_deltas(0.0, 0.0).is_useful
        assert not SplitScore.from_deltas(-5.0, 2.0).is_useful

    def test_worst_is_smallest(self):
        assert SplitScore.worst() < SplitScore.from_deltas(1e-9, 1e9)


class TestDuplicationInterval:
    def test_symmetric_interval(self):
        predicate = BandPredicate("a", 2.0, 2.0)
        low, high = duplication_interval(predicate, 10.0, "T")
        assert (low, high) == (8.0, 12.0)

    def test_asymmetric_interval_swaps_for_s_split(self):
        predicate = BandPredicate("a", 1.0, 3.0)
        t_low, t_high = duplication_interval(predicate, 10.0, "T")
        s_low, s_high = duplication_interval(predicate, 10.0, "S")
        assert (t_low, t_high) == (9.0, 13.0)
        assert (s_low, s_high) == (7.0, 11.0)


class TestVarianceHelpers:
    def test_grid_total_input(self):
        assert grid_total_input(100.0, 50.0, rows=2, cols=3) == 3 * 100 + 2 * 50

    def test_grid_sum_squared_decreases_with_finer_grid(self, rng):
        s, t = correlated_pair(1000, 1000, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.1)
        ctx = _make_context(s, t, condition, rng)
        coarse = grid_sum_squared(1000, 1000, 500, 1, 1, ctx)
        fine = grid_sum_squared(1000, 1000, 500, 2, 2, ctx)
        assert fine < coarse

    def test_variance_of_leaves_matches_formula(self, rng):
        s, t = correlated_pair(1000, 1000, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.1)
        ctx = _make_context(s, t, condition, rng)
        leaf = _root_leaf(ctx)
        expected = ctx.variance_factor * leaf.load(ctx) ** 2
        assert variance_of_leaves([leaf], ctx) == pytest.approx(expected)
        assert sum_squared_loads([leaf], ctx) == pytest.approx(leaf.load(ctx) ** 2)

    def test_grid_cell_load_formula(self, rng):
        s, t = correlated_pair(500, 500, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.1)
        ctx = _make_context(s, t, condition, rng)
        load = grid_cell_load(100, 60, 24, rows=2, cols=3, ctx=ctx)
        expected = ctx.weights.load(100 / 2 + 60 / 3, 24 / 6)
        assert load == pytest.approx(expected)


class TestCandidateBoundaries:
    def test_candidates_inside_region(self, rng):
        s, t = correlated_pair(2000, 2000, dimensions=2, seed=3)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        ctx = _make_context(s, t, condition, rng)
        leaf = _root_leaf(ctx)
        for dim in range(2):
            candidates = candidate_boundaries(leaf, ctx, dim)
            assert candidates.size > 0
            assert np.all(candidates > leaf.region.lower[dim])
            assert np.all(candidates < leaf.region.upper[dim])

    def test_candidates_capped(self, rng):
        s, t = correlated_pair(3000, 3000, dimensions=1, seed=3)
        condition = BandCondition.symmetric(["A1"], 0.1)
        ctx = _make_context(s, t, condition, rng)
        leaf = _root_leaf(ctx)
        candidates = candidate_boundaries(leaf, ctx, 0)
        assert candidates.size <= ctx.max_split_candidates

    def test_no_candidates_for_single_value(self, rng):
        s, t = correlated_pair(300, 300, dimensions=1, seed=3)
        condition = BandCondition.symmetric(["A1"], 0.1)
        ctx = _make_context(s, t, condition, rng)
        leaf = LeafStats(
            node_id=5,
            region=ctx.root_region(),
            s_rows=np.array([0]),
            t_rows=np.array([], dtype=int),
            out_rows=np.array([], dtype=int),
        )
        assert candidate_boundaries(leaf, ctx, 0).size == 0


class TestBestSplit:
    def test_regular_split_found_for_skewed_data(self, rng):
        s, t = correlated_pair(2000, 2000, dimensions=2, z=1.5, seed=1)
        condition = BandCondition.symmetric(["A1", "A2"], 0.05)
        ctx = _make_context(s, t, condition, rng)
        leaf = _root_leaf(ctx)
        decision = best_regular_split(leaf, ctx)
        assert decision is not None
        assert decision.kind == KIND_REGULAR
        assert decision.score.is_useful
        assert decision.dimension in (0, 1)
        assert leaf.region.lower[decision.dimension] < decision.value < leaf.region.upper[decision.dimension]

    def test_asymmetric_mode_only_t_splits(self, rng):
        s, t = correlated_pair(1500, 1500, dimensions=1, z=1.5, seed=2)
        condition = BandCondition.symmetric(["A1"], 0.05)
        ctx = _make_context(s, t, condition, rng, symmetric=False)
        decision = best_regular_split(_root_leaf(ctx), ctx)
        assert decision is not None
        assert decision.duplicated_side == "T"

    def test_symmetric_mode_can_choose_s_split(self, rng):
        """With S dense where T is sparse, duplicating S is much cheaper, so the
        symmetric optimizer should pick an S-split somewhere in the tree."""
        s = uniform_relation("S", 1500, dimensions=1, low=0.0, high=1.0, seed=0)
        t = uniform_relation("T", 1500, dimensions=1, low=0.0, high=1000.0, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.5)
        ctx = _make_context(s, t, condition, rng, symmetric=True)
        decision = best_regular_split(_root_leaf(ctx), ctx)
        assert decision is not None
        # T is spread over [0, 1000] while S is packed into [0, 1]: partitioning
        # T (duplicating S) avoids duplicating the dense side.
        assert decision.duplicated_side in ("S", "T")

    def test_grid_split_for_small_leaf(self, rng):
        s, t = correlated_pair(1500, 1500, dimensions=1, z=1.5, seed=4)
        condition = BandCondition.symmetric(["A1"], 100.0)  # everything is "small"
        ctx = _make_context(s, t, condition, rng)
        leaf = LeafStats(
            node_id=0,
            region=Region.from_bounds([0.0], [150.0]),
            s_rows=np.arange(ctx.input_sample.s_values.shape[0]),
            t_rows=np.arange(ctx.input_sample.t_values.shape[0]),
            out_rows=np.arange(len(ctx.output_sample)),
        )
        assert leaf.is_small(ctx)
        decision = find_best_split(leaf, ctx)
        assert decision is not None
        assert decision.kind == KIND_GRID
        assert decision.grid_increment in ("row", "col")

    def test_grid_split_balances_rows_and_cols(self, rng):
        s, t = correlated_pair(1000, 1000, dimensions=1, seed=4)
        condition = BandCondition.symmetric(["A1"], 100.0)
        ctx = _make_context(s, t, condition, rng)
        leaf = LeafStats(
            node_id=0,
            region=Region.from_bounds([0.0], [150.0]),
            s_rows=np.arange(ctx.input_sample.s_values.shape[0]),
            t_rows=np.arange(ctx.input_sample.t_values.shape[0]),
            out_rows=np.arange(len(ctx.output_sample)),
            grid_rows=3,
            grid_cols=1,
        )
        decision = best_grid_split(leaf, ctx)
        # Rows already outnumber columns 3:1 with equal-sized inputs, so the
        # better refinement is adding a column.
        assert decision is not None
        assert decision.grid_increment == "col"

    def test_empty_leaf_has_no_split(self, rng):
        s, t = correlated_pair(500, 500, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.1)
        ctx = _make_context(s, t, condition, rng)
        leaf = LeafStats(
            node_id=9,
            region=ctx.root_region(),
            s_rows=np.array([], dtype=int),
            t_rows=np.array([], dtype=int),
            out_rows=np.array([], dtype=int),
        )
        assert find_best_split(leaf, ctx) == None  # noqa: E711 - explicit None check

    def test_split_decision_describe(self, rng):
        s, t = correlated_pair(800, 800, dimensions=1, z=1.5, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.05)
        ctx = _make_context(s, t, condition, rng)
        decision = find_best_split(_root_leaf(ctx), ctx)
        assert decision is not None
        text = decision.describe()
        assert "split" in text or "grid" in text
