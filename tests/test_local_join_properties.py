"""Property-based tests (hypothesis) for the local band-join algorithms."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.geometry.band import BandCondition
from repro.local_join.auto import AutoJoin
from repro.local_join.base import canonical_pair_order
from repro.local_join.iejoin_local import IEJoinLocal
from repro.local_join.index_nested_loop import IndexNestedLoopJoin
from repro.local_join.nested_loop import NestedLoopJoin
from repro.local_join.sort_band import SortSweepJoin


def _value_arrays(max_rows: int = 24, dims: int = 2):
    return npst.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(0, max_rows), st.just(dims)),
        elements=st.floats(-20, 20, allow_nan=False, allow_infinity=False, width=32),
    )


@settings(max_examples=60, deadline=None)
@given(s=_value_arrays(), t=_value_arrays(), eps=st.floats(0, 3))
def test_all_algorithms_agree_on_random_inputs(s, t, eps):
    """Every local algorithm returns exactly the reference pair set."""
    condition = BandCondition.symmetric(["A1", "A2"], eps)
    reference = canonical_pair_order(NestedLoopJoin().join(s, t, condition))
    for algorithm in (IndexNestedLoopJoin(), SortSweepJoin(), IEJoinLocal(), AutoJoin()):
        result = canonical_pair_order(algorithm.join(s, t, condition))
        np.testing.assert_array_equal(result, reference)


@settings(max_examples=40, deadline=None)
@given(
    s=_value_arrays(),
    t=_value_arrays(),
    eps_left=st.floats(0, 2),
    eps_right=st.floats(0, 2),
)
def test_asymmetric_bands_agree_under_tiny_budgets(s, t, eps_left, eps_right):
    """Asymmetric widths and minimal chunk budgets never change the pair set."""
    condition = BandCondition({"A1": (eps_left, eps_right), "A2": (eps_right, eps_left)})
    reference = canonical_pair_order(NestedLoopJoin().join(s, t, condition))
    for algorithm in (
        SortSweepJoin(memory_budget=64),
        IEJoinLocal(memory_budget=64),
        IndexNestedLoopJoin(memory_budget=64),
    ):
        result = canonical_pair_order(algorithm.join(s, t, condition))
        np.testing.assert_array_equal(result, reference)
        assert algorithm.count(s, t, condition) == reference.shape[0]


@settings(max_examples=40, deadline=None)
@given(s=_value_arrays(dims=1), t=_value_arrays(dims=1), eps=st.floats(0, 5))
def test_output_symmetry_of_symmetric_band(s, t, eps):
    """For a symmetric band condition, join(S, T) and join(T, S) are transposes."""
    condition = BandCondition.symmetric(["A1"], eps)
    algorithm = IndexNestedLoopJoin()
    forward = canonical_pair_order(algorithm.join(s, t, condition))
    backward = canonical_pair_order(algorithm.join(t, s, condition)[:, ::-1])
    np.testing.assert_array_equal(canonical_pair_order(forward), canonical_pair_order(backward))


@settings(max_examples=40, deadline=None)
@given(s=_value_arrays(dims=1), eps_small=st.floats(0, 1), eps_extra=st.floats(0, 2))
def test_output_monotone_in_band_width(s, eps_small, eps_extra):
    """Widening the band can only add output pairs (Figure 1's spectrum)."""
    t = s + 0.25  # deterministic second input derived from the first
    small = BandCondition.symmetric(["A1"], eps_small)
    large = BandCondition.symmetric(["A1"], eps_small + eps_extra)
    algorithm = IndexNestedLoopJoin()
    assert algorithm.count(s, t, large) >= algorithm.count(s, t, small)


@settings(max_examples=40, deadline=None)
@given(values=_value_arrays(dims=2), eps=st.floats(0.01, 3))
def test_self_join_is_reflexive(values, eps):
    """Every tuple joins with itself in a self band-join (diagonal always present)."""
    condition = BandCondition.symmetric(["A1", "A2"], eps)
    pairs = IndexNestedLoopJoin().join(values, values, condition)
    if values.shape[0] == 0:
        assert pairs.shape[0] == 0
        return
    pair_set = {(int(a), int(b)) for a, b in pairs}
    assert all((i, i) in pair_set for i in range(values.shape[0]))
